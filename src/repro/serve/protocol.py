"""Wire protocol: request canonicalization and response encoding.

A simulation request is a flat JSON object whose fields mirror
:class:`repro.runtime.SimJob` (with the CLI aliases ``layers`` and
``device``, plus an optional ``tier`` selector).  Canonicalization is
delegated to :meth:`SimJob.from_request` so the service, the CLI, and
any other front end hash equivalent requests to the same content key —
which is what single-flight deduplication and the result cache key on.
"""

from __future__ import annotations

from ..runtime.jobs import SimJob
from ..runtime.runner import JobOutcome

__all__ = [
    "ProtocolError",
    "SUPPORTED_TIERS",
    "parse_simulation_request",
    "encode_outcome",
]

#: Simulation tiers the service can execute.  The flit-level cycle tier
#: is tile-scoped (no full-job entry point yet), so requests for it are
#: rejected with a clear message rather than silently downgraded.
SUPPORTED_TIERS = ("analytical",)


class ProtocolError(ValueError):
    """A request that fails canonicalization (maps to HTTP 400)."""


def parse_simulation_request(data: dict) -> SimJob:
    """Canonicalize one request body into a frozen :class:`SimJob`.

    Two spellings are accepted: the flat form (SimJob fields, optionally
    including ``mutations``), and the incremental form ``{"base": {...},
    "mutations": [...]}`` where ``base`` is a flat request and the
    mutation chain applies on top of it.  Both canonicalize through
    :meth:`SimJob.from_request`, so an incremental request and its flat
    equivalent hash to the same job key.
    """
    if not isinstance(data, dict):
        raise ProtocolError("request must be a JSON object")
    data = dict(data)
    if "base" in data:
        base = data.pop("base")
        mutations = data.pop("mutations", None)
        if data:
            extra = ", ".join(repr(k) for k in sorted(data))
            raise ProtocolError(
                f"incremental request allows only 'base' and 'mutations'; "
                f"got extra field(s): {extra}"
            )
        if not isinstance(base, dict):
            raise ProtocolError("'base' must be a JSON object")
        if "mutations" in base:
            raise ProtocolError(
                "'mutations' must appear beside 'base', not inside it"
            )
        data = dict(base)
        if mutations is not None:
            data["mutations"] = mutations
    tier = data.pop("tier", "analytical")
    if tier not in SUPPORTED_TIERS:
        raise ProtocolError(
            f"unsupported tier {tier!r} (supported: {', '.join(SUPPORTED_TIERS)})"
        )
    try:
        return SimJob.from_request(data)
    except (KeyError, TypeError, ValueError) as exc:
        # KeyError reprs its argument; strip the quotes for a clean message.
        message = exc.args[0] if exc.args else str(exc)
        raise ProtocolError(str(message)) from None


def encode_outcome(
    outcome: JobOutcome,
    *,
    joined: bool,
    latency_seconds: float,
    trace_id: str | None = None,
) -> dict:
    """The response payload for one completed simulation request."""
    payload = {
        "key": outcome.key,
        "cached": outcome.cached,
        "joined": joined,
        "seconds": outcome.seconds,
        "latency_seconds": latency_seconds,
        "result": outcome.result.to_dict() if outcome.result is not None else None,
    }
    if outcome.exec_meta is not None:
        payload["tiles_reused"] = outcome.exec_meta.get("tiles_reused", 0)
        payload["tiles_recomputed"] = outcome.exec_meta.get(
            "tiles_recomputed", 0
        )
    if trace_id is not None:
        payload["trace_id"] = trace_id
    return payload
