"""Metrics registry: instruments, families, and Prometheus rendering."""

import threading

import pytest

from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
)


class TestInstruments:
    def test_counter_monotone(self):
        c = Counter()
        c.inc()
        c.inc(2.5)
        assert c.get() == 3.5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_moves_both_ways(self):
        g = Gauge()
        g.set(10)
        g.inc(5)
        g.dec(2)
        assert g.get() == 13.0

    def test_histogram_counts_and_sum(self):
        h = Histogram(buckets=(1.0, 5.0, 10.0))
        for v in (0.5, 2.0, 7.0, 100.0):
            h.observe(v)
        state = h.as_dict()
        assert state["count"] == 4
        assert state["sum"] == pytest.approx(109.5)
        assert state["buckets"] == {1.0: 1, 5.0: 1, 10.0: 1}
        assert state["overflow"] == 1

    def test_histogram_quantile_bucket_bounds(self):
        h = Histogram(buckets=(1.0, 5.0, 10.0))
        for v in (0.5, 0.6, 0.7, 7.0):
            h.observe(v)
        assert h.quantile(0.5) == 1.0  # within the first bucket
        assert h.quantile(1.0) == 10.0
        assert Histogram().quantile(0.5) is None
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram(buckets=(5.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(buckets=())


class TestMetricFamily:
    def test_labelled_family_fans_out(self):
        fam = MetricFamily("hits", "counter", labelnames=("stage",))
        fam.labels(stage="a").inc()
        fam.labels(stage="a").inc()
        fam.labels(stage="b").inc()
        assert fam.labels(stage="a").get() == 2.0
        assert set(fam.series()) == {("a",), ("b",)}

    def test_label_set_must_match_exactly(self):
        fam = MetricFamily("hits", "counter", labelnames=("stage",))
        with pytest.raises(ValueError):
            fam.labels(wrong="a")
        with pytest.raises(ValueError):
            fam.labels()

    def test_unlabelled_passthroughs(self):
        fam = MetricFamily("depth", "gauge")
        fam.set(3)
        fam.dec()
        assert fam.get() == 2.0

    def test_name_and_label_validation(self):
        with pytest.raises(ValueError):
            MetricFamily("bad name", "counter")
        with pytest.raises(ValueError):
            MetricFamily("ok", "counter", labelnames=("bad-label",))
        with pytest.raises(ValueError):
            MetricFamily("ok", "nonsense")

    def test_clear_reseeds_unlabelled_child(self):
        fam = MetricFamily("n", "counter")
        fam.inc(5)
        fam.clear()
        assert fam.get() == 0.0


class TestRegistry:
    def test_get_or_create_returns_same_family(self):
        reg = MetricsRegistry()
        a = reg.counter("requests", labelnames=("status",))
        b = reg.counter("requests", labelnames=("status",))
        assert a is b

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("reqs", help="requests", labelnames=("status",)).labels(
            status="200"
        ).inc()
        reg.histogram("lat", buckets=(1.0,)).observe(0.5)
        snap = reg.snapshot()
        assert snap["reqs"]["type"] == "counter"
        assert snap["reqs"]["series"]["200"]["value"] == 1.0
        assert snap["lat"]["series"][""]["count"] == 1

    def test_reset_clears_series_keeps_families(self):
        reg = MetricsRegistry()
        fam = reg.counter("n")
        fam.inc(3)
        reg.reset()
        assert reg.counter("n") is fam
        assert fam.get() == 0.0


class TestPrometheusRendering:
    def test_counter_and_gauge_lines(self):
        reg = MetricsRegistry()
        reg.counter("reqs_total", help="all requests", labelnames=("status",)).labels(
            status="200"
        ).inc(3)
        reg.gauge("depth").set(7)
        text = reg.render_prometheus()
        assert "# HELP reqs_total all requests" in text
        assert "# TYPE reqs_total counter" in text
        assert 'reqs_total{status="200"} 3' in text
        assert "# TYPE depth gauge" in text
        assert "depth 7" in text
        assert text.endswith("\n")

    def test_histogram_exposition_is_cumulative(self):
        reg = MetricsRegistry()
        hist = reg.histogram("lat_seconds", buckets=(0.1, 1.0))
        for v in (0.05, 0.5, 5.0):
            hist.observe(v)
        text = reg.render_prometheus()
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="1"} 2' in text
        assert 'lat_seconds_bucket{le="+Inf"} 3' in text
        assert "lat_seconds_sum 5.55" in text
        assert "lat_seconds_count 3" in text

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        reg.counter("evt", labelnames=("name",)).labels(
            name='with "quotes"\nand newline'
        ).inc()
        text = reg.render_prometheus()
        assert r'name="with \"quotes\"\nand newline"' in text

    def test_parseable_line_format(self):
        """Every non-comment line is `name{labels} value`."""
        import re

        reg = MetricsRegistry()
        reg.counter("a_total", labelnames=("x",)).labels(x="1").inc()
        reg.histogram("b_seconds", buckets=(1.0,)).observe(2.0)
        pattern = re.compile(
            r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [0-9.eE+-]+(inf)?$"
        )
        for line in reg.render_prometheus().splitlines():
            if line.startswith("#") or not line:
                continue
            assert pattern.match(line), line


class TestThreadSafety:
    def test_concurrent_observations_lose_nothing(self):
        reg = MetricsRegistry()
        hist = reg.histogram("h", labelnames=("stage",), buckets=(1.0,))
        ctr = reg.counter("c", labelnames=("event",))
        n, workers = 5_000, 8

        def pump(w: int) -> None:
            child_h = hist.labels(stage=f"s{w % 2}")
            child_c = ctr.labels(event=f"e{w % 2}")
            for _ in range(n):
                child_h.observe(0.5)
                child_c.inc()

        threads = [
            threading.Thread(target=pump, args=(w,)) for w in range(workers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total_h = sum(c.count for c in hist.series().values())
        total_c = sum(c.get() for c in ctr.series().values())
        assert total_h == n * workers
        assert total_c == n * workers
