"""Determinism guard: the invariant the result cache depends on.

Content-addressed caching is only sound if simulating the same
:class:`SimJob` twice — with completely fresh simulator instances —
yields *bit-identical* results.  These tests pin that invariant; if one
ever fails, a nondeterminism (unseeded RNG, set-ordering dependence,
wall-clock leakage) has crept into the simulators and cached results can
no longer be trusted.
"""

import pytest

from repro.runtime import SimJob, execute_job, run_job


def _jobs():
    return [
        SimJob(scale=0.2, hidden=16, num_layers=2),
        SimJob(scale=0.2, hidden=16, num_layers=1, mapping="hashing"),
        SimJob(accelerator="hygcn", scale=0.2, hidden=16, num_layers=1),
        SimJob(accelerator="awb-gcn", scale=0.2, hidden=16, num_layers=1),
        SimJob(model="gin", scale=0.2, hidden=16, num_layers=1),
    ]


@pytest.mark.parametrize("job", _jobs(), ids=lambda j: j.label())
def test_repeated_simulation_is_bit_identical(job):
    first = run_job(job).to_dict()
    second = run_job(job).to_dict()
    assert first == second


def test_wire_format_is_json_stable():
    """The cache stores JSON: encode → decode must change nothing."""
    import json

    payload = execute_job(SimJob(scale=0.2, hidden=16, num_layers=1))
    assert json.loads(json.dumps(payload)) == payload
