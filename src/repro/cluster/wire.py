"""Async one-shot HTTP client for talking to replicas.

The replicas speak the deliberately tiny ``repro.serve`` dialect (one
request, one ``Connection: close`` JSON response), so the router-side
client is equally tiny: open a connection, write one request, read one
response, close.  No pooling, no keep-alive — a proxied simulation
dwarfs connection setup on the loopback path, and the simplicity keeps
error handling exact: every failure is an :class:`OSError`,
:class:`asyncio.TimeoutError`, or :class:`PeerProtocolError`.
"""

from __future__ import annotations

import asyncio
import json

__all__ = ["PeerProtocolError", "request_json"]

#: Upper bound on a peer response body (a simulation result dict is a
#: few KiB; /stats aggregations stay well under this).
MAX_RESPONSE_BYTES = 8 << 20


class PeerProtocolError(Exception):
    """A peer response the wire layer could not parse."""


async def _read_response(
    reader: asyncio.StreamReader,
) -> tuple[int, dict, dict]:
    status_line = await reader.readline()
    if not status_line:
        raise PeerProtocolError("peer closed before sending a status line")
    parts = status_line.decode("latin-1").split(None, 2)
    if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
        raise PeerProtocolError(f"malformed status line: {status_line!r}")
    try:
        status = int(parts[1])
    except ValueError:
        raise PeerProtocolError(f"malformed status code: {parts[1]!r}") from None

    headers: dict[str, str] = {}
    while True:
        raw = await reader.readline()
        if raw in (b"\r\n", b"\n"):
            break
        if not raw:
            raise PeerProtocolError("peer closed mid-headers")
        name, sep, value = raw.decode("latin-1").partition(":")
        if not sep:
            raise PeerProtocolError(f"malformed header line: {raw!r}")
        headers[name.strip().lower()] = value.strip()

    length_text = headers.get("content-length", "0") or "0"
    try:
        length = int(length_text)
    except ValueError:
        raise PeerProtocolError(f"bad Content-Length: {length_text!r}") from None
    if length < 0 or length > MAX_RESPONSE_BYTES:
        raise PeerProtocolError(f"Content-Length out of range: {length}")
    body = await reader.readexactly(length) if length else b""

    content_type = headers.get("content-type", "").lower()
    if content_type.startswith("text/plain"):
        return status, {"text": body.decode("utf-8", "replace")}, headers
    try:
        payload = json.loads(body) if body else {}
    except json.JSONDecodeError:
        raise PeerProtocolError(
            f"undecodable response body: {body[:200]!r}"
        ) from None
    if not isinstance(payload, dict):
        payload = {"value": payload}
    return status, payload, headers


async def request_json(
    host: str,
    port: int,
    method: str,
    path: str,
    *,
    body: dict | None = None,
    headers: dict | None = None,
    timeout: float = 30.0,
) -> tuple[int, dict, dict]:
    """One request to a peer; returns ``(status, payload, headers)``.

    Raises :class:`OSError` on transport failure,
    :class:`asyncio.TimeoutError` when ``timeout`` expires, and
    :class:`PeerProtocolError` on an unparseable response — the router
    treats all three as "this replica did not answer".
    """

    async def _exchange() -> tuple[int, dict, dict]:
        reader, writer = await asyncio.open_connection(host, port)
        try:
            encoded = b""
            lines = [f"{method} {path} HTTP/1.1", f"Host: {host}:{port}"]
            if body is not None:
                encoded = json.dumps(body).encode()
                lines.append("Content-Type: application/json")
            lines.append(f"Content-Length: {len(encoded)}")
            lines.append("Connection: close")
            for name, value in (headers or {}).items():
                lines.append(f"{name}: {value}")
            writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1"))
            writer.write(encoded)
            await writer.drain()
            return await _read_response(reader)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    try:
        return await asyncio.wait_for(_exchange(), timeout)
    except asyncio.IncompleteReadError as exc:
        raise PeerProtocolError("peer closed mid-response") from exc
