"""Deadlock-freedom checking for configured topologies.

Dimension-ordered XY routing on a mesh is provably deadlock-free, but
Aurora *reconfigures* its network: bypass segments add turns XY never
takes, and ring regions introduce cyclic channel usage by construction.
The link controller must therefore only install configurations whose
channel-dependency graph stays safe.  This module builds that CDG for
the deterministic routing over a configured
:class:`FlexibleMeshTopology` and reports:

* whether the mesh-channel dependency graph is acyclic (wormhole-safe
  with a single VC), and the offending cycles if not;
* which cycles are ring wrap-arounds — safe with the dateline discipline
  the second VC provides (the paper's router has ``vcs_per_port`` ≥ 2),
  as opposed to genuine routing-induced cycles.

Used by tests to verify that every configuration the mapping/
configuration units emit is safe, and usable as an assertion inside
design-space exploration.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from .routing import compute_route
from .topology import FlexibleMeshTopology

__all__ = ["DeadlockReport", "build_channel_dependency_graph", "check_deadlock_freedom"]

Channel = tuple[int, int]  # directed link (from_node, to_node)


@dataclass(frozen=True)
class DeadlockReport:
    """Outcome of a CDG analysis."""

    acyclic: bool
    cycles: tuple[tuple[Channel, ...], ...]
    ring_cycles: tuple[tuple[Channel, ...], ...]

    @property
    def safe_with_vc_dateline(self) -> bool:
        """Safe when every cycle is a ring wrap-around (handled by the
        dateline discipline on the second VC)."""
        return self.acyclic or len(self.cycles) == len(self.ring_cycles)


def build_channel_dependency_graph(
    topo: FlexibleMeshTopology,
    *,
    allow_bypass: bool = True,
) -> nx.DiGraph:
    """CDG over every deterministic route of the configured topology.

    Nodes are directed channels; an edge (c1 → c2) means some packet
    holds c1 while requesting c2 (consecutive hops of a route).
    """
    cdg = nx.DiGraph()
    n = topo.num_nodes
    for src in range(n):
        for dst in range(n):
            if src == dst:
                continue
            route = compute_route(topo, src, dst, allow_bypass=allow_bypass)
            channels = list(zip(route, route[1:]))
            for c1, c2 in zip(channels, channels[1:]):
                cdg.add_edge(c1, c2)
            for c in channels:
                cdg.add_node(c)
    return cdg


def _is_ring_cycle(topo: FlexibleMeshTopology, cycle: tuple[Channel, ...]) -> bool:
    """A cycle whose channels all live inside one ring region's row."""
    rings = topo.ring_regions
    if not rings:
        return False
    for ring in rings:
        if all(
            ring.contains(*topo.coords(a)) and ring.contains(*topo.coords(b))
            for a, b in cycle
        ):
            return True
    return False


def check_deadlock_freedom(
    topo: FlexibleMeshTopology,
    *,
    allow_bypass: bool = True,
    max_cycles: int = 16,
) -> DeadlockReport:
    """Analyse a configured topology; see :class:`DeadlockReport`."""
    cdg = build_channel_dependency_graph(topo, allow_bypass=allow_bypass)
    try:
        found = []
        for cycle in nx.simple_cycles(cdg):
            found.append(tuple(cycle))
            if len(found) >= max_cycles:
                break
    except nx.NetworkXNoCycle:  # pragma: no cover - simple_cycles yields
        found = []
    ring_cycles = tuple(c for c in found if _is_ring_cycle(topo, c))
    return DeadlockReport(
        acyclic=not found,
        cycles=tuple(found),
        ring_cycles=ring_cycles,
    )
