"""Design-space exploration over the content-addressed job cache.

``repro.dse`` turns the repo's simulation runtime into a search engine:
declare a :class:`DesignSpace` (typed axes + constraints over the
accelerator/NoC/mapping parameters), pick an optimizer
(:class:`RandomSearch`, :class:`HillClimb`, :class:`GeneticAlgorithm`,
:class:`SuccessiveHalving`), and a :class:`DSERunner` drives candidate
batches through ``run_jobs`` under evaluation and wall-clock budgets.
Because every candidate encodes to a content-addressed :class:`SimJob`,
repeated designs — within a search, across optimizers, across runs —
are served from the result cache instead of re-simulated.

Surfaces: the ``repro dse`` CLI command, ``POST /dse`` + ``GET
/dse/<id>`` on the serve layer, and ``repro bench --tier dse``.
"""

from .artifacts import (
    TrajectoryWriter,
    read_trajectory,
    render_best,
    render_trajectory,
    summarize_trajectory,
)
from .grids import GRIDS, build_grid, list_grids
from .optimizers import (
    OPTIMIZERS,
    Candidate,
    GeneticAlgorithm,
    HillClimb,
    Optimizer,
    RandomSearch,
    SuccessiveHalving,
    build_optimizer,
    list_optimizers,
)
from .runner import (
    OBJECTIVES,
    DSERunner,
    SearchResult,
    SearchSpec,
    evaluate_grid,
)
from .service import DSEManager
from .space import (
    SPACES,
    Categorical,
    Constraint,
    DesignSpace,
    IntGrid,
    LogFloat,
    build_space,
    list_spaces,
)

__all__ = [
    "Categorical",
    "IntGrid",
    "LogFloat",
    "Constraint",
    "DesignSpace",
    "SPACES",
    "build_space",
    "list_spaces",
    "Candidate",
    "Optimizer",
    "RandomSearch",
    "HillClimb",
    "GeneticAlgorithm",
    "SuccessiveHalving",
    "OPTIMIZERS",
    "build_optimizer",
    "list_optimizers",
    "OBJECTIVES",
    "SearchSpec",
    "SearchResult",
    "DSERunner",
    "evaluate_grid",
    "GRIDS",
    "build_grid",
    "list_grids",
    "DSEManager",
    "TrajectoryWriter",
    "read_trajectory",
    "summarize_trajectory",
    "render_best",
    "render_trajectory",
]
