"""Deadlock-freedom analysis tests."""

import pytest

from repro.arch.noc import BypassSegment, FlexibleMeshTopology, RingConfig
from repro.arch.noc.deadlock import (
    build_channel_dependency_graph,
    check_deadlock_freedom,
)


class TestPlainMesh:
    @pytest.mark.parametrize("k", [2, 4, 6])
    def test_xy_is_deadlock_free(self, k):
        report = check_deadlock_freedom(FlexibleMeshTopology(k))
        assert report.acyclic
        assert report.cycles == ()

    def test_cdg_nonempty(self):
        cdg = build_channel_dependency_graph(FlexibleMeshTopology(4))
        assert cdg.number_of_nodes() > 0
        assert cdg.number_of_edges() > 0


class TestBypassConfigurations:
    def test_single_row_segment_safe(self):
        topo = FlexibleMeshTopology(6)
        topo.add_bypass_segment(BypassSegment("row", 2, 0, 5))
        assert check_deadlock_freedom(topo).acyclic

    def test_degree_aware_configurations_safe(self, medium_graph):
        """Every configuration the mapper emits must be wormhole-safe."""
        from repro.mapping import PERegion, degree_aware_map

        region = PERegion(0, 0, 6, 3, 6)
        cap = -(-medium_graph.num_vertices // region.num_pes)
        mapping = degree_aware_map(medium_graph, region, pe_vertex_capacity=cap)
        topo = FlexibleMeshTopology(6)
        for seg in mapping.bypass_segments:
            try:
                topo.add_bypass_segment(seg)
            except ValueError:
                continue
        report = check_deadlock_freedom(topo)
        assert report.acyclic, report.cycles

    def test_disabling_bypass_restores_xy(self):
        topo = FlexibleMeshTopology(5)
        topo.add_bypass_segment(BypassSegment("row", 0, 0, 4))
        topo.add_bypass_segment(BypassSegment("col", 0, 0, 4))
        report = check_deadlock_freedom(topo, allow_bypass=False)
        assert report.acyclic


class TestRings:
    def test_ring_cycles_detected_and_classified(self):
        topo = FlexibleMeshTopology(4)
        topo.add_ring_region(RingConfig(0, 0, 4, 2))
        report = check_deadlock_freedom(topo)
        # Rings are cyclic by construction...
        assert not report.acyclic
        # ...but every cycle is a ring wrap-around, covered by the
        # dateline discipline on the second VC.
        assert report.safe_with_vc_dateline

    def test_mixed_configuration(self):
        topo = FlexibleMeshTopology(6)
        topo.add_ring_region(RingConfig(0, 3, 6, 6))
        topo.add_bypass_segment(BypassSegment("row", 0, 0, 5))
        report = check_deadlock_freedom(topo)
        assert report.safe_with_vc_dateline
