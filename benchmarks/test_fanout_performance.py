"""Intra-job fan-out bench: fused engine + tile sharding vs reference.

This PR's tentpole collapsed the per-cycle Python dispatch of the flit
simulators into fused multi-cycle kernels and fanned a job's independent
tiles out over worker processes; the contract is a >=5x *cold
single-request* speedup on the multi-tile pubmed job (the BENCH_7.json
workload) while every path — serial, sharded, any engine — stays
bit-identical to the retained reference.  This module is the CI guard on
that contract.

Like the cycle-tier gate, the speedup assert is a ratio of two runs on
the same machine, relaxed by ``$REPRO_BENCH_SLACK`` against runner
jitter.  ``repro bench --tier fanout`` / ``BENCH_7.json`` is the
instrument for real numbers.
"""

import os

from repro.perf.bench import FANOUT_BENCHES, _run_fanout_case

#: Multiplier on every bound; CI sets e.g. REPRO_BENCH_SLACK=4.
SLACK = float(os.environ.get("REPRO_BENCH_SLACK", "1.0"))

#: Locked contract from ISSUE/BENCH_7: cold fused+sharded request vs one
#: cold reference run of the same job.  Measured 6.8x single-worker on
#: the development box; sharding adds more on multicore machines.
MIN_SPEEDUP = 5.0


def test_fanout_speedup_vs_reference():
    """One bench pass (reference + serial + fan-out + warm repeat) with
    per-tile identity checks built into ``_run_fanout_case`` — a
    diverging tile raises before any timing assert can pass."""
    bench = _run_fanout_case(FANOUT_BENCHES[0], repeat=1)
    assert bench["speedup_vs_reference"] >= MIN_SPEEDUP / SLACK
    # Absolute sanity: the job must be the heavy multi-tile standard one.
    assert bench["num_tiles"] >= 2
    assert bench["packets"] > 10_000
    assert bench["noc_cycles"] > 50_000
