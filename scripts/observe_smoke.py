"""CI smoke test for the live observability channel.

Boots the real server as a subprocess with ``--observe`` and a session
recording, attaches a WebSocket client to ``GET /observe``, drives one
``/simulate``, and asserts the ordered lifecycle event sequence arrives
live and schema-valid.  It then checks the dashboard and ``/stats``
surfaces, sends SIGTERM while the observer is still attached (the
stream must close cleanly, not error), and replays the JSONL recording
— every event the live client saw must be in the recording with an
identical payload.  The recording is copied to OBSERVE_EVENTS.jsonl
and uploaded as a CI artifact.

Run from the repo root:

    PYTHONPATH=src python scripts/observe_smoke.py
"""

from __future__ import annotations

import asyncio
import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.observe.client import ObserveClient  # noqa: E402
from repro.observe.events import (  # noqa: E402
    REQUEST_LIFECYCLE,
    SCHEMA_VERSION,
    validate_events,
)
from repro.observe.recorder import read_session  # noqa: E402
from repro.serve.client import ServeClient  # noqa: E402

SMALL = {"dataset": "cora", "scale": 0.2, "hidden": 16, "layers": 1}
ARTIFACT = REPO_ROOT / "OBSERVE_EVENTS.jsonl"


def check(condition: bool, label: str) -> None:
    status = "ok" if condition else "FAIL"
    print(f"smoke: {label}: {status}", flush=True)
    if not condition:
        raise SystemExit(f"smoke check failed: {label}")


def boot(cache_dir: str, record_path: Path) -> tuple[subprocess.Popen, int]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    env["REPRO_CACHE_DIR"] = cache_dir
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve", "--port", "0",
            "--observe", "--observe-record", str(record_path),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )
    deadline = time.monotonic() + 60.0
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line and process.poll() is not None:
            raise SystemExit("smoke: server died during startup")
        if "listening on" in line:
            return process, int(line.rsplit(":", 1)[1])
    raise SystemExit("smoke: server never reported its port")


async def observe_one_request(port: int) -> list[dict]:
    """Attach, fire one /simulate, collect events until it completes."""
    observer = ObserveClient("127.0.0.1", port)
    hello = await observer.connect()
    check(hello["data"]["schema"] == SCHEMA_VERSION, "hello carries the schema")

    client = ServeClient("127.0.0.1", port, timeout=60.0)
    request = asyncio.create_task(asyncio.to_thread(client.simulate, SMALL))
    events: list[dict] = []
    while True:
        event = await asyncio.wait_for(observer.next_event(), timeout=60.0)
        check(event is not None, "stream stayed open through the request")
        events.append(event)
        if event["type"] == "request.completed":
            break
    result = await request
    check(result["result"]["accelerator"] == "aurora", "request succeeded")
    await observer.close()
    return events


async def watch_shutdown(port: int, process: subprocess.Popen) -> None:
    """SIGTERM with an attached observer: the stream must end cleanly."""
    observer = ObserveClient("127.0.0.1", port)
    await observer.connect()
    process.send_signal(signal.SIGTERM)
    ended = await asyncio.wait_for(observer.next_event(), timeout=30.0)
    check(ended is None, "stream closed cleanly on SIGTERM")
    await observer.close()


def http_get(port: int, path: str) -> tuple[int, bytes]:
    try:
        with urllib.request.urlopen(
            f"http://127.0.0.1:{port}{path}", timeout=30
        ) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read()


def main() -> int:
    with tempfile.TemporaryDirectory() as workdir:
        record_path = Path(workdir) / "session.jsonl"
        process, port = boot(workdir, record_path)
        try:
            events = asyncio.run(observe_one_request(port))

            # The ordered lifecycle contract, live over the WebSocket.
            types = [e["type"] for e in events]
            positions = [
                types.index(t) for t in REQUEST_LIFECYCLE if t in types
            ]
            check(
                len(positions) == len(REQUEST_LIFECYCLE)
                and positions == sorted(positions),
                f"lifecycle arrived in order ({types})",
            )
            check(validate_events(events) == [], "live events are schema-valid")

            status, body = http_get(port, "/observer")
            check(
                status == 200 and b"/observe" in body,
                "dashboard is served",
            )
            status, body = http_get(port, "/stats")
            observe_stats = json.loads(body)["observe"]
            check(observe_stats["enabled"] is True, "stats report observe on")
            check(
                observe_stats["recorder"]["events_recorded"] >= len(events),
                "recorder kept pace with the live feed",
            )

            asyncio.run(watch_shutdown(port, process))
            check(process.wait(timeout=60) == 0, "clean drain exit code")

            # Replay identity: everything the live client saw is in the
            # recording, byte-identical, plus the shutdown tail.
            recorded, info = read_session(record_path)
            check(info["skipped"] == 0, "recording has no damaged lines")
            check(info["schema"] == SCHEMA_VERSION, "recording schema pinned")
            check(
                validate_events(recorded) == [],
                "recorded events are schema-valid",
            )
            by_seq = {event.seq: event.to_dict() for event in recorded}
            check(
                all(by_seq.get(e["seq"]) == e for e in events),
                "live feed replays identically from the recording",
            )

            shutil.copyfile(record_path, ARTIFACT)
            print(
                f"smoke: PASS — {len(events)} live events, "
                f"{len(recorded)} recorded → {ARTIFACT.name}",
                flush=True,
            )
            return 0
        finally:
            if process.poll() is None:
                process.kill()
            process.stdout.close()


if __name__ == "__main__":
    raise SystemExit(main())
