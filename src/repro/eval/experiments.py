"""Experiment registry: one entry per paper table/figure (DESIGN.md E1–E12).

Each experiment is a callable returning an :class:`ExperimentResult` with
structured data plus rendered text matching the paper's artifact.  The
benchmark suite invokes these; examples and tests reuse them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from ..arch.area import AreaModel
from ..baselines import BASELINE_TRAITS
from ..config import AcceleratorConfig, default_config
from ..core.simulator import AuroraSimulator
from ..graphs.datasets import dataset_profile, load_dataset
from ..mapping.degree_aware import ALGORITHM_CYCLES
from ..models.base import Phase
from ..models.workload import LayerDims, extract_workload
from ..models.zoo import MODEL_ZOO, get_model
from ..partition.algorithm import PARTITION_CYCLES, partition
from .harness import ComparisonResults, run_comparison
from .report import (
    format_table,
    render_headline_summary,
    render_normalized_figure,
    render_table1_coverage,
    render_table2_operations,
)

__all__ = [
    "ExperimentResult",
    "EXPERIMENTS",
    "run_experiment",
    "list_experiments",
    "set_sweep_options",
]


@dataclass
class ExperimentResult:
    """One regenerated paper artifact."""

    experiment_id: str
    title: str
    text: str  # rendered table, printable next to the paper's figure
    data: dict[str, Any] = field(default_factory=dict)


# Cache the expensive five-dataset sweep across experiments in one run.
_SWEEP_CACHE: dict[tuple, ComparisonResults] = {}

# Execution-layer options for the shared sweep (set from the CLI's
# ``--jobs``/``--cache`` flags); pure performance knobs — results are
# identical whichever executor/cache drains the grid.
_SWEEP_OPTIONS: dict[str, Any] = {"jobs": 1, "cache": None}


def set_sweep_options(*, jobs: int | None = None, cache: Any = None) -> None:
    """Configure how experiment sweeps execute (parallelism + caching).

    ``jobs`` is a worker count (1 = serial); ``cache`` accepts anything
    :func:`repro.runtime.as_cache` does (``True``, ``None``, or a
    :class:`repro.runtime.ResultCache`).
    """
    if jobs is not None:
        _SWEEP_OPTIONS["jobs"] = jobs
    if cache is not None:
        _SWEEP_OPTIONS["cache"] = cache


def _sweep(model: str = "gcn") -> ComparisonResults:
    key = (model,)
    if key not in _SWEEP_CACHE:
        _SWEEP_CACHE[key] = run_comparison(
            model=model,
            jobs=_SWEEP_OPTIONS["jobs"],
            cache=_SWEEP_OPTIONS["cache"],
        )
    return _SWEEP_CACHE[key]


def table1_coverage() -> ExperimentResult:
    """E1 — Table I: GNN coverage and features per accelerator."""
    text = render_table1_coverage()
    data = {
        t.name: {
            "c_gnn": t.supports_c_gnn,
            "a_gnn": t.supports_a_gnn,
            "mp_gnn": t.supports_mp_gnn,
            "flexible_noc": t.flexible_noc,
            "message_passing": t.message_passing,
        }
        for t in BASELINE_TRAITS
    }
    data["aurora"] = {
        "c_gnn": True,
        "a_gnn": True,
        "mp_gnn": True,
        "flexible_noc": True,
        "message_passing": True,
    }
    return ExperimentResult("E1", "Table I: coverage", text, data)


def table2_operations() -> ExperimentResult:
    """E2 — Table II: required operations per phase per model."""
    text = render_table2_operations()
    data = {
        name: {
            phase.value: [op.value for op in model.phase_spec(phase).op_kinds()]
            for phase in Phase
        }
        for name, model in MODEL_ZOO.items()
    }
    return ExperimentResult("E2", "Table II: operations", text, data)


def _figure(metric: str, eid: str, title: str) -> ExperimentResult:
    comp = _sweep()
    text = render_normalized_figure(comp, metric, title=title)
    return ExperimentResult(
        eid,
        title,
        text,
        data={
            "normalized": comp.normalized_grid(metric),
            "per_dataset_reduction_percent": {
                ds: comp.per_dataset_reduction(metric, ds) for ds in comp.datasets
            },
        },
    )


def fig7_dram() -> ExperimentResult:
    """E3 — Fig. 7: normalized DRAM accesses."""
    return _figure("dram_accesses", "E3", "Fig. 7: normalized DRAM accesses")


def fig8_onchip() -> ExperimentResult:
    """E4 — Fig. 8: on-chip communication latency."""
    return _figure("onchip_latency", "E4", "Fig. 8: on-chip communication latency")


def fig9_time() -> ExperimentResult:
    """E5 — Fig. 9: normalized execution time."""
    return _figure("execution_time", "E5", "Fig. 9: normalized execution time")


def fig10_energy() -> ExperimentResult:
    """E6 — Fig. 10: normalized energy consumption."""
    return _figure("energy", "E6", "Fig. 10: normalized energy consumption")


def area_breakdown() -> ExperimentResult:
    """E7 — §VI-F: area breakdown of the 32×32 configuration."""
    cfg = default_config()
    model = AreaModel()
    pe = model.pe_breakdown(cfg)
    chip = model.chip_breakdown(cfg)
    rows = [
        ["PE: MAC array", f"{100 * pe.fraction('mac_array'):.1f}%", "7.1%"],
        ["PE: memory (SMB/IDMB/ODMB)", f"{100 * pe.fraction('memory'):.1f}%", "82.9%"],
        [
            "PE: control + switches",
            f"{100 * pe.fraction('control_and_switches'):.1f}%",
            "3.7%",
        ],
        ["chip: PE array", f"{100 * chip.fraction('pe_array'):.1f}%", "62.74%"],
        [
            "chip: flexible interconnect",
            f"{100 * chip.fraction('flexible_interconnect'):.1f}%",
            "5.2%",
        ],
        ["chip: controller", f"{100 * chip.fraction('controller'):.1f}%", "0.9%"],
    ]
    text = format_table(
        ["component", "measured", "paper"], rows, title="Area breakdown (§VI-F)"
    )
    return ExperimentResult(
        "E7",
        "Area breakdown",
        text,
        data={"pe": pe, "chip": chip},
    )


def reconfiguration_overhead() -> ExperimentResult:
    """E8 — §VI-D: reconfiguration and mapping/partition overheads."""
    cfg = default_config()
    graph = load_dataset("cora", scale=0.2)
    wl = extract_workload(
        get_model("gcn"), graph, LayerDims(graph.num_features, 64)
    )
    strat = partition(wl, cfg.num_pes, cfg.flops_per_pe_per_cycle * cfg.frequency_hz)
    rows = [
        ["reconfiguration (2K−1)", str(cfg.reconfiguration_cycles), "63"],
        ["mapping algorithm", str(ALGORITHM_CYCLES), "~100"],
        ["partition algorithm", str(PARTITION_CYCLES), "~100"],
    ]
    text = format_table(
        ["overhead", "measured cycles", "paper"],
        rows,
        title="Reconfiguration/mapping overhead (§VI-D)",
    )
    return ExperimentResult(
        "E8",
        "Reconfiguration overhead",
        text,
        data={
            "reconfiguration_cycles": cfg.reconfiguration_cycles,
            "partition": strat,
        },
    )


def ablation_mapping() -> ExperimentResult:
    """E9 — degree-aware vs hashing mapping (the CGRA-ME comparison)."""
    rows = []
    data = {}
    for ds in ("cora", "citeseer", "pubmed"):
        graph = load_dataset(ds, scale=0.5 if ds == "pubmed" else 1.0)
        dims = LayerDims(graph.num_features, 64)
        aware = AuroraSimulator(mapping_policy="degree-aware").simulate_layer(
            get_model("gcn"), graph, dims
        )
        hashed = AuroraSimulator(mapping_policy="hashing").simulate_layer(
            get_model("gcn"), graph, dims
        )
        speedup = hashed.total_seconds / aware.total_seconds
        rows.append([ds, f"{speedup:.2f}x"])
        data[ds] = {
            "degree_aware_s": aware.total_seconds,
            "hashing_s": hashed.total_seconds,
            "speedup": speedup,
        }
    text = format_table(
        ["dataset", "degree-aware speedup over hashing"],
        rows,
        title="Ablation: degree-aware vs hashing mapping",
    )
    return ExperimentResult("E9", "Mapping ablation", text, data=data)


def ablation_partition() -> ExperimentResult:
    """E10 — Algorithm 2's balanced split vs naive fixed splits."""
    cfg = default_config()
    flops = cfg.flops_per_pe_per_cycle * cfg.frequency_hz
    rows = []
    data = {}
    graph = load_dataset("cora")
    for model_name in ("gcn", "ggcn", "graphsage-pool"):
        model = get_model(model_name)
        wl = extract_workload(model, graph, LayerDims(graph.num_features, 64))
        best = partition(wl, cfg.num_pes, flops)
        # Naive halves split.
        half_a = cfg.num_pes // 2
        from ..partition.algorithm import _t_a, _t_b  # internal comparators

        t_half = max(_t_a(wl, half_a, flops), _t_b(wl, cfg.num_pes - half_a, flops))
        gain = t_half / best.pipeline_interval if best.pipeline_interval else 1.0
        rows.append(
            [model_name, str(best.a), f"{best.imbalance:.3f}", f"{gain:.2f}x"]
        )
        data[model_name] = {
            "a": best.a,
            "imbalance": best.imbalance,
            "gain_vs_half_split": gain,
        }
    text = format_table(
        ["model", "chosen a", "|T_A-T_B| rel.", "gain vs 50/50 split"],
        rows,
        title="Ablation: partition algorithm vs fixed split",
    )
    return ExperimentResult("E10", "Partition ablation", text, data=data)


def ablation_bypass() -> ExperimentResult:
    """E11 — bypass links on/off under hub-heavy traffic."""
    from ..arch.noc.analytical import AnalyticalNoCModel, TrafficMatrix
    from ..arch.noc.topology import BypassSegment, FlexibleMeshTopology
    from ..mapping.base import PERegion
    from ..mapping.degree_aware import degree_aware_map
    from ..mapping.traffic import aggregate_flows, multicast_flows

    cfg = default_config()
    graph = load_dataset("cora")
    region = PERegion(0, 0, cfg.array_k, 8, cfg.array_k)
    cap = max(1, -(-graph.num_vertices // region.num_pes))
    mapping = degree_aware_map(graph, region, pe_vertex_capacity=cap)
    mc = multicast_flows(graph, mapping, graph.num_features * 8)
    traffic = TrafficMatrix.from_flows(
        aggregate_flows(mc.flows, cfg.num_pes), cfg.noc.flit_bytes, cfg.array_k
    )
    eject = mc.eject_bytes // cfg.noc.flit_bytes
    inject = mc.inject_bytes // cfg.noc.flit_bytes

    plain = FlexibleMeshTopology(cfg.array_k)
    with_bypass = FlexibleMeshTopology(cfg.array_k)
    for seg in mapping.bypass_segments:
        try:
            with_bypass.add_bypass_segment(seg)
        except ValueError:
            continue
    res_plain = AnalyticalNoCModel(plain, cfg.noc).evaluate(
        traffic, eject_flits=eject, inject_flits=inject
    )
    res_bypass = AnalyticalNoCModel(with_bypass, cfg.noc).evaluate(
        traffic,
        boost_nodes=mapping.s_pe_nodes,
        boost_factor=max(3.0, region.width / 2),
        eject_flits=eject,
        inject_flits=inject,
    )
    gain = res_plain.drain_cycles / max(res_bypass.drain_cycles, 1)
    rows = [
        ["plain mesh", f"{res_plain.drain_cycles:,}", f"{res_plain.avg_hops:.2f}"],
        [
            "mesh + bypass",
            f"{res_bypass.drain_cycles:,}",
            f"{res_bypass.avg_hops:.2f}",
        ],
        ["drain speedup", f"{gain:.2f}x", ""],
    ]
    text = format_table(
        ["configuration", "drain cycles", "avg hops"],
        rows,
        title="Ablation: bypass links on/off",
    )
    return ExperimentResult(
        "E11",
        "Bypass ablation",
        text,
        data={
            "plain": res_plain,
            "bypass": res_bypass,
            "speedup": gain,
        },
    )


def headline_summary() -> ExperimentResult:
    """E12 — the abstract's headline reductions."""
    comp = _sweep()
    text = render_headline_summary(comp)
    data = {
        base: {
            "time_reduction_percent": comp.average_reduction_vs(
                "execution_time", base
            ),
            "energy_reduction_percent": comp.average_reduction_vs("energy", base),
            "speedup_range": comp.speedup_range_vs("execution_time", base),
        }
        for base in comp.accelerators
        if base != "aurora"
    }
    return ExperimentResult("E12", "Headline summary", text, data=data)


def versatility_sweep() -> ExperimentResult:
    """E13 (extension) — Aurora runs every Table-II model on one device.

    Quantifies Table I's versatility claim: Aurora executes all ten
    models; each C-GNN-only baseline aborts on six of them and even
    non-strict execution pays the scalarisation fallback penalty.
    """
    from ..baselines import make_baseline, UnsupportedModelError

    graph = load_dataset("cora", scale=0.3)
    dims = LayerDims(graph.num_features, 32)
    rows = []
    data: dict[str, Any] = {}
    sim = AuroraSimulator()
    hygcn = make_baseline("hygcn")
    for name in MODEL_ZOO:
        model = get_model(name)
        aurora = sim.simulate_layer(model, graph, dims)
        try:
            hygcn.simulate_layer(model, graph, dims)
            hygcn_status = "runs"
        except UnsupportedModelError:
            forced = hygcn.simulate_layer(model, graph, dims, strict=False)
            hygcn_status = f"unsupported ({forced.total_seconds / aurora.total_seconds:.1f}x penalty)"
        rows.append(
            [
                name,
                model.category.value,
                f"{aurora.total_cycles:,.0f}",
                str(aurora.notes["partition_a"]),
                hygcn_status,
            ]
        )
        data[name] = {
            "aurora_cycles": aurora.total_cycles,
            "partition_a": aurora.notes["partition_a"],
            "hygcn": hygcn_status,
        }
    text = format_table(
        ["model", "category", "aurora cycles", "a (PEs)", "hygcn"],
        rows,
        title="Versatility: every Table-II model on one Aurora device",
    )
    return ExperimentResult("E13", "Versatility sweep", text, data=data)


def cycle_validation() -> ExperimentResult:
    """E14 (extension) — analytical tier vs cycle tier on matched tiles.

    Runs the flit-level engine and the counting model on identical
    workloads and reports the drain-cycle ratio — the calibration check
    behind using the analytical tier for full-dataset sweeps.  Points
    fan out through :func:`repro.eval.calibration.run_calibration_sweep`
    (executor parallelism + content-addressed result reuse).
    """
    from .calibration import CalibrationJob, run_calibration_sweep

    seeds = (1, 2, 3)
    jobs = [CalibrationJob(seed=seed) for seed in seeds]
    report = run_calibration_sweep(jobs, cache=True)
    report.raise_on_error()

    rows = []
    data = {}
    for seed, outcome in zip(seeds, report.outcomes):
        payload = outcome.result
        rows.append(
            [
                f"seed {seed}",
                f"{payload['measured']:,}",
                f"{payload['predicted']:,}",
                f"{payload['ratio']:.2f}",
            ]
        )
        data[seed] = {
            "measured": payload["measured"],
            "predicted": payload["predicted"],
            "ratio": payload["ratio"],
        }
    text = format_table(
        ["workload", "cycle-tier drain", "analytical drain", "ratio"],
        rows,
        title="Validation: analytical vs flit-level NoC drain",
    )
    return ExperimentResult("E14", "Cycle validation", text, data=data)


EXPERIMENTS: dict[str, Callable[[], ExperimentResult]] = {
    "E1": table1_coverage,
    "E2": table2_operations,
    "E3": fig7_dram,
    "E4": fig8_onchip,
    "E5": fig9_time,
    "E6": fig10_energy,
    "E7": area_breakdown,
    "E8": reconfiguration_overhead,
    "E9": ablation_mapping,
    "E10": ablation_partition,
    "E11": ablation_bypass,
    "E12": headline_summary,
    "E13": versatility_sweep,
    "E14": cycle_validation,
}


def list_experiments() -> list[str]:
    return list(EXPERIMENTS)


def run_experiment(experiment_id: str) -> ExperimentResult:
    """Run one registered experiment by id (e.g. ``"E5"``)."""
    key = experiment_id.upper()
    if key not in EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; available: {', '.join(EXPERIMENTS)}"
        )
    return EXPERIMENTS[key]()
