"""Tests for multi-request batch scheduling."""

import pytest

from repro import LayerDims, get_model
from repro.core import GNNRequest
from repro.core.batch import BatchScheduler
from repro.graphs import power_law_graph


@pytest.fixture(scope="module")
def graph():
    return power_law_graph(
        200, 900, num_features=64, feature_density=0.3, locality=0.5, seed=2
    )


def _req(graph, model="gcn", layers=1):
    return GNNRequest(
        get_model(model), graph, LayerDims(64, 16), num_layers=layers
    )


class TestScheduler:
    def test_empty_queue(self):
        out = BatchScheduler().run([])
        assert out.makespan_seconds == 0.0
        assert out.reconfig_fraction == 0.0

    def test_sequential_placement(self, graph):
        out = BatchScheduler().run([_req(graph), _req(graph)])
        a, b = out.scheduled
        assert a.start_seconds == 0.0
        assert b.start_seconds == pytest.approx(a.end_seconds)

    def test_same_model_no_reconfig(self, graph):
        out = BatchScheduler().run([_req(graph), _req(graph)])
        assert out.total_reconfig_seconds == 0.0

    def test_model_change_charges_reconfig(self, graph):
        out = BatchScheduler().run(
            [_req(graph, "gcn"), _req(graph, "ggcn"), _req(graph, "gcn")]
        )
        expected = 2 * 63 / 700e6  # two model switches at 2K-1 cycles
        assert out.total_reconfig_seconds == pytest.approx(expected)

    def test_reconfig_fraction_small(self):
        """Paper §VI-E: reconfiguration is a negligible share (<3%) on
        dataset-scale requests (micro-graphs exaggerate the fixed cost)."""
        from repro import load_dataset

        cora = load_dataset("cora", scale=0.5)
        queue = [
            GNNRequest(get_model(m), cora, LayerDims(cora.num_features, 64))
            for m in ("gcn", "gin", "agnn", "ggcn", "edgeconv-1", "gcn")
        ]
        out = BatchScheduler().run(queue)
        assert out.reconfig_fraction < 0.03

    def test_makespan_is_sum(self, graph):
        out = BatchScheduler().run([_req(graph, "gcn"), _req(graph, "agnn")])
        total = sum(
            s.reconfig_seconds + s.result.total_seconds for s in out.scheduled
        )
        assert out.makespan_seconds == pytest.approx(total)

    def test_energy_accumulates(self, graph):
        one = BatchScheduler().run([_req(graph)])
        two = BatchScheduler().run([_req(graph), _req(graph)])
        assert two.total_energy_joules == pytest.approx(
            2 * one.total_energy_joules, rel=1e-6
        )

    def test_multilayer_request(self, graph):
        out = BatchScheduler().run([_req(graph, layers=2)])
        assert out.scheduled[0].result.notes["layers"] == 2

    def test_mixed_models_all_complete(self, graph):
        queue = [_req(graph, m) for m in ("gcn", "graphsage-pool", "edgeconv-5")]
        out = BatchScheduler().run(queue)
        assert [s.model_name for s in out.scheduled] == [
            "gcn",
            "graphsage-pool",
            "edgeconv-5",
        ]
