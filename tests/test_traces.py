"""Tests for execution-trace reconstruction and export."""

import json

import pytest

from repro import AuroraSimulator, LayerDims, get_model
from repro.config import AcceleratorConfig
from repro.eval.traces import build_trace, save_chrome_trace, to_chrome_trace
from repro.graphs import power_law_graph


@pytest.fixture(scope="module")
def layer_result():
    g = power_law_graph(
        1200, 6000, num_features=256, feature_density=1.0, locality=0.5, seed=6
    )
    cfg = AcceleratorConfig(pe_buffer_bytes=2048)  # force several tiles
    return AuroraSimulator(cfg).simulate_layer(
        get_model("gcn"), g, LayerDims(256, 32)
    )


class TestBuildTrace:
    def test_events_per_tile(self, layer_result):
        events = build_trace(layer_result)
        tiles = layer_result.num_tiles
        lanes = {e.lane for e in events}
        assert lanes == {"sub-accelerator A", "sub-accelerator B"}
        assert sum(e.lane == "sub-accelerator A" for e in events) == tiles

    def test_flow_shop_ordering(self, layer_result):
        """B events never start before their tile's A event finishes, and
        each lane is serially occupied."""
        events = build_trace(layer_result)
        a = {e.tile: e for e in events if e.lane == "sub-accelerator A"}
        b = {e.tile: e for e in events if e.lane == "sub-accelerator B"}
        for tile, be in b.items():
            assert be.start_seconds >= a[tile].end_seconds - 1e-12
        for lane_events in (list(a.values()), list(b.values())):
            lane_events.sort(key=lambda e: e.start_seconds)
            for e1, e2 in zip(lane_events, lane_events[1:]):
                assert e2.start_seconds >= e1.end_seconds - 1e-12

    def test_makespan_below_total(self, layer_result):
        events = build_trace(layer_result)
        makespan = max(e.end_seconds for e in events)
        # The result's total adds startup overheads on top of the pipeline.
        assert makespan <= layer_result.total_seconds + 1e-12

    def test_baseline_results_rejected(self):
        from repro import make_baseline
        from repro.graphs import power_law_graph

        g = power_law_graph(100, 400, num_features=16, seed=1)
        r = make_baseline("gcnax").simulate_layer(
            get_model("gcn"), g, LayerDims(16, 8)
        )
        with pytest.raises(ValueError, match="per-tile stage"):
            build_trace(r)


class TestChromeExport:
    def test_structure(self, layer_result):
        obj = to_chrome_trace(build_trace(layer_result))
        assert "traceEvents" in obj
        kinds = {e["ph"] for e in obj["traceEvents"]}
        assert kinds == {"M", "X"}

    def test_round_trips_through_json(self, layer_result, tmp_path):
        path = tmp_path / "trace.json"
        save_chrome_trace(build_trace(layer_result), path)
        loaded = json.loads(path.read_text())
        xs = [e for e in loaded["traceEvents"] if e["ph"] == "X"]
        assert len(xs) == len(build_trace(layer_result))
        assert all(e["dur"] >= 0 for e in xs)
