"""Tiered result lookup: in-process LRU → disk shards → peer fetch.

The router consults progressively slower tiers before paying for a
simulation:

1. **memory** — a bounded LRU of result dicts inside the router
   process; repeated hot jobs never leave it.
2. **disk** — the replicas' on-disk :class:`~repro.runtime.ResultCache`
   shards, read directly (same host, content-addressed paths, atomic
   writes make concurrent reads safe).  After a ring change this is
   what rescues results the *previous* owner computed.
3. **peer** — ``GET /result/<key>`` against other replicas, for
   deployments where shards are not locally readable (the TCP-peer
   future in the roadmap).  Injected as an async callable so the
   router decides which peers to ask.

Only a miss through every tier reaches the owner replica's
``/simulate`` — and the computed result is then inserted back into the
memory tier.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Awaitable, Callable, Sequence

from ..runtime.cache import ResultCache

__all__ = ["ResultLRU", "TieredResultStore"]

#: Async peer lookup: key -> result dict or None.
PeerFetch = Callable[[str], Awaitable["dict | None"]]


class ResultLRU:
    """Bounded, thread-safe LRU of result dicts keyed by job hash."""

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        self.capacity = capacity
        self._data: OrderedDict[str, dict] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: str) -> dict | None:
        with self._lock:
            value = self._data.get(key)
            if value is None:
                self.misses += 1
                return None
            self._data.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: str, value: dict) -> None:
        if self.capacity == 0:
            return
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
                self._data[key] = value
                return
            self._data[key] = value
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)
                self.evictions += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "capacity": self.capacity,
                "entries": len(self._data),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }


class TieredResultStore:
    """The memory → disk → peer lookup chain in front of recompute."""

    def __init__(
        self,
        *,
        lru: ResultLRU | None = None,
        disk_shards: Sequence[ResultCache] = (),
        peer_fetch: PeerFetch | None = None,
    ) -> None:
        self.lru = lru
        self.disk_shards = list(disk_shards)
        self.peer_fetch = peer_fetch
        self.tier_hits = {"memory": 0, "disk": 0, "peer": 0}
        self.lookups = 0
        self.misses = 0

    async def lookup(self, key: str) -> tuple[dict | None, str | None]:
        """Walk the tiers; returns ``(result, tier_name)`` or ``(None, None)``."""
        self.lookups += 1
        if self.lru is not None:
            result = self.lru.get(key)
            if result is not None:
                self.tier_hits["memory"] += 1
                return result, "memory"
        for shard in self.disk_shards:
            result = shard.load(key)
            if result is not None:
                self.tier_hits["disk"] += 1
                self.insert(key, result)
                return result, "disk"
        if self.peer_fetch is not None:
            result = await self.peer_fetch(key)
            if result is not None:
                self.tier_hits["peer"] += 1
                self.insert(key, result)
                return result, "peer"
        self.misses += 1
        return None, None

    def insert(self, key: str, result: dict) -> None:
        """Remember a freshly obtained result in the memory tier."""
        if self.lru is not None:
            self.lru.put(key, result)

    def add_shard(self, cache: ResultCache) -> None:
        self.disk_shards.append(cache)

    def snapshot(self) -> dict:
        return {
            "lookups": self.lookups,
            "misses": self.misses,
            "tier_hits": dict(self.tier_hits),
            "memory": self.lru.snapshot() if self.lru is not None else None,
            "disk_shards": len(self.disk_shards),
            "peer_fetch": self.peer_fetch is not None,
        }
