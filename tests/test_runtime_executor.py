"""Tests for the pluggable job executors."""

import time

import pytest

from repro.runtime import (
    FakeExecutor,
    ProcessExecutor,
    SerialExecutor,
    SimJob,
    get_executor,
)

SMALL = dict(scale=0.1, hidden=8, num_layers=1)


def _grid():
    return [
        SimJob(accelerator=acc, **SMALL)
        for acc in ("aurora", "hygcn", "gcnax", "awb-gcn")
    ]


def _echo(job):
    return {"dataset": job.dataset}


def _sleepy(job):
    time.sleep(2.0)
    return {}


def _hang_on_seed_1(job):
    """A deliberately hanging job (seed 1); everything else is instant."""
    if job.seed == 1:
        time.sleep(60.0)
    return {"dataset": job.dataset, "seed": job.seed}


class TestSerial:
    def test_records_in_input_order(self):
        jobs = _grid()
        records = SerialExecutor().run(jobs, fn=_echo)
        assert [r.job for r in records] == jobs
        assert all(r.ok and r.payload == {"dataset": "cora"} for r in records)

    def test_failure_isolation(self):
        bad = SimJob(dataset="cora", accelerator="nonesuch", **SMALL)
        records = SerialExecutor().run([bad, SimJob(**SMALL)])
        assert not records[0].ok
        assert "KeyError" in records[0].error
        assert records[1].ok

    def test_empty_batch(self):
        assert SerialExecutor().run([]) == []


class TestProcessPool:
    def test_matches_serial_results(self):
        jobs = _grid()
        serial = SerialExecutor().run(jobs)
        parallel = ProcessExecutor(2).run(jobs)
        assert [r.payload for r in parallel] == [r.payload for r in serial]

    def test_failure_isolation_across_processes(self):
        bad = SimJob(dataset="cora", accelerator="nonesuch", **SMALL)
        records = ProcessExecutor(2).run([bad, SimJob(**SMALL)])
        assert not records[0].ok and records[1].ok

    def test_timeout_becomes_error_record(self):
        records = ProcessExecutor(1, timeout=0.2).run([SimJob(**SMALL)], fn=_sleepy)
        assert not records[0].ok
        assert "timeout" in records[0].error

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            ProcessExecutor(0)

    def test_empty_batch(self):
        assert ProcessExecutor(2).run([]) == []

    def test_timeout_reaps_stuck_worker(self):
        """A hung job must not occupy its pool slot for the whole sweep.

        With one worker, the hanging first job would block the second
        forever if its worker were merely abandoned; reaping the worker
        and resubmitting lets the second job complete normally.
        """
        jobs = [SimJob(seed=1, **SMALL), SimJob(seed=2, **SMALL)]
        start = time.perf_counter()
        records = ProcessExecutor(1, timeout=1.5).run(jobs, fn=_hang_on_seed_1)
        elapsed = time.perf_counter() - start
        assert not records[0].ok
        assert "timeout" in records[0].error
        assert records[1].ok
        assert records[1].payload == {"dataset": "cora", "seed": 2}
        # Far below the 60s hang: the stuck worker was killed, not awaited.
        assert elapsed < 30.0

    def test_timeout_keeps_input_order(self):
        """Records stay in input order even across a pool restart."""
        jobs = [SimJob(seed=s, **SMALL) for s in (2, 1, 3)]
        records = ProcessExecutor(2, timeout=1.5).run(jobs, fn=_hang_on_seed_1)
        assert [r.job for r in records] == jobs
        by_seed = {r.job.seed: r for r in records}
        assert not by_seed[1].ok and "timeout" in by_seed[1].error
        assert by_seed[2].ok and by_seed[3].ok


class TestFake:
    def test_deterministic_and_recording(self):
        fake = FakeExecutor(fn=_echo)
        jobs = _grid()
        records = fake.run(jobs)
        assert fake.calls == jobs
        assert all(r.seconds == 0.0 for r in records)

    def test_scripted_failures(self):
        fake = FakeExecutor(
            fn=_echo, fail_when=lambda j: j.accelerator == "gcnax"
        )
        records = fake.run(_grid())
        failed = [r for r in records if not r.ok]
        assert len(failed) == 1
        assert failed[0].error == "injected failure"
        assert failed[0].job.accelerator == "gcnax"


class TestErrorRecordOrdering:
    """Error records must sit at their job's input position, for every
    executor — `run_jobs` zips records back to jobs positionally."""

    def _mixed_grid(self):
        good = SimJob(**SMALL)
        bad = SimJob(dataset="cora", accelerator="nonesuch", **SMALL)
        return [good, bad, SimJob(seed=9, **SMALL), bad]

    def test_serial_preserves_positions(self):
        jobs = self._mixed_grid()
        records = SerialExecutor().run(jobs)
        assert [r.job for r in records] == jobs
        assert [r.ok for r in records] == [True, False, True, False]

    def test_process_preserves_positions(self):
        jobs = self._mixed_grid()
        records = ProcessExecutor(2).run(jobs)
        assert [r.job for r in records] == jobs
        assert [r.ok for r in records] == [True, False, True, False]

    def test_fake_preserves_positions(self):
        jobs = self._mixed_grid()
        fake = FakeExecutor(fail_when=lambda j: j.accelerator == "nonesuch")
        records = fake.run(jobs)
        assert [r.job for r in records] == jobs
        assert [r.ok for r in records] == [True, False, True, False]


class TestSelection:
    def test_one_job_is_serial(self):
        assert isinstance(get_executor(1), SerialExecutor)

    def test_many_jobs_is_process_pool(self):
        ex = get_executor(4)
        assert isinstance(ex, ProcessExecutor)
        assert ex.max_workers == 4

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            get_executor(0)
