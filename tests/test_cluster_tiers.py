"""The tiered lookup chain: LRU semantics, tier order, re-promotion."""

import asyncio

import pytest

from repro.cluster import ResultLRU, TieredResultStore
from repro.runtime import ResultCache


def lookup(store, key):
    return asyncio.run(store.lookup(key))


class TestResultLRU:
    def test_miss_then_hit(self):
        lru = ResultLRU(4)
        assert lru.get("a") is None
        lru.put("a", {"v": 1})
        assert lru.get("a") == {"v": 1}
        assert lru.hits == 1
        assert lru.misses == 1

    def test_eviction_is_least_recently_used(self):
        lru = ResultLRU(2)
        lru.put("a", {"v": 1})
        lru.put("b", {"v": 2})
        lru.get("a")  # refresh a; b is now the eviction candidate
        lru.put("c", {"v": 3})
        assert lru.get("b") is None
        assert lru.get("a") == {"v": 1}
        assert lru.get("c") == {"v": 3}
        assert lru.evictions == 1

    def test_put_updates_in_place(self):
        lru = ResultLRU(2)
        lru.put("a", {"v": 1})
        lru.put("a", {"v": 2})
        assert lru.get("a") == {"v": 2}
        assert len(lru) == 1

    def test_zero_capacity_disables(self):
        lru = ResultLRU(0)
        lru.put("a", {"v": 1})
        assert lru.get("a") is None
        assert len(lru) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            ResultLRU(-1)

    def test_snapshot(self):
        lru = ResultLRU(4)
        lru.put("a", {"v": 1})
        lru.get("a")
        lru.get("missing")
        assert lru.snapshot() == {
            "capacity": 4,
            "entries": 1,
            "hits": 1,
            "misses": 1,
            "evictions": 0,
        }


class TestTieredResultStore:
    def test_memory_hit(self):
        store = TieredResultStore(lru=ResultLRU(4))
        store.insert("k", {"v": 1})
        assert lookup(store, "k") == ({"v": 1}, "memory")
        assert store.tier_hits["memory"] == 1

    def test_full_miss(self):
        store = TieredResultStore(lru=ResultLRU(4))
        assert lookup(store, "nope") == (None, None)
        assert store.misses == 1

    def test_disk_hit_promotes_to_memory(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store("k" * 8, {"v": 2})
        store = TieredResultStore(lru=ResultLRU(4), disk_shards=[cache])
        assert lookup(store, "k" * 8) == ({"v": 2}, "disk")
        # Second lookup is answered by the memory tier.
        assert lookup(store, "k" * 8) == ({"v": 2}, "memory")

    def test_later_shard_consulted(self, tmp_path):
        empty = ResultCache(tmp_path / "a")
        full = ResultCache(tmp_path / "b")
        full.store("k" * 8, {"v": 3})
        store = TieredResultStore(disk_shards=[empty, full])
        assert lookup(store, "k" * 8) == ({"v": 3}, "disk")

    def test_peer_fetch_last_and_promoting(self):
        asked = []

        async def peer(key):
            asked.append(key)
            return {"v": 4}

        store = TieredResultStore(lru=ResultLRU(4), peer_fetch=peer)
        assert lookup(store, "k") == ({"v": 4}, "peer")
        assert asked == ["k"]
        assert lookup(store, "k") == ({"v": 4}, "memory")
        assert asked == ["k"]  # not asked again

    def test_peer_miss_is_a_miss(self):
        async def peer(key):
            return None

        store = TieredResultStore(peer_fetch=peer)
        assert lookup(store, "k") == (None, None)

    def test_insert_without_lru_is_noop(self):
        store = TieredResultStore()
        store.insert("k", {"v": 1})
        assert lookup(store, "k") == (None, None)

    def test_add_shard(self, tmp_path):
        store = TieredResultStore()
        cache = ResultCache(tmp_path)
        cache.store("k" * 8, {"v": 5})
        store.add_shard(cache)
        assert lookup(store, "k" * 8) == ({"v": 5}, "disk")

    def test_snapshot(self, tmp_path):
        store = TieredResultStore(
            lru=ResultLRU(4), disk_shards=[ResultCache(tmp_path)]
        )
        store.insert("k", {"v": 1})
        lookup(store, "k")
        lookup(store, "missing")
        snap = store.snapshot()
        assert snap["lookups"] == 2
        assert snap["misses"] == 1
        assert snap["tier_hits"] == {"memory": 1, "disk": 0, "peer": 0}
        assert snap["disk_shards"] == 1
        assert snap["peer_fetch"] is False
        assert snap["memory"]["entries"] == 1
