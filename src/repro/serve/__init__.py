"""Async simulation service: long-lived, batching, cache-fronted.

Turns the one-shot simulation CLI into a daemon that amortizes warm
state across requests:

* :mod:`.http` — minimal stdlib HTTP/1.1 on asyncio streams;
* :mod:`.protocol` — request canonicalization into frozen
  :class:`~repro.runtime.SimJob` specs and response encoding;
* :mod:`.admission` — bounded in-flight budget with 429 shedding and
  the drain lifecycle;
* :mod:`.batcher` — single-flight deduplication + micro-batching over
  :func:`repro.runtime.run_jobs`;
* :mod:`.server` — the service, ``/simulate`` ``/healthz`` ``/stats``,
  SIGTERM drain, and a thread host for tests/benches;
* :mod:`.client` — blocking client with retries, exponential backoff +
  jitter, and deadline propagation.

CLI: ``repro serve`` / ``repro request``; see ``docs/serving.md``.
"""

from .admission import AdmissionController, AdmissionStats
from .batcher import JobBatcher
from .client import (
    DeadlineExceeded,
    RequestFailed,
    ServeClient,
    ServeError,
    ServiceUnavailable,
)
from .protocol import ProtocolError, parse_simulation_request
from .server import LatencyWindow, ServerThread, SimulationService, serve_forever

__all__ = [
    "AdmissionController",
    "AdmissionStats",
    "JobBatcher",
    "ServeClient",
    "ServeError",
    "RequestFailed",
    "DeadlineExceeded",
    "ServiceUnavailable",
    "ProtocolError",
    "parse_simulation_request",
    "LatencyWindow",
    "ServerThread",
    "SimulationService",
    "serve_forever",
]
