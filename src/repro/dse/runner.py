"""Search driver: optimizer batches → ``run_jobs`` → trajectory.

:class:`DSERunner` owns one search: it asks the optimizer for candidate
batches, encodes them into content-addressed :class:`SimJob` specs,
evaluates them through the same ``run_jobs`` path every sweep in the
repo uses (cache probe → executor fan-out → write-back), feeds fitness
back, and records every evaluation in a trajectory JSONL.

Budgets are dual: ``max_evaluations`` bounds the search length
deterministically, ``max_seconds`` arms a timer that sets the shared
cancel event — in-flight batches stop mid-flight via the executors'
cancellation support instead of draining.  Checkpoints store the
spec plus the full ask/tell history; resume *replays* that history
through a freshly seeded optimizer (no re-simulation — the cache would
absorb it anyway, but replay keeps the optimizer's RNG state exact), so
a resumed search continues the identical trajectory.
"""

from __future__ import annotations

import json
import math
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

from ..core.results import SimulationResult
from ..runtime.executor import CANCELLED
from ..runtime.jobs import SimJob, job_key
from ..runtime.runner import JobOutcome, run_jobs
from .artifacts import TrajectoryWriter, summarize_trajectory
from .optimizers import Candidate, Optimizer, build_optimizer
from .space import DesignSpace, build_space

__all__ = [
    "OBJECTIVES",
    "SearchSpec",
    "SearchResult",
    "DSERunner",
    "evaluate_grid",
    "CHECKPOINT_SCHEMA_VERSION",
]

CHECKPOINT_SCHEMA_VERSION = 1

#: Fitness objectives (minimised) over a simulation result.
OBJECTIVES: dict[str, Callable[[SimulationResult], float]] = {
    "latency": lambda r: float(r.total_seconds),
    "energy": lambda r: float(r.energy_joules),
    "edp": lambda r: float(r.total_seconds) * float(r.energy_joules),
    "dram": lambda r: float(r.dram_bytes),
    "comm": lambda r: float(r.onchip_comm_cycles),
}


@dataclass(frozen=True)
class SearchSpec:
    """Everything that determines a search, as pure data.

    ``workload`` holds :class:`SimJob` overrides for the base job the
    space varies around (dataset, model, scale, hidden, num_layers,
    seed); ``options`` is passed to the optimizer constructor.
    A spec plus a seed is the whole search: two runs of the same spec
    produce bit-identical trajectories.
    """

    space: str = "aurora-core"
    optimizer: str = "random"
    objective: str = "latency"
    seed: int = 0
    max_evaluations: int = 200
    max_seconds: float | None = None
    batch: int = 8
    options: dict = field(default_factory=dict)
    workload: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.objective not in OBJECTIVES:
            raise ValueError(
                f"unknown objective {self.objective!r}; "
                f"available: {', '.join(OBJECTIVES)}"
            )
        if self.max_evaluations < 1:
            raise ValueError("max_evaluations must be >= 1")
        if self.batch < 1:
            raise ValueError("batch must be >= 1")

    def base_job(self) -> SimJob:
        return SimJob(**self.workload)

    def as_dict(self) -> dict:
        return {
            "space": self.space,
            "optimizer": self.optimizer,
            "objective": self.objective,
            "seed": self.seed,
            "max_evaluations": self.max_evaluations,
            "max_seconds": self.max_seconds,
            "batch": self.batch,
            "options": dict(self.options),
            "workload": dict(self.workload),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SearchSpec":
        known = {
            "space",
            "optimizer",
            "objective",
            "seed",
            "max_evaluations",
            "max_seconds",
            "batch",
            "options",
            "workload",
        }
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown search spec fields: {sorted(unknown)}")
        return cls(**data)


@dataclass
class SearchResult:
    """Final accounting of one search (or grid evaluation)."""

    spec: SearchSpec | None
    evaluations: int = 0
    executed: int = 0
    served: int = 0  # evaluations satisfied by cache or in-batch dedup
    errors: int = 0
    best_fitness: float | None = None
    best_point: dict | None = None
    best_key: str | None = None
    stopped: str = "budget"  # budget | exhausted | wall-clock | cancelled
    wall_seconds: float = 0.0
    trajectory_path: str | None = None
    checkpoint_path: str | None = None

    @property
    def served_fraction(self) -> float:
        return self.served / self.evaluations if self.evaluations else 0.0

    def as_dict(self) -> dict:
        return {
            "spec": self.spec.as_dict() if self.spec else None,
            "evaluations": self.evaluations,
            "executed": self.executed,
            "served": self.served,
            "served_fraction": self.served_fraction,
            "errors": self.errors,
            "best_fitness": self.best_fitness,
            "best_point": self.best_point,
            "best_key": self.best_key,
            "stopped": self.stopped,
            "wall_seconds": self.wall_seconds,
            "trajectory_path": self.trajectory_path,
            "checkpoint_path": self.checkpoint_path,
        }


def _fitness_of(objective: str, outcome: JobOutcome) -> float:
    if outcome.ok:
        return OBJECTIVES[objective](outcome.result)
    return math.inf


class DSERunner:
    """Drive one search spec to completion (or budget exhaustion)."""

    def __init__(
        self,
        spec: SearchSpec,
        *,
        cache=None,
        executor=None,
        trajectory_path: str | Path | None = None,
        checkpoint_path: str | Path | None = None,
        resume: bool = False,
        progress: Callable[[dict], None] | None = None,
        cancel: threading.Event | None = None,
    ) -> None:
        self.spec = spec
        self.space: DesignSpace = build_space(spec.space, spec.base_job())
        self.cache = cache
        self.executor = executor
        self.trajectory_path = Path(trajectory_path) if trajectory_path else None
        self.checkpoint_path = Path(checkpoint_path) if checkpoint_path else None
        self.resume = resume
        self.progress = progress
        self.cancel = cancel if cancel is not None else threading.Event()
        self._lock = threading.Lock()
        self._snapshot: dict = {"state": "pending", "evaluations": 0}

    # -- live status (polled by the serve endpoint) --------------------
    def snapshot(self) -> dict:
        with self._lock:
            return dict(self._snapshot)

    def _publish(self, **fields) -> None:
        with self._lock:
            self._snapshot.update(fields)
        if self.progress is not None:
            self.progress(dict(fields))

    # -- checkpointing -------------------------------------------------
    def _write_checkpoint(self, batches: list[dict], evaluations: int) -> None:
        if self.checkpoint_path is None:
            return
        payload = {
            "schema_version": CHECKPOINT_SCHEMA_VERSION,
            "spec": self.spec.as_dict(),
            "signature": self.space.signature(),
            "evaluations": evaluations,
            "batches": batches,
        }
        tmp = self.checkpoint_path.with_suffix(".tmp")
        tmp.parent.mkdir(parents=True, exist_ok=True)
        tmp.write_text(json.dumps(payload, sort_keys=True))
        tmp.replace(self.checkpoint_path)

    def _load_checkpoint(self) -> dict | None:
        if (
            not self.resume
            or self.checkpoint_path is None
            or not self.checkpoint_path.exists()
        ):
            return None
        payload = json.loads(self.checkpoint_path.read_text())
        if payload.get("schema_version") != CHECKPOINT_SCHEMA_VERSION:
            raise ValueError("checkpoint schema version mismatch")
        if payload.get("signature") != self.space.signature():
            raise ValueError(
                "checkpoint was taken against a different design space "
                "or workload; refusing to resume"
            )
        return payload

    def _replay(
        self, optimizer: Optimizer, payload: dict, result: SearchResult
    ) -> list[dict]:
        """Rebuild optimizer + best-so-far state from checkpoint history.

        Replaying ask/tell (instead of pickling the optimizer) keeps the
        checkpoint format inspectable JSON and guarantees the optimizer's
        RNG sits exactly where it did — the resumed search continues the
        same trajectory the uninterrupted one would have produced.
        """
        batches: list[dict] = payload["batches"]
        for batch in batches:
            asked = optimizer.ask(len(batch["candidates"]))
            got = [list(c.indices) for c in asked]
            if got != batch["candidates"] or [
                c.rung for c in asked
            ] != batch["rungs"]:
                raise ValueError(
                    "checkpoint replay diverged; was the optimizer "
                    "implementation or seed changed?"
                )
            evaluated = list(zip(asked, batch["fitnesses"]))
            optimizer.tell(evaluated)
            for candidate, fitness, ok in zip(
                asked, batch["fitnesses"], batch["oks"]
            ):
                result.evaluations += 1
                if not ok:
                    result.errors += 1
                self._track_best(result, optimizer, candidate, fitness, ok)
        return batches

    def _track_best(
        self,
        result: SearchResult,
        optimizer: Optimizer,
        candidate: Candidate,
        fitness: float,
        ok: bool,
    ) -> None:
        """Best-so-far only counts full-fidelity evaluations — a cheap
        rung's fitness is not comparable to the real workload's."""
        if not ok or optimizer.fidelity(candidate) != 1.0:
            return
        if result.best_fitness is None or fitness < result.best_fitness:
            result.best_fitness = fitness
            result.best_point = self.space.decode(candidate.indices)
            result.best_key = job_key(
                self.space.job_for(candidate.indices, fidelity=1.0)
            )

    # -- main loop -----------------------------------------------------
    def run(self) -> SearchResult:
        spec = self.spec
        start = time.perf_counter()
        result = SearchResult(
            spec,
            trajectory_path=str(self.trajectory_path)
            if self.trajectory_path
            else None,
            checkpoint_path=str(self.checkpoint_path)
            if self.checkpoint_path
            else None,
        )
        optimizer = build_optimizer(
            spec.optimizer, self.space, seed=spec.seed, **spec.options
        )
        checkpoint = self._load_checkpoint()
        batches: list[dict] = []
        if checkpoint is not None:
            batches = self._replay(optimizer, checkpoint, result)

        writer: TrajectoryWriter | None = None
        if self.trajectory_path is not None:
            resumed = checkpoint is not None and result.evaluations > 0
            writer = TrajectoryWriter(self.trajectory_path, append=resumed)
            if not resumed:
                writer.header(
                    space=spec.space,
                    signature=self.space.signature(),
                    optimizer=spec.optimizer,
                    objective=spec.objective,
                    seed=spec.seed,
                )

        timer: threading.Timer | None = None
        deadline: float | None = None
        if spec.max_seconds is not None:
            deadline = time.monotonic() + spec.max_seconds
            timer = threading.Timer(spec.max_seconds, self.cancel.set)
            timer.daemon = True
            timer.start()

        self._publish(state="running", evaluations=result.evaluations)
        try:
            while result.evaluations < spec.max_evaluations:
                if self.cancel.is_set():
                    result.stopped = self._stop_reason(deadline)
                    break
                if optimizer.done():
                    result.stopped = "exhausted"
                    break
                want = min(spec.batch, spec.max_evaluations - result.evaluations)
                candidates = optimizer.ask(want)
                if not candidates:
                    result.stopped = "exhausted"
                    break
                jobs = [
                    self.space.job_for(
                        c.indices, fidelity=optimizer.fidelity(c)
                    )
                    for c in candidates
                ]
                report = run_jobs(
                    jobs,
                    executor=self.executor,
                    cache=self.cache,
                    cancel=self.cancel,
                )
                evaluated: list[tuple[Candidate, float]] = []
                oks: list[bool] = []
                for candidate, outcome in zip(candidates, report.outcomes):
                    if outcome.error == CANCELLED:
                        # Abandoned mid-flight: not an evaluation.  Kept
                        # out of tell/trajectory so cancellation timing
                        # can never change a deterministic trajectory.
                        continue
                    fitness = _fitness_of(spec.objective, outcome)
                    evaluated.append((candidate, fitness))
                    oks.append(outcome.ok)
                    if not outcome.ok:
                        result.errors += 1
                metrics = report.metrics
                result.executed += metrics.executed
                # Evaluations not simulated were served by the cache or
                # by in-batch dedup — the amplification BENCH_9 measures.
                result.served += len(evaluated) - metrics.executed
                optimizer.tell(evaluated)
                for (candidate, fitness), ok in zip(evaluated, oks):
                    index = result.evaluations
                    result.evaluations += 1
                    self._track_best(result, optimizer, candidate, fitness, ok)
                    if writer is not None:
                        writer.evaluation(
                            index=index,
                            key=job_key(
                                self.space.job_for(
                                    candidate.indices,
                                    fidelity=optimizer.fidelity(candidate),
                                )
                            ),
                            point=self.space.decode(candidate.indices),
                            rung=candidate.rung,
                            fidelity=optimizer.fidelity(candidate),
                            fitness=None if math.isinf(fitness) else fitness,
                            best_fitness=result.best_fitness,
                            ok=ok,
                        )
                if writer is not None:
                    writer.flush()
                if evaluated:
                    batches.append(
                        {
                            "candidates": [
                                list(c.indices) for c, _ in evaluated
                            ],
                            "rungs": [c.rung for c, _ in evaluated],
                            "fitnesses": [
                                None if math.isinf(f) else f
                                for _, f in evaluated
                            ],
                            "oks": oks,
                        }
                    )
                    self._write_checkpoint(batches, result.evaluations)
                self._publish(
                    state="running",
                    evaluations=result.evaluations,
                    executed=result.executed,
                    served=result.served,
                    best_fitness=result.best_fitness,
                    best_point=result.best_point,
                )
                if len(evaluated) < len(candidates):
                    # Some candidates were cancelled mid-batch.
                    result.stopped = self._stop_reason(deadline)
                    break
        finally:
            if timer is not None:
                timer.cancel()
            if writer is not None:
                writer.close()
        result.wall_seconds = time.perf_counter() - start
        self._publish(
            state="done",
            evaluations=result.evaluations,
            executed=result.executed,
            served=result.served,
            best_fitness=result.best_fitness,
            best_point=result.best_point,
            stopped=result.stopped,
        )
        return result

    def _stop_reason(self, deadline: float | None) -> str:
        if deadline is not None and time.monotonic() >= deadline:
            return "wall-clock"
        return "cancelled"


def evaluate_grid(
    jobs: Sequence[SimJob],
    *,
    objective: str = "latency",
    cache=None,
    executor=None,
    batch: int = 8,
    trajectory_path: str | Path | None = None,
    cancel: threading.Event | None = None,
    labels: Sequence[dict] | None = None,
) -> SearchResult:
    """Evaluate a fixed job grid through the search's evaluation path.

    This is how the paper's E1–E12 sweep rides the DSE machinery: same
    ``run_jobs`` evaluation, same trajectory artifact, same summary
    renderers — just with an explicit candidate list instead of an
    optimizer.  ``labels`` optionally supplies the per-job ``point``
    dicts recorded in the trajectory (defaults to a compact spec).
    """
    if objective not in OBJECTIVES:
        raise ValueError(
            f"unknown objective {objective!r}; available: {', '.join(OBJECTIVES)}"
        )
    jobs = list(jobs)
    if labels is not None and len(labels) != len(jobs):
        raise ValueError("labels must match jobs")
    start = time.perf_counter()
    result = SearchResult(
        None,
        trajectory_path=str(trajectory_path) if trajectory_path else None,
    )
    writer: TrajectoryWriter | None = None
    if trajectory_path is not None:
        writer = TrajectoryWriter(trajectory_path)
        writer.header(
            space="grid",
            signature="-",
            optimizer="grid",
            objective=objective,
            seed=0,
        )
    try:
        for lo in range(0, len(jobs), max(1, batch)):
            if cancel is not None and cancel.is_set():
                result.stopped = "cancelled"
                break
            chunk = jobs[lo : lo + batch]
            report = run_jobs(
                chunk, executor=executor, cache=cache, cancel=cancel
            )
            cancelled = False
            for offset, outcome in enumerate(report.outcomes):
                if outcome.error == CANCELLED:
                    cancelled = True
                    continue
                index = result.evaluations
                result.evaluations += 1
                fitness = _fitness_of(objective, outcome)
                if not outcome.ok:
                    result.errors += 1
                ok = outcome.ok
                if ok and (
                    result.best_fitness is None
                    or fitness < result.best_fitness
                ):
                    result.best_fitness = fitness
                    result.best_key = outcome.key
                    job = chunk[offset]
                    result.best_point = (
                        dict(labels[lo + offset])
                        if labels is not None
                        else {
                            "model": job.model,
                            "dataset": job.dataset,
                            "accelerator": job.accelerator,
                            "mapping": job.mapping,
                        }
                    )
                if writer is not None:
                    job = chunk[offset]
                    point = (
                        dict(labels[lo + offset])
                        if labels is not None
                        else {
                            "model": job.model,
                            "dataset": job.dataset,
                            "accelerator": job.accelerator,
                            "mapping": job.mapping,
                        }
                    )
                    writer.evaluation(
                        index=index,
                        key=outcome.key,
                        point=point,
                        rung=-1,
                        fidelity=1.0,
                        fitness=None if math.isinf(fitness) else fitness,
                        best_fitness=result.best_fitness,
                        ok=ok,
                    )
            metrics = report.metrics
            result.executed += metrics.executed
            result.served += (
                metrics.cache_hits + metrics.total_jobs - metrics.unique_jobs
            )
            if writer is not None:
                writer.flush()
            if cancelled:
                result.stopped = "cancelled"
                break
        else:
            result.stopped = "completed"
    finally:
        if writer is not None:
            writer.close()
    result.wall_seconds = time.perf_counter() - start
    return result


def trajectory_summary(path: str | Path) -> dict:
    """Convenience: summarize a trajectory file on disk."""
    from .artifacts import read_trajectory

    _, records = read_trajectory(path)
    return summarize_trajectory(records)
