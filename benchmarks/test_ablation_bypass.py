"""E11 — ablation: bypass links on/off under hub-heavy traffic."""

from conftest import emit

from repro.eval import run_experiment


def test_ablation_bypass(benchmark):
    result = benchmark(run_experiment, "E11")
    emit(result.text)
    assert result.data["speedup"] > 1.2  # bypass must help hub traffic
    assert (
        result.data["bypass"].avg_hops <= result.data["plain"].avg_hops
    )  # express segments shorten routes
