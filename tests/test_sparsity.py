"""Tests for sparse feature matrices."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graphs import power_law_graph
from repro.models.sparsity import (
    SparseFeatures,
    densify,
    random_sparse_features,
    sparse_dense_matmul,
)


@pytest.fixture(scope="module")
def graph():
    return power_law_graph(
        200, 800, num_features=500, feature_density=0.02, seed=4
    )


@pytest.fixture(scope="module")
def feats(graph):
    return random_sparse_features(graph, seed=1)


class TestSparseFeatures:
    def test_shape(self, feats, graph):
        assert feats.num_vertices == graph.num_vertices
        assert feats.num_features == graph.num_features

    def test_density_near_target(self, feats, graph):
        assert feats.density == pytest.approx(graph.feature_density, rel=0.35)

    def test_every_vertex_has_features(self, feats):
        assert feats.nnz_per_vertex().min() >= 1

    def test_storage_smaller_than_dense(self, feats):
        assert feats.storage_bytes() < feats.dense_bytes()
        assert feats.compression_ratio() > 10  # 2% density compresses well

    def test_rows_subset(self, feats):
        sub = feats.rows(np.arange(10))
        assert sub.num_vertices == 10
        assert sub.num_features == feats.num_features

    def test_deterministic(self, graph):
        a = random_sparse_features(graph, seed=7)
        b = random_sparse_features(graph, seed=7)
        assert (a.matrix != b.matrix).nnz == 0

    def test_type_check(self):
        with pytest.raises(TypeError):
            SparseFeatures(np.zeros((2, 2)))

    def test_density_override(self, graph):
        dense = random_sparse_features(graph, seed=1, density=0.5)
        assert dense.density > 0.3

    def test_invalid_density(self, graph):
        with pytest.raises(ValueError):
            random_sparse_features(graph, density=0.0)


class TestOps:
    def test_densify_matches(self, feats):
        dense = densify(feats)
        assert dense.shape == (feats.num_vertices, feats.num_features)
        assert np.allclose(dense, feats.matrix.toarray())

    def test_matmul_matches_dense(self, feats, rng):
        w = rng.normal(size=(feats.num_features, 16))
        sparse_out = sparse_dense_matmul(feats, w)
        dense_out = densify(feats) @ w
        assert np.allclose(sparse_out, dense_out)

    def test_matmul_shape_check(self, feats, rng):
        with pytest.raises(ValueError):
            sparse_dense_matmul(feats, rng.normal(size=(3, 4)))

    def test_functional_layer_on_sparse_input(self, graph, feats, rng):
        """The GCN reference runs on densified sparse features end to end."""
        from repro.models import gcn_layer

        w = rng.normal(0, 0.1, size=(graph.num_features, 8))
        out = gcn_layer(graph, densify(feats), w)
        assert out.shape == (graph.num_vertices, 8)
        assert np.all(np.isfinite(out))
