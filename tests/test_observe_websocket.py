"""Protocol tests for the hand-rolled RFC 6455 layer.

Codec roundtrips (including extended lengths and masking), handshake
validation on both sides, and the reassembler's fragmentation and
masking rules — all the cases a hostile or merely broken peer can hit.
"""

import asyncio
import struct

import pytest

from repro.observe.websocket import (
    MAX_FRAME_BYTES,
    OP_BINARY,
    OP_CLOSE,
    OP_CONT,
    OP_PING,
    OP_TEXT,
    Frame,
    FrameAssembler,
    WebSocketError,
    accept_key,
    client_handshake,
    close_code,
    encode_close,
    encode_frame,
    encode_ping,
    encode_pong,
    encode_text,
    handshake_response,
    read_frame,
)
from repro.serve.http import HTTPRequest


def parse(data: bytes) -> Frame:
    """Decode one frame from bytes through the real stream reader."""

    async def run():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await read_frame(reader)

    return asyncio.run(run())


def upgrade_request(**overrides) -> HTTPRequest:
    headers = {
        "upgrade": "websocket",
        "connection": "keep-alive, Upgrade",
        "sec-websocket-key": "dGhlIHNhbXBsZSBub25jZQ==",
        "sec-websocket-version": "13",
    }
    headers.update(overrides.pop("headers", {}))
    return HTTPRequest(
        overrides.pop("method", "GET"), "/observe", headers=headers
    )


class TestHandshake:
    def test_accept_key_rfc_vector(self):
        # The worked example from RFC 6455 §1.3.
        assert (
            accept_key("dGhlIHNhbXBsZSBub25jZQ==")
            == "s3pPLMBiTxaQ9kYGzzhZRbK+xOo="
        )

    def test_valid_upgrade_renders_101(self):
        reply = handshake_response(upgrade_request())
        assert reply.startswith(b"HTTP/1.1 101 Switching Protocols\r\n")
        assert b"Sec-WebSocket-Accept: s3pPLMBiTxaQ9kYGzzhZRbK+xOo=\r\n" in reply
        assert reply.endswith(b"\r\n\r\n")

    @pytest.mark.parametrize(
        "broken",
        [
            {"method": "POST"},
            {"headers": {"upgrade": "h2c"}},
            {"headers": {"connection": "close"}},
            {"headers": {"sec-websocket-key": ""}},
            {"headers": {"sec-websocket-version": "8"}},
        ],
    )
    def test_malformed_upgrades_are_refused(self, broken):
        with pytest.raises(WebSocketError):
            handshake_response(upgrade_request(**broken))

    def test_client_handshake_against_scripted_server(self):
        async def run():
            async def serve(reader, writer):
                raw = await reader.readuntil(b"\r\n\r\n")
                lines = raw.decode("latin-1").split("\r\n")
                headers = dict(
                    (k.strip().lower(), v.strip())
                    for k, _, v in (line.partition(":") for line in lines[1:])
                    if k
                )
                request = HTTPRequest("GET", "/observe", headers)
                writer.write(handshake_response(request))
                await writer.drain()
                writer.close()

            server = await asyncio.start_server(serve, "127.0.0.1", 0)
            host, port = server.sockets[0].getsockname()[:2]
            reader, writer = await asyncio.open_connection(host, port)
            await client_handshake(reader, writer, f"{host}:{port}")
            writer.close()
            server.close()
            await server.wait_closed()

        asyncio.run(run())  # raises WebSocketError on any mismatch

    def test_client_handshake_rejects_wrong_accept(self):
        async def run():
            async def serve(reader, writer):
                await reader.readuntil(b"\r\n\r\n")
                writer.write(
                    b"HTTP/1.1 101 Switching Protocols\r\n"
                    b"Upgrade: websocket\r\n"
                    b"Connection: Upgrade\r\n"
                    b"Sec-WebSocket-Accept: bm90LXRoZS1yaWdodC1rZXk=\r\n"
                    b"\r\n"
                )
                await writer.drain()

            server = await asyncio.start_server(serve, "127.0.0.1", 0)
            host, port = server.sockets[0].getsockname()[:2]
            reader, writer = await asyncio.open_connection(host, port)
            try:
                with pytest.raises(WebSocketError, match="Accept mismatch"):
                    await client_handshake(reader, writer, f"{host}:{port}")
            finally:
                writer.close()
                server.close()
                await server.wait_closed()

        asyncio.run(run())


class TestFrameCodec:
    @pytest.mark.parametrize("size", [0, 1, 125, 126, 65535, 65536])
    def test_length_encodings_roundtrip(self, size):
        payload = bytes(range(256)) * (size // 256 + 1)
        payload = payload[:size]
        frame = parse(encode_frame(OP_BINARY, payload))
        assert frame.fin is True
        assert frame.opcode == OP_BINARY
        assert frame.payload == payload
        assert frame.masked is False

    def test_masked_frame_unmasks_on_read(self):
        wire = encode_text("hello observe", mask=True)
        frame = parse(wire)
        assert frame.masked is True
        assert frame.payload == b"hello observe"
        assert b"hello observe" not in wire  # actually masked on the wire

    def test_close_frame_carries_code_and_reason(self):
        frame = parse(encode_close(1013, "slow consumer"))
        assert frame.opcode == OP_CLOSE
        assert close_code(frame.payload) == 1013
        assert frame.payload[2:] == b"slow consumer"
        assert close_code(b"") is None

    def test_ping_pong_payloads(self):
        assert parse(encode_ping(b"observe")).payload == b"observe"
        assert parse(encode_pong(b"observe")).opcode == 0xA

    def test_clean_eof_returns_none(self):
        assert parse(b"") is None

    def test_mid_frame_eof_is_an_error(self):
        wire = encode_text("truncated")
        with pytest.raises(WebSocketError, match="mid-frame"):
            parse(wire[: len(wire) - 3])

    def test_reserved_bits_are_refused(self):
        wire = bytearray(encode_text("x"))
        wire[0] |= 0x40  # RSV1 without a negotiated extension
        with pytest.raises(WebSocketError, match="reserved bits"):
            parse(bytes(wire))

    def test_reserved_opcode_is_refused(self):
        with pytest.raises(WebSocketError, match="reserved opcode"):
            parse(bytes([0x83, 0x00]))  # opcode 0x3 is unassigned

    def test_oversized_frame_is_refused(self):
        header = bytes([0x82, 127]) + struct.pack("!Q", MAX_FRAME_BYTES + 1)
        with pytest.raises(WebSocketError, match="exceeds"):
            parse(header)


def make_frame(opcode, payload=b"", *, fin=True, masked=True):
    return Frame(fin=fin, opcode=opcode, payload=payload, masked=masked)


class TestFrameAssembler:
    def test_fragmented_text_reassembles(self):
        assembler = FrameAssembler(require_mask=True)
        assert assembler.feed(make_frame(OP_TEXT, b"hel", fin=False)) is None
        assert assembler.feed(make_frame(OP_CONT, b"lo ", fin=False)) is None
        assert assembler.feed(make_frame(OP_CONT, b"observe")) == (
            "text",
            b"hello observe",
        )

    def test_control_frame_interleaves_fragments(self):
        assembler = FrameAssembler(require_mask=True)
        assembler.feed(make_frame(OP_TEXT, b"part", fin=False))
        assert assembler.feed(make_frame(OP_PING, b"hb")) == ("ping", b"hb")
        assert assembler.feed(make_frame(OP_CONT, b"ial")) == ("text", b"partial")

    def test_server_side_requires_masked_frames(self):
        assembler = FrameAssembler(require_mask=True)
        with pytest.raises(WebSocketError, match="must be masked"):
            assembler.feed(make_frame(OP_TEXT, b"x", masked=False))

    def test_client_side_refuses_masked_frames(self):
        assembler = FrameAssembler(require_mask=False)
        with pytest.raises(WebSocketError, match="must not be masked"):
            assembler.feed(make_frame(OP_TEXT, b"x", masked=True))

    def test_fragmented_control_frame_is_refused(self):
        assembler = FrameAssembler(require_mask=True)
        with pytest.raises(WebSocketError, match="must not be fragmented"):
            assembler.feed(make_frame(OP_PING, b"x", fin=False))

    def test_oversized_control_payload_is_refused(self):
        assembler = FrameAssembler(require_mask=True)
        with pytest.raises(WebSocketError, match="125"):
            assembler.feed(make_frame(OP_PING, b"x" * 126))

    def test_continuation_without_start_is_refused(self):
        assembler = FrameAssembler(require_mask=True)
        with pytest.raises(WebSocketError, match="without a message start"):
            assembler.feed(make_frame(OP_CONT, b"x"))

    def test_new_data_frame_mid_fragment_is_refused(self):
        assembler = FrameAssembler(require_mask=True)
        assembler.feed(make_frame(OP_TEXT, b"open", fin=False))
        with pytest.raises(WebSocketError, match="fragmented message is open"):
            assembler.feed(make_frame(OP_TEXT, b"new"))

    def test_invalid_utf8_text_is_refused(self):
        assembler = FrameAssembler(require_mask=True)
        with pytest.raises(WebSocketError, match="UTF-8"):
            assembler.feed(make_frame(OP_TEXT, b"\xff\xfe"))

    def test_message_size_cap(self):
        assembler = FrameAssembler(require_mask=True, max_message_bytes=8)
        assembler.feed(make_frame(OP_TEXT, b"12345", fin=False))
        with pytest.raises(WebSocketError, match="exceeds"):
            assembler.feed(make_frame(OP_CONT, b"6789"))
