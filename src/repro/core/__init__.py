"""Aurora core: controllers, configuration, simulator, public façade."""

from .accelerator import AuroraAccelerator, layer_plan
from .batch import BatchResult, BatchScheduler, ScheduledRequest
from .configuration import ConfigurationPlan, ConfigurationUnit
from .controller import (
    AdaptiveWorkflowGenerator,
    GNNRequest,
    PhaseStep,
    RequestDispatcher,
    Workflow,
    lower_layer_program,
)
from .cycle_engine import CycleTileEngine, CycleTileResult
from .cycle_layer import CycleLayerResult, run_cycle_layer
from .instructions import Instruction, InstructionBuffer, Opcode
from .machine import ExecutionRecord, IllegalProgram, Machine, MachineState
from .pipeline import overlapped_time, pipeline_time
from .results import PhaseBreakdown, SimulationResult
from .simulator import AuroraSimulator

__all__ = [
    "AuroraAccelerator",
    "AuroraSimulator",
    "layer_plan",
    "SimulationResult",
    "PhaseBreakdown",
    "GNNRequest",
    "Workflow",
    "PhaseStep",
    "AdaptiveWorkflowGenerator",
    "RequestDispatcher",
    "lower_layer_program",
    "Instruction",
    "InstructionBuffer",
    "Opcode",
    "Machine",
    "MachineState",
    "IllegalProgram",
    "ExecutionRecord",
    "BatchScheduler",
    "BatchResult",
    "ScheduledRequest",
    "CycleTileEngine",
    "CycleLayerResult",
    "run_cycle_layer",
    "CycleTileResult",
    "ConfigurationUnit",
    "ConfigurationPlan",
    "pipeline_time",
    "overlapped_time",
]
