"""Traffic extraction: mapped subgraph → NoC flows.

Converts a graph tile plus a vertex→PE placement into the (src PE, dst PE,
bytes) flow list consumed by both the flit-level and analytical NoC
models.  Fully vectorised; the flow list length is the edge count before
aggregation, so this is the hot path for large tiles.
"""

from __future__ import annotations

import numpy as np

from ..graphs.csr import CSRGraph
from ..perf import PERF
from .base import MappingResult

__all__ = [
    "edge_flows",
    "aggregate_flows",
    "multicast_flows",
    "batched_multicast_flows",
    "MulticastTraffic",
]


from dataclasses import dataclass


@dataclass(frozen=True)
class MulticastTraffic:
    """Traffic of a feature-distribution phase under tree multicast.

    During aggregation each vertex's feature vector is needed by every PE
    hosting one of its out-neighbors.  The flexible NoC distributes it as
    a multicast: the source injects the message once and routers/reuse
    FIFOs replicate it along a tree.  Consequences per quantity:

    * ``flows`` — (src_pe, dst_pe, bytes) rows where each source vertex's
      payload is split across its destination set.  This approximates the
      shared tree from the *source's* perspective: links near the source
      (where the hotspot sits and tree paths fully overlap) are counted
      exactly once per payload, while deep-tree replication onto disjoint
      branches is undercounted — a deliberate trade, since the drain
      bottleneck the model reports is governed by the near-source links
      and the (exact) ejection/injection port loads.  The flit-level
      validator (`arch.noc.multicast`) measures the exact tree volume;
      `tests/test_multicast.py` pins the relationship;
    * ``eject_bytes[node]`` — full payload per received message (every
      destination consumes the entire vector);
    * ``inject_bytes[node]`` — one payload per source vertex (the tree is
      fed once).
    """

    flows: np.ndarray  # (u, 3): src_pe, dst_pe, tree-shared bytes
    eject_bytes: np.ndarray  # per-node full ejection bytes
    inject_bytes: np.ndarray  # per-node injection bytes (once per vertex)


def multicast_flows(
    graph: CSRGraph,
    mapping: MappingResult,
    payload_bytes: int,
) -> MulticastTraffic:
    """Tree-multicast traffic for the aggregation feature distribution."""
    if payload_bytes < 1:
        raise ValueError("payload_bytes must be >= 1")
    if mapping.vertex_to_pe.size != graph.num_vertices:
        raise ValueError("mapping does not cover the graph's vertices")
    with PERF.timer("traffic"):
        return _multicast_flows(graph, mapping, payload_bytes)


def _multicast_flows(
    graph: CSRGraph, mapping: MappingResult, payload_bytes: int
) -> MulticastTraffic:
    num_nodes = mapping.region.array_k ** 2
    eject = np.zeros(num_nodes, dtype=np.int64)
    inject = np.zeros(num_nodes, dtype=np.int64)
    if graph.num_edges == 0:
        return MulticastTraffic(
            flows=np.empty((0, 3), dtype=np.int64),
            eject_bytes=eject,
            inject_bytes=inject,
        )
    src_v = np.repeat(
        np.arange(graph.num_vertices, dtype=np.int64), graph.degrees
    )
    dst_pe = mapping.vertex_to_pe[graph.indices]
    src_pe = mapping.vertex_to_pe[src_v]
    remote = src_pe != dst_pe
    src_v, src_pe, dst_pe = src_v[remote], src_pe[remote], dst_pe[remote]
    if src_v.size == 0:
        return MulticastTraffic(
            flows=np.empty((0, 3), dtype=np.int64),
            eject_bytes=eject,
            inject_bytes=inject,
        )
    # Unique (source vertex, destination PE) pairs: one delivery each.
    key = src_v * num_nodes + dst_pe
    _, keep = np.unique(key, return_index=True)
    src_v, src_pe, dst_pe = src_v[keep], src_pe[keep], dst_pe[keep]
    # Destination-set size per source vertex.
    n_dst = np.bincount(src_v, minlength=graph.num_vertices)
    share = np.maximum(payload_bytes // np.maximum(n_dst[src_v], 1), 1)
    flows = np.column_stack((src_pe, dst_pe, share))
    eject += np.bincount(dst_pe, minlength=num_nodes) * payload_bytes
    senders = np.unique(src_v)
    inject += (
        np.bincount(mapping.vertex_to_pe[senders], minlength=num_nodes)
        * payload_bytes
    )
    return MulticastTraffic(
        flows=flows, eject_bytes=eject, inject_bytes=inject
    )


def batched_multicast_flows(
    subs: "list[CSRGraph] | tuple[CSRGraph, ...]",
    mappings: "list[MappingResult] | tuple[MappingResult, ...]",
    payload_bytes: int,
) -> list[MulticastTraffic]:
    """Tree-multicast traffic for *all* tiles of a layer in one pass.

    Semantically identical to calling :func:`multicast_flows` per tile
    (bit-for-bit, pinned by ``tests/test_traffic_batched.py``), but the
    edge→flow extraction, remote filtering, and (source vertex,
    destination PE) dedup run over a single concatenated edge array with
    tile-composite keys — one ``np.unique`` instead of one per tile.
    The per-call NumPy dispatch overhead, which dominates many-tile
    plans, is paid once.
    """
    if len(subs) != len(mappings):
        raise ValueError("need one mapping per subgraph")
    if payload_bytes < 1:
        raise ValueError("payload_bytes must be >= 1")
    if not subs:
        return []
    with PERF.timer("traffic"):
        return _batched_multicast_flows(subs, mappings, payload_bytes)


def _batched_multicast_flows(
    subs, mappings, payload_bytes: int
) -> list[MulticastTraffic]:
    num_nodes = mappings[0].region.array_k ** 2
    src_parts: list[np.ndarray] = []
    pe_src_parts: list[np.ndarray] = []
    pe_dst_parts: list[np.ndarray] = []
    voff = np.zeros(len(subs) + 1, dtype=np.int64)
    for t, (sub, mapping) in enumerate(zip(subs, mappings)):
        if mapping.vertex_to_pe.size != sub.num_vertices:
            raise ValueError("mapping does not cover the graph's vertices")
        if mapping.region.array_k ** 2 != num_nodes:
            raise ValueError("all mappings must target the same array size")
        voff[t + 1] = voff[t] + sub.num_vertices
        if sub.num_edges == 0:
            continue
        src_v = np.repeat(
            np.arange(sub.num_vertices, dtype=np.int64), sub.degrees
        )
        dst_pe = mapping.vertex_to_pe[sub.indices]
        src_pe = mapping.vertex_to_pe[src_v]
        remote = src_pe != dst_pe
        src_parts.append(src_v[remote] + voff[t])
        pe_src_parts.append(src_pe[remote])
        pe_dst_parts.append(dst_pe[remote])

    empty = MulticastTraffic(
        flows=np.empty((0, 3), dtype=np.int64),
        eject_bytes=np.zeros(num_nodes, dtype=np.int64),
        inject_bytes=np.zeros(num_nodes, dtype=np.int64),
    )
    if not src_parts:
        return [
            MulticastTraffic(
                flows=empty.flows,
                eject_bytes=empty.eject_bytes.copy(),
                inject_bytes=empty.inject_bytes.copy(),
            )
            for _ in subs
        ]

    gsrc = np.concatenate(src_parts)
    src_pe = np.concatenate(pe_src_parts)
    dst_pe = np.concatenate(pe_dst_parts)
    # Tile-composite key: the global source-vertex id already encodes the
    # tile, so one dedup covers every tile without cross-tile collisions.
    key = gsrc * num_nodes + dst_pe
    _, keep = np.unique(key, return_index=True)
    gsrc, src_pe, dst_pe = gsrc[keep], src_pe[keep], dst_pe[keep]
    n_dst = np.bincount(gsrc, minlength=int(voff[-1]))
    share = np.maximum(payload_bytes // np.maximum(n_dst[gsrc], 1), 1)
    # Kept rows are sorted by key, hence grouped by tile: slice per tile.
    tile_of = np.searchsorted(voff, gsrc, side="right") - 1
    bounds = np.searchsorted(tile_of, np.arange(len(subs) + 1))

    out: list[MulticastTraffic] = []
    for t, (sub, mapping) in enumerate(zip(subs, mappings)):
        lo, hi = int(bounds[t]), int(bounds[t + 1])
        if lo == hi:
            out.append(
                MulticastTraffic(
                    flows=np.empty((0, 3), dtype=np.int64),
                    eject_bytes=np.zeros(num_nodes, dtype=np.int64),
                    inject_bytes=np.zeros(num_nodes, dtype=np.int64),
                )
            )
            continue
        t_dst = dst_pe[lo:hi]
        flows = np.column_stack((src_pe[lo:hi], t_dst, share[lo:hi]))
        eject = np.bincount(t_dst, minlength=num_nodes) * payload_bytes
        senders = np.unique(gsrc[lo:hi]) - voff[t]
        inject = (
            np.bincount(mapping.vertex_to_pe[senders], minlength=num_nodes)
            * payload_bytes
        )
        out.append(
            MulticastTraffic(flows=flows, eject_bytes=eject, inject_bytes=inject)
        )
    return out


def edge_flows(
    graph: CSRGraph,
    mapping: MappingResult,
    payload_bytes: int,
    *,
    dedup_per_pe: bool = True,
    reduction_dedup: bool = False,
) -> np.ndarray:
    """Per-edge flows ``(src_pe_node, dst_pe_node, bytes)``.

    One message per edge: the neighbor's feature (or edge embedding)
    travelling from the PE holding the source vertex to the PE holding
    the destination vertex.  Edges whose endpoints share a PE produce
    zero NoC traffic (served from the local bank buffer) and are dropped.

    ``dedup_per_pe`` models Aurora's reuse FIFO (paper §III-D): a vertex's
    feature is sent to a given PE once and reused there for every edge
    targeting that PE, so duplicate ``(vertex, destination PE)`` pairs
    collapse into a single message.

    ``reduction_dedup`` models source-side partial aggregation: when the
    aggregation function is associative and commutative (ΣV / MaxV with
    at most scalar edge coefficients), a source PE pre-reduces all its
    contributions to one destination vertex into a single partial, so
    duplicate ``(source PE, destination vertex)`` pairs collapse.  This is
    the standard fan-in mitigation for high-degree vertices and the
    traffic the bypass links then carry.  When set it takes precedence
    over ``dedup_per_pe`` (partials are per-destination values, so the
    multicast dedup does not compose with them).
    """
    if payload_bytes < 1:
        raise ValueError("payload_bytes must be >= 1")
    if mapping.vertex_to_pe.size != graph.num_vertices:
        raise ValueError("mapping does not cover the graph's vertices")
    if graph.num_edges == 0:
        return np.empty((0, 3), dtype=np.int64)
    src_v = np.repeat(
        np.arange(graph.num_vertices, dtype=np.int64), graph.degrees
    )
    dst_v = graph.indices
    src_pe = mapping.vertex_to_pe[src_v]
    dst_pe = mapping.vertex_to_pe[dst_v]
    remote = src_pe != dst_pe
    src_v = src_v[remote]
    dst_v = dst_v[remote]
    src_pe = src_pe[remote]
    dst_pe = dst_pe[remote]
    num_nodes = mapping.region.array_k ** 2
    if reduction_dedup and src_v.size:
        key = src_pe * graph.num_vertices + dst_v
        _, keep = np.unique(key, return_index=True)
        src_pe = src_pe[keep]
        dst_pe = dst_pe[keep]
    elif dedup_per_pe and src_v.size:
        key = src_v * num_nodes + dst_pe
        _, keep = np.unique(key, return_index=True)
        src_pe = src_pe[keep]
        dst_pe = dst_pe[keep]
    flows = np.column_stack(
        (
            src_pe,
            dst_pe,
            np.full(src_pe.size, payload_bytes, dtype=np.int64),
        )
    )
    return flows


def aggregate_flows(flows: np.ndarray, num_nodes: int) -> np.ndarray:
    """Merge duplicate (src, dst) pairs, summing bytes.

    Returns an ``(u, 3)`` array sorted by (src, dst).
    """
    flows = np.asarray(flows, dtype=np.int64)
    if flows.size == 0:
        return np.empty((0, 3), dtype=np.int64)
    key = flows[:, 0] * num_nodes + flows[:, 1]
    order = np.argsort(key, kind="stable")
    key = key[order]
    byts = flows[order, 2]
    uniq, starts = np.unique(key, return_index=True)
    sums = np.add.reduceat(byts, starts)
    return np.column_stack((uniq // num_nodes, uniq % num_nodes, sums))
