"""Evaluation: comparison harness, metrics, and paper-figure renderers."""

from .experiments import (
    EXPERIMENTS,
    ExperimentResult,
    list_experiments,
    run_experiment,
    set_sweep_options,
)
from .harness import (
    ACCELERATOR_ORDER,
    DEFAULT_SCALES,
    ComparisonResults,
    comparison_jobs,
    run_comparison,
)
from .sensitivity import (
    NUMERIC_TRAITS,
    SensitivityPoint,
    SensitivityReport,
    sweep_trait,
)
from .export import grid_to_csv, results_to_json, write_csv, write_json
from .golden import compute_golden_metrics, load_goldens
from .noc_characterization import LatencyLoadCurve, LoadPoint, latency_load_curve
from .plotting import bar_chart, render_figure_bars
from .traces import TraceEvent, build_trace, save_chrome_trace, to_chrome_trace
from .metrics import (
    METRICS,
    average_reduction,
    geometric_mean,
    metric_value,
    normalize_to,
    reduction_percent,
)
from .report import (
    format_table,
    render_headline_summary,
    render_normalized_figure,
    render_table1_coverage,
    render_table2_operations,
)

__all__ = [
    "EXPERIMENTS",
    "ExperimentResult",
    "run_experiment",
    "list_experiments",
    "run_comparison",
    "comparison_jobs",
    "set_sweep_options",
    "ComparisonResults",
    "sweep_trait",
    "SensitivityReport",
    "SensitivityPoint",
    "NUMERIC_TRAITS",
    "bar_chart",
    "latency_load_curve",
    "LatencyLoadCurve",
    "LoadPoint",
    "compute_golden_metrics",
    "load_goldens",
    "grid_to_csv",
    "results_to_json",
    "write_csv",
    "write_json",
    "render_figure_bars",
    "TraceEvent",
    "build_trace",
    "to_chrome_trace",
    "save_chrome_trace",
    "ACCELERATOR_ORDER",
    "DEFAULT_SCALES",
    "METRICS",
    "metric_value",
    "normalize_to",
    "reduction_percent",
    "average_reduction",
    "geometric_mean",
    "format_table",
    "render_normalized_figure",
    "render_table1_coverage",
    "render_table2_operations",
    "render_headline_summary",
]
