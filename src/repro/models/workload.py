"""Workload extraction: GNN model × graph → per-phase operation counts.

This implements the quantities the partition algorithm (Algorithm 2)
consumes: ``O_ue`` (edge-update ops), ``O_a`` (aggregation ops), ``O_uv``
(vertex-update ops) and ``E_f`` (edge-feature width), plus the memory
traffic volumes the DRAM/NoC models need.

Counting conventions
--------------------
* A multiply-accumulate counts as 2 operations (multiply + add), matching
  the paper's "amount of multiplication and accumulation computations
  (MACs) of each layer is the same" observation — every simulated
  accelerator sees identical op totals.
* ``M×V`` with an ``F_out × F_in`` weight costs ``2·F_in·F_out`` ops per
  application; vector primitives cost one op per lane (``F`` lanes), dot
  products ``2F``.
* PPU ops (activation, concat) cost one op per output lane; they run on
  the post-processing unit, so they are tracked separately and excluded
  from the MAC-array op counts used for partitioning.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..graphs.csr import CSRGraph
from .base import GNNModel, OpKind, Phase, PhaseOp, PhaseSpec

__all__ = [
    "LayerDims",
    "PhaseWorkload",
    "LayerWorkload",
    "extract_workload",
    "combination_first_eligible",
    "source_reducible",
]


def source_reducible(model: GNNModel) -> bool:
    """Whether messages to one destination can be pre-reduced at the source.

    True when the aggregation is associative-commutative (ΣV or MaxV) and
    any edge update is at most a scalar coefficient — then a source PE can
    combine all its contributions to a destination vertex into one partial
    message, which is the standard fan-in mitigation for high-degree
    vertices.  Models with vector-valued per-edge messages (dot-product
    attention, gated edges, per-edge MLPs) must deliver each message.
    """
    agg_ok = all(
        op.kind in (OpKind.ACCUMULATE, OpKind.MAX_REDUCE)
        for op in model.aggregation.ops
    )
    edge_ok = all(
        op.kind is OpKind.SCALAR_VECTOR for op in model.edge_update.ops
    )
    return agg_ok and edge_ok


def combination_first_eligible(model: GNNModel) -> bool:
    """Whether the layer may be reordered to combination-first.

    When the vertex update is a single linear transform and the edge
    update is at most a scalar coefficient, ``W · Σ_u c_u x_u`` equals
    ``Σ_u c_u (W x_u)``, so the dense transform can run *before*
    aggregation, shrinking every aggregated/communicated vector from
    ``F_in`` to ``F_out`` lanes.  AWB-GCN and GCNAX build their dataflows
    around exactly this reordering; Aurora's adaptive workflow generator
    applies it to the same eligible (C-GNN) layers.
    """
    from .base import ModelCategory  # local to avoid import noise at top

    if model.category is not ModelCategory.C_GNN:
        return False
    edge_ok = all(
        op.kind in (OpKind.SCALAR_VECTOR,) for op in model.edge_update.ops
    )
    agg_ok = all(
        op.kind is OpKind.ACCUMULATE for op in model.aggregation.ops
    )
    mv = [
        op
        for op in model.vertex_update.ops
        if op.kind is OpKind.MATRIX_VECTOR
    ]
    others_ok = all(
        op.kind in (OpKind.MATRIX_VECTOR, OpKind.ACTIVATION)
        for op in model.vertex_update.ops
    )
    vertex_ok = len(mv) == 1 and mv[0].repeat == 1 and others_ok
    return edge_ok and agg_ok and vertex_ok

BYTES_PER_VALUE = 8  # uniform double precision (paper §VI-A)


@dataclass(frozen=True)
class LayerDims:
    """Feature dimensions of one GNN layer."""

    in_features: int
    out_features: int
    hidden: int | None = None  # MLP hidden width (defaults to out_features)

    def __post_init__(self) -> None:
        if self.in_features < 1 or self.out_features < 1:
            raise ValueError("feature dims must be >= 1")
        if self.hidden is not None and self.hidden < 1:
            raise ValueError("hidden must be >= 1")

    @property
    def hidden_width(self) -> int:
        return self.hidden if self.hidden is not None else self.out_features


@dataclass(frozen=True)
class PhaseWorkload:
    """Operation and traffic counts of one phase."""

    phase: Phase
    mac_ops: int  # ops on the MAC array (partitioning input)
    ppu_ops: int  # activation/concat ops on the PPU
    messages: int  # on-chip messages generated (edge-grain sends)
    message_bytes: int  # payload volume of those messages
    weight_bytes: int  # weights the phase must hold (stationary data)

    @property
    def total_ops(self) -> int:
        return self.mac_ops + self.ppu_ops


@dataclass(frozen=True)
class LayerWorkload:
    """Full per-layer workload (Algorithm 2's inputs + traffic)."""

    model_name: str
    num_vertices: int
    num_edges: int
    dims: LayerDims
    edge_update: PhaseWorkload
    aggregation: PhaseWorkload
    vertex_update: PhaseWorkload
    edge_feature_dim: int  # E_f

    # -- Algorithm 2 aliases ------------------------------------------------
    @property
    def O_ue(self) -> int:
        return self.edge_update.mac_ops

    @property
    def O_a(self) -> int:
        return self.aggregation.mac_ops

    @property
    def O_uv(self) -> int:
        return self.vertex_update.mac_ops

    @property
    def E_f(self) -> int:
        return self.edge_feature_dim

    @property
    def total_mac_ops(self) -> int:
        return self.O_ue + self.O_a + self.O_uv

    @property
    def total_ops(self) -> int:
        return (
            self.edge_update.total_ops
            + self.aggregation.total_ops
            + self.vertex_update.total_ops
        )

    def phase(self, phase: Phase) -> PhaseWorkload:
        return {
            Phase.EDGE_UPDATE: self.edge_update,
            Phase.AGGREGATION: self.aggregation,
            Phase.VERTEX_UPDATE: self.vertex_update,
        }[phase]


def _op_cost(op: PhaseOp, dims: LayerDims, n: int, m: int) -> tuple[int, int]:
    """(mac_ops, ppu_ops) contributed by one :class:`PhaseOp`."""
    count = m if op.per == "edge" else n
    f_in = dims.in_features
    f_out = dims.out_features
    lanes = f_out if op.uses_output_dim else f_in

    if op.kind is OpKind.MATRIX_VECTOR:
        if op.repeat == 1:
            per_app = 2 * f_in * f_out
        else:
            # Chained dense layers: in->hidden->...->out through `repeat`
            # transforms, hidden width between them.
            h = dims.hidden_width
            per_app = 2 * f_in * h + 2 * h * f_out
            per_app += 2 * h * h * max(op.repeat - 2, 0)
        return per_app * count, 0
    if op.kind is OpKind.DOT:
        return 2 * f_in * count * op.repeat, 0
    if op.kind in (OpKind.SCALAR_VECTOR, OpKind.VECTOR_VECTOR, OpKind.ELEMENTWISE):
        return lanes * count * op.repeat, 0
    if op.kind in (OpKind.ACCUMULATE, OpKind.MAX_REDUCE):
        return lanes * count * op.repeat, 0
    if op.kind is OpKind.ACTIVATION:
        return 0, lanes * count * op.repeat
    if op.kind is OpKind.CONCAT:
        return 0, (f_in + f_out) * count * op.repeat
    if op.kind is OpKind.NULL:
        return 0, 0
    raise ValueError(f"unhandled op kind {op.kind}")  # pragma: no cover


def _phase_messages(
    spec: PhaseSpec, phase: Phase, dims: LayerDims, n: int, m: int, edge_dim: int
) -> tuple[int, int]:
    """(messages, message_bytes) a phase injects into the NoC.

    Edge update and aggregation move one message per edge (a neighbor
    feature or updated edge feature); vertex update streams partial sums
    along the weight-stationary ring, one message per vertex per ring hop
    (charged here as one logical message per vertex).
    """
    if spec.is_null:
        return 0, 0
    if phase in (Phase.EDGE_UPDATE, Phase.AGGREGATION):
        payload = (edge_dim if edge_dim else dims.in_features) * BYTES_PER_VALUE
        return m, m * payload
    return n, n * dims.out_features * BYTES_PER_VALUE


def _phase_weight_bytes(spec: PhaseSpec, dims: LayerDims) -> int:
    """Stationary weight footprint a phase needs resident."""
    total = 0
    for op in spec.ops:
        if op.kind is OpKind.MATRIX_VECTOR:
            if op.repeat == 1:
                total += dims.in_features * dims.out_features
            else:
                h = dims.hidden_width
                total += dims.in_features * h + h * dims.out_features
                total += h * h * max(op.repeat - 2, 0)
    return total * BYTES_PER_VALUE


def extract_workload(
    model: GNNModel,
    graph: CSRGraph,
    dims: LayerDims,
) -> LayerWorkload:
    """Compute the per-phase workload of one layer of ``model`` on ``graph``."""
    n = graph.num_vertices
    m = graph.num_edges
    edge_dim = dims.in_features if model.uses_edge_embeddings else 0

    phases: dict[Phase, PhaseWorkload] = {}
    for phase in Phase:
        spec = model.phase_spec(phase)
        mac = 0
        ppu = 0
        for op in spec.ops:
            a, b = _op_cost(op, dims, n, m)
            mac += a
            ppu += b
        messages, message_bytes = _phase_messages(spec, phase, dims, n, m, edge_dim)
        phases[phase] = PhaseWorkload(
            phase=phase,
            mac_ops=mac,
            ppu_ops=ppu,
            messages=messages if not spec.is_null else 0,
            message_bytes=message_bytes if not spec.is_null else 0,
            weight_bytes=_phase_weight_bytes(spec, dims),
        )

    return LayerWorkload(
        model_name=model.name,
        num_vertices=n,
        num_edges=m,
        dims=dims,
        edge_update=phases[Phase.EDGE_UPDATE],
        aggregation=phases[Phase.AGGREGATION],
        vertex_update=phases[Phase.VERTEX_UPDATE],
        edge_feature_dim=edge_dim,
    )
