"""Property tests: the event-driven NoC engines are bit-identical to the
retained reference simulators, and failed drains raise the structured
:class:`NoCDeadlockError`.

The references (``repro.arch.noc._reference``) are verbatim copies of the
original per-cycle object-graph simulators; the rebuilt engines in
``network.py``/``vc_router.py`` must reproduce their cycle counts and
stats exactly across random topologies, bypass/ring configurations, VC
shapes, packet sizes, and interleaved inject/step traffic.
"""

import random

import pytest

from repro.arch.noc import NoCDeadlockError, NoCSimulator
from repro.arch.noc._reference import (
    ReferenceNoCSimulator,
    ReferenceVCNetworkSimulator,
)
from repro.arch.noc.fused import FusedNoCSimulator, NumbaNoCSimulator
from repro.arch.noc.topology import FlexibleMeshTopology, RingConfig
from repro.arch.noc.vc_router import VCNetworkSimulator
from repro.config import NoCConfig


def _kernel_engine(topo, cfg=None):
    """NumbaNoCSimulator pinned to the scalar kernel: exercises the exact
    loop numba compiles, interpreted, so the pin holds without numba."""
    sim = NumbaNoCSimulator(topo, cfg)
    sim.use_kernel = True
    return sim


#: Every rebuilt flit engine, each pinned bit-identical to the reference.
ENGINES = [
    pytest.param(NoCSimulator, id="event"),
    pytest.param(FusedNoCSimulator, id="fused"),
    pytest.param(_kernel_engine, id="kernel"),
]


def _random_topology(rng: random.Random) -> FlexibleMeshTopology:
    k = rng.choice([3, 4, 5])
    topo = FlexibleMeshTopology(k)
    if rng.random() < 0.5 and k >= 4:
        topo.add_ring_region(
            RingConfig(0, 0, rng.randint(2, k), rng.randint(2, k))
        )
    return topo


class TestEventEngineEquivalence:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("seed", range(30))
    def test_stats_identical_to_reference(self, seed, engine):
        """Random topologies + interleaved traffic: full-stats identity."""
        rng = random.Random(seed)
        topo = _random_topology(rng)
        n = topo.num_nodes
        cfg = NoCConfig(
            vcs_per_port=rng.choice([1, 2]), vc_depth=rng.choice([2, 4])
        )
        event = engine(topo, cfg)
        reference = ReferenceNoCSimulator(topo, cfg)
        for _ in range(rng.randint(1, 4)):
            for _ in range(rng.randint(0, 15)):
                src, dst = rng.randrange(n), rng.randrange(n)
                size = rng.randint(1, 300)
                bypass = rng.random() < 0.8
                future = rng.choice([None, event.cycle + rng.randint(1, 30)])
                event.inject(src, dst, size, cycle=future, allow_bypass=bypass)
                reference.inject(
                    src, dst, size, cycle=future, allow_bypass=bypass
                )
            for _ in range(rng.randint(0, 20)):
                event.step()
                reference.step()
            # Mid-run drain accounting must agree too (the event engine
            # replaced the reference's dict scan with O(1) counters).
            assert event.undelivered() == reference.undelivered()
            assert event.all_delivered() == reference.all_delivered()
        assert event.run(max_cycles=100_000) == reference.run(max_cycles=100_000)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_idle_fast_forward_matches_spin(self, engine):
        """A lone far packet spends most cycles mid-link; the jump in
        run() must land on exactly the reference's cycle count."""
        topo = FlexibleMeshTopology(8)
        event = engine(topo)
        reference = ReferenceNoCSimulator(topo)
        event.inject(0, 63, 64)
        reference.inject(0, 63, 64)
        # Future injections keep the network idle for long stretches.
        event.inject(63, 0, 32, cycle=500)
        reference.inject(63, 0, 32, cycle=500)
        assert event.run() == reference.run()
        assert event.cycle == reference.cycle

    @pytest.mark.parametrize("engine", ENGINES)
    def test_refresh_configuration_mid_run(self, engine):
        """Adding a ring region mid-run re-routes new packets only."""
        topo_a = FlexibleMeshTopology(4)
        topo_b = FlexibleMeshTopology(4)
        event = engine(topo_a)
        reference = ReferenceNoCSimulator(topo_b)
        for sim in (event, reference):
            sim.inject(0, 15, 96)
        for _ in range(5):
            event.step()
            reference.step()
        topo_a.add_ring_region(RingConfig(0, 0, 2, 2))
        topo_b.add_ring_region(RingConfig(0, 0, 2, 2))
        event.refresh_configuration()
        reference.refresh_configuration()
        for sim in (event, reference):
            sim.inject(5, 10, 64)
        assert event.run() == reference.run()


class TestVCEngineEquivalence:
    @pytest.mark.parametrize("seed", range(12))
    def test_cycles_and_stats_identical(self, seed):
        rng = random.Random(1000 + seed)
        k = rng.choice([3, 4])
        topo = FlexibleMeshTopology(k)
        cfg = NoCConfig(
            vcs_per_port=rng.choice([1, 2, 4]),
            vc_depth=rng.choice([2, 4]),
            bypass_segment_latency=rng.choice([1, 3, 6]),
        )
        event = VCNetworkSimulator(topo, cfg)
        reference = ReferenceVCNetworkSimulator(topo, cfg)
        for _ in range(rng.randint(1, 25)):
            src, dst = rng.randrange(k * k), rng.randrange(k * k)
            if src == dst:
                continue
            size = rng.choice([4, 16, 64, 200])
            event.inject(src, dst, size)
            reference.inject(src, dst, size)
            for _ in range(rng.randint(0, 8)):
                event.step()
                reference.step()
        assert event.run(max_cycles=50_000) == reference.run(max_cycles=50_000)
        assert event.total_va_stalls == reference.total_va_stalls
        assert event.total_sa_conflicts == reference.total_sa_conflicts
        assert len(event.delivered) == len(reference.delivered)
        assert event.avg_latency == reference.avg_latency

    def test_fast_forward_preserves_arbitration_state(self):
        """Skipped cycles must advance every router's SA round-robin
        counter exactly as the reference's per-cycle stepping does."""
        topo = FlexibleMeshTopology(8)
        event = VCNetworkSimulator(topo)
        reference = ReferenceVCNetworkSimulator(topo)
        event.inject(0, 63, 64)
        reference.inject(0, 63, 64)
        assert event.run() == reference.run()
        assert [r._rr_input_counter for r in event.routers] == [
            r._rr_input_counter for r in reference.routers
        ]


class TestDeadlockRegression:
    def _wedged_simulator(self, engine=NoCSimulator) -> NoCSimulator:
        # Mis-segmented on purpose: a ring region spanning the top half
        # with single-VC, single-slot buffers, and circular half-way
        # traffic — every buffer in the cycle fills with flits that are
        # at least two hops from ejecting, so nothing can ever move.
        topo = FlexibleMeshTopology(4)
        topo.add_ring_region(RingConfig(0, 0, 4, 2))
        sim = engine(topo, NoCConfig(vcs_per_port=1, vc_depth=1))
        ring = [0, 1, 2, 3, 7, 6, 5, 4]
        for i, src in enumerate(ring):
            dst = ring[(i + 4) % 8]
            for _ in range(6):
                sim.inject(src, dst, 128)
        return sim

    @pytest.mark.parametrize("engine", ENGINES)
    def test_structured_error_fields(self, engine):
        sim = self._wedged_simulator(engine)
        with pytest.raises(NoCDeadlockError, match="did not drain") as info:
            sim.run(max_cycles=5_000)
        err = info.value
        assert err.cycle == 5_000
        assert err.outstanding_packets == 48
        # Every ring router is wedged with a non-empty queue.
        assert set(err.queue_depths) == set(range(8))
        assert all(depth > 0 for depth in err.queue_depths.values())

    def test_is_a_runtime_error(self):
        """Existing ``except RuntimeError`` call sites keep working."""
        sim = self._wedged_simulator()
        with pytest.raises(RuntimeError, match="did not drain"):
            sim.run(max_cycles=2_000)

    def test_vc_network_structured_error(self):
        topo = FlexibleMeshTopology(3)
        sim = VCNetworkSimulator(topo, NoCConfig(vcs_per_port=1, vc_depth=1))
        for src in range(9):
            for dst in range(9):
                if src != dst:
                    sim.inject(src, dst, 256)
        with pytest.raises(NoCDeadlockError, match="did not drain") as info:
            sim.run(max_cycles=50)
        assert info.value.cycle == 50
        assert info.value.outstanding_packets > 0
        assert info.value.queue_depths
