"""Minimal asyncio client for the ``/observe`` WebSocket feed.

One connection, JSON events out — shared by ``repro observe
record|tail``, the bench observe tier, the CI smoke script, and the
tests, so none of them need a third-party WebSocket library.  Pings
from the server are answered transparently; a server close ends the
stream cleanly (``next_event`` returns ``None``).
"""

from __future__ import annotations

import asyncio
import json
import time

from .websocket import (
    FrameAssembler,
    WebSocketError,
    client_handshake,
    encode_close,
    encode_pong,
    read_frame,
)

__all__ = ["ObserveClient", "stream_events"]


class ObserveClient:
    """One client connection to ``ws://host:port/observe``."""

    def __init__(self, host: str, port: int, *, path: str = "/observe") -> None:
        self.host = host
        self.port = port
        self.path = path
        self._reader: asyncio.StreamReader | None = None
        self._writer: asyncio.StreamWriter | None = None
        self._assembler = FrameAssembler(require_mask=False)
        #: The ``observe.hello`` event the server sends first.
        self.hello: dict | None = None

    async def connect(self) -> dict:
        """Open the connection and handshake; returns the hello event."""
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )
        await client_handshake(
            self._reader, self._writer, f"{self.host}:{self.port}", self.path
        )
        hello = await self.next_event()
        if hello is None or hello.get("type") != "observe.hello":
            raise WebSocketError("expected an observe.hello event first")
        self.hello = hello
        return hello

    async def next_event(self) -> dict | None:
        """The next JSON event; ``None`` once the server closes."""
        if self._reader is None or self._writer is None:
            return None
        while True:
            frame = await read_frame(self._reader)
            if frame is None:
                return None
            message = self._assembler.feed(frame)
            if message is None:
                continue
            kind, payload = message
            if kind == "ping":
                self._writer.write(encode_pong(payload, mask=True))
                await self._writer.drain()
                continue
            if kind == "pong":
                continue
            if kind == "close":
                try:
                    self._writer.write(encode_close(mask=True))
                    await self._writer.drain()
                except (ConnectionError, OSError):
                    pass
                return None
            if kind == "text":
                return json.loads(payload.decode("utf-8"))
            # Binary frames are not part of the observe protocol; skip.

    async def close(self) -> None:
        """Send a close frame (best effort) and tear the socket down."""
        if self._writer is None:
            return
        writer, self._writer = self._writer, None
        try:
            writer.write(encode_close(mask=True))
            await writer.drain()
        except (ConnectionError, OSError, RuntimeError):
            pass
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def stream_events(
    host: str,
    port: int,
    *,
    path: str = "/observe",
    max_events: int | None = None,
    duration: float | None = None,
    include_hello: bool = False,
):
    """Async generator over the live event feed.

    Ends after ``max_events`` events, after ``duration`` seconds, or
    when the server closes the stream — whichever comes first.
    """
    client = ObserveClient(host, port, path=path)
    hello = await client.connect()
    try:
        count = 0
        if include_hello:
            yield hello
            count += 1
        deadline = (
            time.monotonic() + duration if duration is not None else None
        )
        while max_events is None or count < max_events:
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return
                try:
                    event = await asyncio.wait_for(
                        client.next_event(), timeout=remaining
                    )
                except asyncio.TimeoutError:
                    return
            else:
                event = await client.next_event()
            if event is None:
                return
            yield event
            count += 1
    finally:
        await client.close()
