"""Branch-coverage tests for the baseline performance model's formulas."""

import pytest

from repro import LayerDims, get_model
from repro.baselines import BaselineAccelerator, BaselineTraits
from repro.config import AcceleratorConfig
from repro.graphs import power_law_graph


@pytest.fixture(scope="module")
def graph():
    return power_law_graph(
        400, 2000, num_features=128, feature_density=0.2, locality=0.5, seed=8
    )


@pytest.fixture(scope="module")
def big_graph():
    """Working set far beyond a 1 KiB/PE chip: exercises tiling/spill."""
    return power_law_graph(
        3000, 12000, num_features=512, feature_density=1.0, locality=0.5, seed=9
    )


DIMS = LayerDims(128, 32)


def _run(traits, graph, cfg=None, model="gcn", dims=DIMS):
    dev = BaselineAccelerator(traits, cfg)
    return dev.simulate_layer(get_model(model), graph, dims, strict=False)


class TestComputeBranches:
    def test_engine_split_partitions_multipliers(self, graph):
        pooled = _run(BaselineTraits(name="pool", engine_split=None), graph)
        split = _run(BaselineTraits(name="split", engine_split=0.5), graph)
        # Splitting halves the combination engine; compute cannot speed up.
        assert split.breakdown.compute_seconds >= pooled.breakdown.compute_seconds

    def test_phase_pipelining_helps_split_designs(self, graph):
        serial = _run(
            BaselineTraits(name="s", engine_split=0.5, phase_pipelined=False),
            graph,
        )
        piped = _run(
            BaselineTraits(name="p", engine_split=0.5, phase_pipelined=True),
            graph,
        )
        assert piped.breakdown.compute_seconds <= serial.breakdown.compute_seconds

    def test_rebalancing_overrides_sensitivity(self, graph):
        skewed = _run(
            BaselineTraits(name="x", imbalance_sensitivity=1.0), graph
        )
        balanced = _run(
            BaselineTraits(
                name="y", imbalance_sensitivity=1.0, runtime_rebalancing=True
            ),
            graph,
        )
        assert (
            balanced.notes["compute_imbalance"]
            < skewed.notes["compute_imbalance"]
        )

    def test_redundancy_elimination_cuts_add_ops(self, graph):
        plain = _run(BaselineTraits(name="x"), graph)
        reduced = _run(
            BaselineTraits(name="y", redundancy_elimination=0.5), graph
        )
        assert reduced.counters.add_ops < plain.counters.add_ops

    def test_edge_penalty_only_for_non_scalar_edges(self, graph):
        traits = BaselineTraits(name="x", supports_edge_update=False)
        gcn = _run(traits, graph, model="gcn")  # Scalar×V edge: no penalty
        forced = _run(traits, graph, model="edgeconv-1")  # M×V edge: 4x
        assert forced.breakdown.compute_seconds > gcn.breakdown.compute_seconds

    def test_native_edge_support_avoids_penalty(self, graph):
        no_support = _run(
            BaselineTraits(name="x", supports_edge_update=False),
            graph,
            model="edgeconv-1",
        )
        native = _run(
            BaselineTraits(name="y", supports_edge_update=True),
            graph,
            model="edgeconv-1",
        )
        assert native.breakdown.compute_seconds < no_support.breakdown.compute_seconds


class TestMemoryBranches:
    def test_weight_reload_scales_with_tiles(self, big_graph):
        tight = AcceleratorConfig(pe_buffer_bytes=1024)
        dims = LayerDims(512, 64)
        once = _run(
            BaselineTraits(name="x", weight_reload_per_tile=False),
            big_graph, tight, dims=dims,
        )
        reload = _run(
            BaselineTraits(name="y", weight_reload_per_tile=True),
            big_graph, tight, dims=dims,
        )
        assert reload.dram_bytes > once.dram_bytes

    def test_interphase_spill_only_on_overflow(self, graph):
        roomy = AcceleratorConfig(pe_buffer_bytes=100 * 1024)
        spilling = _run(
            BaselineTraits(name="x", interphase_spill=True), graph, roomy
        )
        not_spilling = _run(
            BaselineTraits(name="y", interphase_spill=False), graph, roomy
        )
        # Intermediates fit on chip: the flag must not change DRAM volume.
        assert spilling.dram_bytes == not_spilling.dram_bytes

    def test_interphase_spill_on_small_chips(self, big_graph):
        tiny = AcceleratorConfig(pe_buffer_bytes=1024)
        dims = LayerDims(512, 64)
        spilling = _run(
            BaselineTraits(name="x", interphase_spill=True),
            big_graph, tiny, dims=dims,
        )
        not_spilling = _run(
            BaselineTraits(name="y", interphase_spill=False),
            big_graph, tiny, dims=dims,
        )
        assert spilling.dram_bytes > not_spilling.dram_bytes

    def test_feature_reuse_cuts_gathers(self, graph):
        poor = _run(BaselineTraits(name="x", feature_reuse=0.1), graph)
        good = _run(BaselineTraits(name="y", feature_reuse=0.95), graph)
        assert good.dram_bytes < poor.dram_bytes

    def test_resident_fraction_shrinks_onchip_traffic(self, big_graph):
        dims = LayerDims(512, 64)
        roomy = AcceleratorConfig(pe_buffer_bytes=100 * 1024)
        small = AcceleratorConfig(pe_buffer_bytes=1024)
        resident = _run(BaselineTraits(name="x"), big_graph, roomy, dims=dims)
        spilled = _run(BaselineTraits(name="y"), big_graph, small, dims=dims)
        assert spilled.onchip_comm_cycles < resident.onchip_comm_cycles


class TestCommBranches:
    def test_ports_bound_comm_time(self, graph):
        narrow = _run(BaselineTraits(name="x", comm_ports=8), graph)
        wide = _run(BaselineTraits(name="y", comm_ports=512), graph)
        assert wide.breakdown.noc_seconds < narrow.breakdown.noc_seconds

    def test_hub_relief_caps_ejection_term(self, graph):
        raw = _run(
            BaselineTraits(name="x", comm_ports=4096, hub_relief=0.0), graph
        )
        relieved = _run(
            BaselineTraits(name="y", comm_ports=4096, hub_relief=1.0), graph
        )
        assert relieved.breakdown.noc_seconds <= raw.breakdown.noc_seconds

    def test_service_cycles_scale_volume_metric(self, graph):
        slow = _run(BaselineTraits(name="x", comm_service_cycles=20.0), graph)
        fast = _run(BaselineTraits(name="y", comm_service_cycles=5.0), graph)
        assert slow.onchip_comm_cycles == pytest.approx(
            4 * fast.onchip_comm_cycles, rel=0.01
        )

    def test_buffer_traffic_factor_scales_energy(self, graph):
        light = _run(BaselineTraits(name="x", buffer_traffic_factor=0.2), graph)
        heavy = _run(BaselineTraits(name="y", buffer_traffic_factor=2.0), graph)
        assert heavy.energy.sram > light.energy.sram
