"""FlowGNN (Sarkar et al., HPCA 2023) baseline model.

FlowGNN is a generic dataflow architecture for message-passing GNNs:
node-transformation and message-passing engines connected by multi-queues,
covering arbitrary models with edge embeddings.  Published properties this
model encodes:

* **Full model coverage** (C/A/MP-GNN, message passing, edge embeddings —
  Table I's most capable baseline).
* **Heterogeneous node/edge engines with a fixed ratio**
  (``engine_split = 0.5``): when a model's phase mix deviates, one engine
  under-utilises (paper §I: "heterogeneous edge and vertex compute
  engines ... leading to resource under-utilization and extra data
  movement").
* **Multi-queue interconnect** — multiple parallelism levels give decent
  throughput (``comm_ports = 64``, ``hub_relief = 0.3``) but the queues
  serialise on hot destinations and the fixed fabric cannot adapt
  (``flexible_noc = False``); two queue stages per transfer.
* Weights replicated across node-engine lanes and re-streamed per tile
  (§VI-B groups FlowGNN with AWB-GCN/GCNAX for weight duplication).
"""

from __future__ import annotations

from .base import BaselineAccelerator, BaselineTraits

__all__ = ["FLOWGNN_TRAITS", "FlowGNN"]

FLOWGNN_TRAITS = BaselineTraits(
    name="flowgnn",
    supports_c_gnn=True,
    supports_a_gnn=True,
    supports_mp_gnn=True,
    flexible_pe=False,
    flexible_dataflow=True,  # Table I: partial
    flexible_noc=False,
    message_passing=True,
    supports_edge_update=True,
    engine_split=0.5,
    runtime_rebalancing=False,
    redundancy_elimination=0.0,
    phase_pipelined=True,
    imbalance_sensitivity=0.3,
    feature_reuse=0.7,
    weight_reload_per_tile=True,
    interphase_spill=False,
    buffer_traffic_factor=0.8,
    traffic_factor=0.8,
    comm_ports=420,
    comm_hops=2.0,
    hub_relief=0.5,
    comm_service_cycles=4.2,
)


class FlowGNN(BaselineAccelerator):
    """FlowGNN scaled to Aurora's multiplier/bandwidth/storage budget."""

    def __init__(self, config=None, energy_table=None) -> None:
        super().__init__(FLOWGNN_TRAITS, config, energy_table)
