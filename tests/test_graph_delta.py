"""Edge-delta streams: canonical batches, incremental hashing, dirty tiles.

The contract under test: a graph mutated through
:func:`repro.graphs.delta.apply_delta` is *bit-identical* — arrays,
per-row digests, and content key — to rebuilding the CSR from the
mutated edge set from scratch, and every incremental shortcut built on
that (plan patching in :mod:`repro.graphs.tiling`, the partition sample
memo in :mod:`repro.core.simulator`) produces exactly what the
from-scratch path produces.
"""

import numpy as np
import pytest

from repro.config import default_config
from repro.core.simulator import (
    AuroraSimulator,
    clear_partition_sample_cache,
)
from repro.graphs.csr import CSRGraph, from_edge_list
from repro.graphs.datasets import clear_snapshot_cache, load_dataset
from repro.graphs.delta import (
    EdgeDelta,
    MutationLog,
    apply_chain,
    apply_delta,
    dirty_tiles,
    rewire_delta,
    tile_boundaries,
)
from repro.graphs.generators import power_law_graph
from repro.graphs.tiling import clear_tiling_cache, tile_graph

SEEDS = range(25)


def _graph(seed: int, n: int = 80, m: int = 320) -> CSRGraph:
    return power_law_graph(
        n, m, exponent=2.1, num_features=16, feature_density=0.5, seed=seed
    )


def _edge_set(g: CSRGraph) -> list:
    src = np.repeat(np.arange(g.num_vertices, dtype=np.int64), g.degrees)
    return list(zip(src.tolist(), g.indices.tolist()))


def _random_delta(g: CSRGraph, rng: np.random.Generator, edits: int = 6):
    edges = _edge_set(g)
    k = min(len(edges), int(rng.integers(1, edits + 1)))
    picked = rng.choice(len(edges), size=k, replace=False)
    deletes = [edges[i] for i in picked]
    have = set(edges)
    inserts = []
    n = g.num_vertices
    while len(inserts) < edits:
        e = (int(rng.integers(n)), int(rng.integers(n)))
        if e not in have and e not in inserts and e not in deletes:
            inserts.append(e)
    return EdgeDelta.make(inserts=inserts, deletes=deletes)


def _rebuilt(g: CSRGraph, name: str) -> CSRGraph:
    return from_edge_list(
        g.num_vertices,
        _edge_set(g),
        num_features=g.num_features,
        feature_density=g.feature_density,
        edge_feature_dim=g.edge_feature_dim,
        name=name,
    )


class TestEdgeDelta:
    def test_canonical_spellings_share_key(self):
        a = EdgeDelta.make(inserts=[(3, 4), (1, 2), (3, 4)], deletes=[(5, 6)])
        b = EdgeDelta.make(inserts=[(1, 2), (3, 4)], deletes=[(5, 6)])
        assert a == b
        assert a.delta_key == b.delta_key
        assert a.num_edits == 3

    def test_from_dict_aliases_and_roundtrip(self):
        d = EdgeDelta.from_dict({"insert": [[1, 2]], "deletes": [[3, 4]]})
        assert d.inserts == ((1, 2),) and d.deletes == ((3, 4),)
        assert EdgeDelta.from_dict(d.as_dict()) == d

    def test_rejections(self):
        with pytest.raises(ValueError, match="unknown mutation fields"):
            EdgeDelta.from_dict({"insert": [], "bogus": 1})
        with pytest.raises(ValueError, match="both insert and delete"):
            EdgeDelta.make(inserts=[(1, 2)], deletes=[(1, 2)])
        with pytest.raises(ValueError, match="non-negative"):
            EdgeDelta.make(inserts=[(-1, 2)])
        with pytest.raises(ValueError, match="pairs"):
            EdgeDelta.make(inserts=[(1, 2, 3)])

    def test_touched_rows_and_columns(self):
        d = EdgeDelta.make(inserts=[(7, 1)], deletes=[(2, 9), (7, 3)])
        assert d.touched_rows().tolist() == [2, 7]
        assert d.touched_columns().tolist() == [1, 3, 9]


class TestMutationLog:
    def test_chain_key_is_order_sensitive_and_stable(self):
        d1 = EdgeDelta.make(inserts=[(1, 2)])
        d2 = EdgeDelta.make(deletes=[(3, 4)])
        log = MutationLog(base_key="abc", deltas=(d1, d2))
        assert log.chain_key == MutationLog("abc", (d1, d2)).chain_key
        assert log.chain_key != MutationLog("abc", (d2, d1)).chain_key
        assert log.chain_key != MutationLog("xyz", (d1, d2)).chain_key

    def test_append_and_roundtrip(self):
        d1 = EdgeDelta.make(inserts=[(1, 2)])
        log = MutationLog(base_key="abc").append(d1)
        assert len(log) == 1
        assert MutationLog.from_dict(log.as_dict()) == log


class TestApplyDelta:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_apply_matches_from_scratch_rebuild(self, seed):
        g = _graph(seed)
        rng = np.random.default_rng(1000 + seed)
        delta = _random_delta(g, rng)
        child = apply_delta(g, delta)
        rebuilt = _rebuilt(child, child.name)
        assert np.array_equal(child.indptr, rebuilt.indptr)
        assert np.array_equal(child.indices, rebuilt.indices)
        assert child.content_key == rebuilt.content_key

    @pytest.mark.parametrize("seed", SEEDS)
    def test_incremental_content_key_equals_full_rehash(self, seed):
        g = _graph(seed)
        rng = np.random.default_rng(2000 + seed)
        child = apply_delta(g, _random_delta(g, rng))
        fresh = CSRGraph(
            child.indptr.copy(),
            child.indices.copy(),
            num_features=child.num_features,
            feature_density=child.feature_density,
            edge_feature_dim=child.edge_feature_dim,
            name=child.name,
        )
        assert np.array_equal(child.row_digests, fresh.row_digests)
        assert child.content_key == fresh.content_key

    def test_strict_mode_rejects_bad_edits(self):
        g = from_edge_list(4, [(0, 1), (1, 2)])
        with pytest.raises(ValueError, match="absent edge"):
            apply_delta(g, EdgeDelta.make(deletes=[(0, 3)]))
        with pytest.raises(ValueError, match="existing edge"):
            apply_delta(g, EdgeDelta.make(inserts=[(0, 1)]))

    def test_lenient_mode_degrades_to_set_semantics(self):
        g = from_edge_list(4, [(0, 1), (1, 2)])
        delta = EdgeDelta.make(inserts=[(0, 1), (2, 3)], deletes=[(0, 3)])
        child = apply_delta(g, delta, strict=False)
        assert _edge_set(child) == [(0, 1), (1, 2), (2, 3)]

    def test_empty_delta_returns_same_graph(self):
        g = _graph(0)
        assert apply_delta(g, EdgeDelta.make()) is g

    def test_provenance_points_at_parent(self):
        g = _graph(1)
        child = apply_delta(g, EdgeDelta.make(inserts=[(0, 5)], deletes=()))
        assert child.derived_from == g.content_key
        assert g.derived_from is None

    def test_renamed_view_shares_content(self):
        g = _graph(2)
        view = g.renamed("other")
        assert view.name == "other"
        assert view.content_key == g.content_key
        assert view.indices is g.indices

    @pytest.mark.parametrize("seed", range(10))
    def test_apply_chain_composes(self, seed):
        g = _graph(seed)
        rng = np.random.default_rng(3000 + seed)
        d1 = _random_delta(g, rng)
        mid = apply_delta(g, d1)
        d2 = _random_delta(mid, rng)
        chained = apply_chain(g, (d1, d2))
        stepped = apply_delta(mid, d2)
        assert np.array_equal(chained.indptr, stepped.indptr)
        assert np.array_equal(chained.indices, stepped.indices)
        assert chained.content_key == stepped.content_key


class TestDirtyTiles:
    def _plan(self, g):
        return tile_graph(g, 4096, bytes_per_value=8)

    def test_only_source_row_tiles_are_dirty(self):
        g = _graph(3, n=200, m=800)
        bounds = tile_boundaries(self._plan(g))
        assert bounds.size > 3
        row = int(bounds[1])  # first row of tile 1
        delta = EdgeDelta.make(inserts=[(row, 0)])
        assert dirty_tiles(bounds, delta).tolist() == [1]

    def test_include_destinations_adds_column_tiles(self):
        g = _graph(3, n=200, m=800)
        bounds = tile_boundaries(self._plan(g))
        row, col = int(bounds[1]), int(bounds[2])
        delta = EdgeDelta.make(inserts=[(row, col)])
        assert dirty_tiles(bounds, delta, include_destinations=True).tolist() == [
            1,
            2,
        ]

    def test_empty_delta_is_clean(self):
        g = _graph(3, n=200, m=800)
        bounds = tile_boundaries(self._plan(g))
        assert dirty_tiles(bounds, EdgeDelta.make()).size == 0

    def test_accepts_raw_rows(self):
        bounds = np.array([0, 10, 20, 30])
        assert dirty_tiles(bounds, np.array([5, 25])).tolist() == [0, 2]


class TestRewireDelta:
    @pytest.mark.parametrize("seed", range(10))
    def test_degree_preserving_and_deterministic(self, seed):
        g = _graph(seed, n=120, m=480)
        rows = [0, 5, 17, 40]
        delta = rewire_delta(g, rows, seed=seed)
        assert delta == rewire_delta(g, rows, seed=seed)
        child = apply_delta(g, delta)
        assert np.array_equal(child.indptr, g.indptr)
        assert set(delta.touched_rows().tolist()) <= set(rows)


class TestIncrementalTiling:
    def _settings(self):
        return dict(capacity_bytes=4096, bytes_per_value=8)

    def _assert_plans_equal(self, a, b):
        assert a.num_tiles == b.num_tiles
        assert a.graph_name == b.graph_name
        for ta, tb in zip(a.tiles, b.tiles):
            assert np.array_equal(ta.vertices, tb.vertices)
            assert ta.boundary_edges == tb.boundary_edges
            assert ta.external_vertices == tb.external_vertices
            assert ta.subgraph.content_key == tb.subgraph.content_key
            assert ta.subgraph.name == tb.subgraph.name
            assert np.array_equal(ta.subgraph.indices, tb.subgraph.indices)

    @pytest.mark.parametrize("seed", range(10))
    def test_patched_plan_matches_from_scratch(self, seed):
        clear_tiling_cache()
        g = _graph(seed, n=200, m=800)
        s = self._settings()
        tile_graph(g, s["capacity_bytes"], bytes_per_value=s["bytes_per_value"])
        delta = rewire_delta(g, [3, 60, 150], seed=seed)
        child = apply_delta(g, delta)
        patched = tile_graph(
            child, s["capacity_bytes"], bytes_per_value=s["bytes_per_value"]
        )
        clear_tiling_cache()
        cold = tile_graph(
            child, s["capacity_bytes"], bytes_per_value=s["bytes_per_value"]
        )
        self._assert_plans_equal(patched, cold)

    def test_degree_changing_delta_falls_back(self):
        clear_tiling_cache()
        g = _graph(0, n=200, m=800)
        s = self._settings()
        tile_graph(g, s["capacity_bytes"], bytes_per_value=s["bytes_per_value"])
        rng = np.random.default_rng(0)
        child = apply_delta(g, _random_delta(g, rng))  # changes degrees
        patched = tile_graph(
            child, s["capacity_bytes"], bytes_per_value=s["bytes_per_value"]
        )
        clear_tiling_cache()
        cold = tile_graph(
            child, s["capacity_bytes"], bytes_per_value=s["bytes_per_value"]
        )
        self._assert_plans_equal(patched, cold)

    def test_plan_memo_returns_same_object(self):
        clear_tiling_cache()
        g = _graph(1, n=200, m=800)
        a = tile_graph(g, 4096, bytes_per_value=8)
        b = tile_graph(g, 4096, bytes_per_value=8)
        assert a is b
        clear_tiling_cache()
        assert tile_graph(g, 4096, bytes_per_value=8) is not a


class TestPartitionSampleCache:
    @pytest.mark.parametrize("seed", range(10))
    def test_incremental_stats_match_full_pass(self, seed):
        clear_partition_sample_cache()
        cfg = default_config().scaled(array_k=8, pe_buffer_bytes=1024)
        sim = AuroraSimulator(cfg)
        g = _graph(seed, n=300, m=1500)
        k = cfg.array_k
        sim._placement_sample_stats(g, k)  # seed the parent entry
        delta = rewire_delta(g, [1, 40, 200], seed=seed)
        child = apply_delta(g, delta)
        inc_hops, inc_frac = sim._placement_sample_stats(child, k)
        clear_partition_sample_cache()
        full_hops, full_frac = sim._placement_sample_stats(child, k)
        assert np.array_equal(inc_hops, full_hops)
        assert np.array_equal(inc_frac, full_frac)


class TestSnapshotMemo:
    def test_load_dataset_memoizes_and_clears(self):
        clear_snapshot_cache()
        a = load_dataset("cora", scale=0.1, seed=3)
        b = load_dataset("cora", scale=0.1, seed=3)
        assert a is b
        assert load_dataset("cora", scale=0.1, seed=4) is not a
        clear_snapshot_cache()
        c = load_dataset("cora", scale=0.1, seed=3)
        assert c is not a
        assert c.content_key == a.content_key
