"""Tests for vertex reordering and locality restoration."""

import numpy as np
import pytest

from repro.graphs import (
    chain_graph,
    from_edge_list,
    power_law_graph,
    tile_graph,
    uniform_random_graph,
)
from repro.graphs.reorder import bfs_order, edge_locality_score, permute_graph


class TestBFSOrder:
    def test_is_permutation(self, medium_graph):
        order = bfs_order(medium_graph)
        assert np.array_equal(np.sort(order), np.arange(medium_graph.num_vertices))

    def test_covers_disconnected_components(self):
        g = from_edge_list(6, [(0, 1), (3, 4)])
        order = bfs_order(g)
        assert np.sort(order).tolist() == list(range(6))

    def test_chain_is_sequential(self):
        g = chain_graph(10)
        assert bfs_order(g).tolist() == list(range(10))

    def test_seed_vertex(self):
        g = chain_graph(5)
        order = bfs_order(g, seed_vertex=2)
        assert order[0] == 2

    def test_seed_out_of_range(self, tiny_graph):
        with pytest.raises(ValueError):
            bfs_order(tiny_graph, seed_vertex=99)

    def test_degree_bucketed_variant(self, medium_graph):
        order = bfs_order(medium_graph, degree_bucketed=True)
        assert np.array_equal(np.sort(order), np.arange(medium_graph.num_vertices))

    def test_empty(self):
        assert bfs_order(from_edge_list(0, [])).size == 0


class TestPermute:
    def test_preserves_edge_count_and_degrees(self, medium_graph):
        order = bfs_order(medium_graph)
        out = permute_graph(medium_graph, order)
        assert out.num_edges == medium_graph.num_edges
        assert sorted(out.degrees.tolist()) == sorted(
            medium_graph.degrees.tolist()
        )

    def test_edges_relabelled_consistently(self):
        g = from_edge_list(3, [(0, 1), (1, 2)])
        out = permute_graph(g, np.array([2, 1, 0]))  # reverse ids
        # old 0->1 becomes 2->1; old 1->2 becomes 1->0.
        assert sorted(out.edges()) == [(1, 0), (2, 1)]

    def test_identity(self, tiny_graph):
        out = permute_graph(tiny_graph, np.arange(5))
        assert np.array_equal(out.indices, tiny_graph.indices)

    def test_rejects_non_permutation(self, tiny_graph):
        with pytest.raises(ValueError):
            permute_graph(tiny_graph, np.array([0, 0, 1, 2, 3]))

    def test_attributes_preserved(self, tiny_graph):
        out = permute_graph(tiny_graph, np.arange(5)[::-1])
        assert out.num_features == tiny_graph.num_features


class TestLocalityRestoration:
    def test_score_range(self, medium_graph):
        score = edge_locality_score(medium_graph)
        assert 0.0 <= score <= 1.0

    def test_bfs_improves_locality_of_shuffled_graph(self):
        """Destroy a local graph's numbering, then restore it with BFS."""
        rng = np.random.default_rng(0)
        local = power_law_graph(
            400, 2000, locality=0.7, locality_window=12, num_features=8, seed=3
        )
        shuffled = permute_graph(local, rng.permutation(400))
        restored = permute_graph(shuffled, bfs_order(shuffled))
        assert edge_locality_score(restored) > edge_locality_score(shuffled) * 1.5

    def test_bfs_reduces_tile_boundary_edges(self):
        """Reordering a scattered graph cuts cross-tile edges."""
        rng = np.random.default_rng(1)
        local = power_law_graph(
            600, 3000, locality=0.8, locality_window=10, num_features=8, seed=4
        )
        shuffled = permute_graph(local, rng.permutation(600))
        restored = permute_graph(shuffled, bfs_order(shuffled))
        cap = 40 * 1024
        b_shuffled = tile_graph(shuffled, cap).total_boundary_edges
        b_restored = tile_graph(restored, cap).total_boundary_edges
        assert b_restored < b_shuffled

    def test_uniform_graph_unaffected_much(self):
        """With no community structure, reordering cannot manufacture
        locality beyond the BFS frontier effect."""
        g = uniform_random_graph(400, 2000, seed=2)
        restored = permute_graph(g, bfs_order(g))
        assert edge_locality_score(restored) < 0.6
