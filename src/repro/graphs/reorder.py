"""Vertex reordering for locality-aware tiling.

The paper tiles graphs in CSR id order, which works because real dataset
numberings carry community locality.  For graphs that arrive without it
(fresh crawls, randomised ids), a cheap reordering pass restores the
locality the degree-aware mapper and the tiler exploit.  Two classic
orders are provided:

* **BFS order** — breadth-first layers keep neighborhoods contiguous;
* **degree-bucketed BFS** — BFS that visits low-degree vertices first
  within each frontier, keeping hubs spread instead of clustered.

``permute_graph`` applies any permutation and returns a relabelled
:class:`CSRGraph`, so the contiguous-range fast paths (tiling, Z-order
fill) work unchanged on the reordered graph.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from .csr import CSRGraph

__all__ = ["bfs_order", "permute_graph", "edge_locality_score"]


def bfs_order(
    graph: CSRGraph,
    *,
    degree_bucketed: bool = False,
    seed_vertex: int | None = None,
) -> np.ndarray:
    """A BFS visitation order covering every vertex (restarting across
    components, lowest-id unvisited vertex first unless ``seed_vertex``).

    Returns ``order`` with ``order[i]`` = the i-th visited original id.
    Treats edges as undirected (uses out- plus in-neighbors), matching
    how locality matters for message traffic in both directions.
    """
    n = graph.num_vertices
    if n == 0:
        return np.empty(0, dtype=np.int64)
    # Undirected adjacency: concatenate CSR and CSC neighbor lists.
    csc_indptr, csc_indices = graph.csc()
    visited = np.zeros(n, dtype=bool)
    order = np.empty(n, dtype=np.int64)
    cursor = 0
    start = seed_vertex if seed_vertex is not None else 0
    if not 0 <= start < n:
        raise ValueError("seed_vertex out of range")
    pending = deque()
    next_unvisited = 0

    def push(v: int) -> None:
        nonlocal cursor
        visited[v] = True
        order[cursor] = v
        cursor += 1
        pending.append(v)

    push(start)
    while cursor < n:
        if not pending:
            while visited[next_unvisited]:
                next_unvisited += 1
            push(next_unvisited)
            continue
        v = pending.popleft()
        out = graph.indices[graph.indptr[v] : graph.indptr[v + 1]]
        inn = csc_indices[csc_indptr[v] : csc_indptr[v + 1]]
        nbrs = np.concatenate((out, inn))
        nbrs = nbrs[~visited[nbrs]]
        if nbrs.size == 0:
            continue
        nbrs = np.unique(nbrs)
        if degree_bucketed:
            degs = graph.degrees[nbrs] + graph.in_degrees[nbrs]
            nbrs = nbrs[np.argsort(degs, kind="stable")]
        for u in nbrs.tolist():
            if not visited[u]:
                push(u)
    return order


def permute_graph(graph: CSRGraph, order: np.ndarray) -> CSRGraph:
    """Relabel vertices so that ``order[i]`` becomes vertex ``i``.

    Edge multiset is preserved; per-vertex attributes follow the vertex.
    """
    order = np.asarray(order, dtype=np.int64)
    n = graph.num_vertices
    if order.shape != (n,) or np.unique(order).size != n:
        raise ValueError("order must be a permutation of the vertex ids")
    new_of_old = np.empty(n, dtype=np.int64)
    new_of_old[order] = np.arange(n)
    src = np.repeat(np.arange(n, dtype=np.int64), graph.degrees)
    new_src = new_of_old[src]
    new_dst = new_of_old[graph.indices]
    sort = np.lexsort((new_dst, new_src))
    new_src, new_dst = new_src[sort], new_dst[sort]
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(np.bincount(new_src, minlength=n), out=indptr[1:])
    return CSRGraph(
        indptr,
        np.ascontiguousarray(new_dst),
        num_features=graph.num_features,
        feature_density=graph.feature_density,
        edge_feature_dim=graph.edge_feature_dim,
        name=f"{graph.name}-reordered",
    )


def edge_locality_score(graph: CSRGraph, window: int | None = None) -> float:
    """Fraction of edges whose endpoint ids are within ``window`` of each
    other (default: |V|/64, the generator's community-window scale)."""
    if graph.num_edges == 0:
        return 1.0
    window = window or max(4, graph.num_vertices // 64)
    src = np.repeat(np.arange(graph.num_vertices, dtype=np.int64), graph.degrees)
    return float((np.abs(src - graph.indices) <= window).mean())
