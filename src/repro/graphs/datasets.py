"""Dataset registry mirroring the paper's evaluation datasets.

The paper evaluates on Cora, Citeseer, Pubmed, Nell and Reddit.  Each entry
here records the published structural statistics and produces a
deterministic synthetic graph matched to them (see DESIGN.md for why this
substitution preserves the evaluated behaviour).

Large datasets can be *scaled*: ``load_dataset("reddit", scale=0.01)``
shrinks vertex and edge counts proportionally while preserving feature
width, density and the degree-distribution exponent, which is what the
cycle-tier simulator needs for tractable runs.  The analytical tier uses
``scale=1.0`` statistics directly via :func:`dataset_profile`.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from .csr import CSRGraph
from .generators import (
    bipartite_graph,
    near_clique_hub_graph,
    power_law_graph,
    star_graph,
)

__all__ = [
    "DatasetProfile",
    "DATASETS",
    "ADVERSARIAL_DATASETS",
    "dataset_profile",
    "load_dataset",
    "list_datasets",
    "list_adversarial_datasets",
    "clear_snapshot_cache",
]

#: Process-local snapshot memo bound: synthesizing a large dataset costs
#: seconds, so repeated loads of the same ``(name, scale, seed)`` (every
#: warm request of the serving path, every delta of a mutation stream)
#: reuse one immutable snapshot.  Small: full-scale graphs are large.
SNAPSHOT_CACHE_MAX = 4

_SNAPSHOTS: "OrderedDict[tuple, CSRGraph]" = OrderedDict()


def clear_snapshot_cache() -> None:
    """Drop the process-local dataset snapshot memo (tests)."""
    _SNAPSHOTS.clear()


@dataclass(frozen=True)
class DatasetProfile:
    """Published statistics of an evaluation dataset."""

    name: str
    num_vertices: int
    num_edges: int  # directed edge count
    num_features: int
    num_classes: int
    feature_density: float
    degree_exponent: float  # power-law tail exponent used for generation
    locality: float = 0.6  # fraction of edges inside a community window

    @property
    def mean_degree(self) -> float:
        return self.num_edges / self.num_vertices


# Published statistics (|E| is the directed count used for traffic
# accounting; citation graphs are symmetrised).  Feature density for
# Reddit is >50% per the paper's §VI-D discussion.
DATASETS: dict[str, DatasetProfile] = {
    "cora": DatasetProfile(
        name="cora",
        num_vertices=2708,
        num_edges=10556,
        num_features=1433,
        num_classes=7,
        feature_density=0.0127,
        degree_exponent=2.2,
        locality=0.7,
    ),
    "citeseer": DatasetProfile(
        name="citeseer",
        num_vertices=3327,
        num_edges=9104,
        num_features=3703,
        num_classes=6,
        feature_density=0.0085,
        degree_exponent=2.3,
        locality=0.75,
    ),
    "pubmed": DatasetProfile(
        name="pubmed",
        num_vertices=19717,
        num_edges=88648,
        num_features=500,
        num_classes=3,
        feature_density=0.1002,
        degree_exponent=2.2,
        locality=0.65,
    ),
    "nell": DatasetProfile(
        name="nell",
        num_vertices=65755,
        num_edges=251550,
        num_features=5414,
        num_classes=210,
        feature_density=0.0002,
        degree_exponent=2.0,
        locality=0.6,
    ),
    "reddit": DatasetProfile(
        name="reddit",
        num_vertices=232965,
        num_edges=11606919,
        num_features=602,
        num_classes=41,
        feature_density=0.516,
        degree_exponent=1.9,
        locality=0.35,  # Reddit communities are broad: weaker id locality
    ),
}


# Adversarial synthetic workloads: degree-skew extremes the paper's five
# datasets miss.  They are deliberately *not* part of ``list_datasets`` (the
# paper's grid stays the paper's grid) but resolve through the same
# ``dataset_profile``/``load_dataset`` path so DSE searches and regression
# sweeps can name them like any other workload.  Each builder takes
# ``(profile, n, m, seed)`` where ``n``/``m`` are the scaled vertex/edge
# targets; ``m`` is a target, not an exact budget, for the structured
# generators.
ADVERSARIAL_DATASETS: dict[str, DatasetProfile] = {
    # One hub wired to every leaf: the extreme multicast / bypass-link case.
    "adv-star": DatasetProfile(
        name="adv-star",
        num_vertices=4097,
        num_edges=8192,
        num_features=128,
        num_classes=4,
        feature_density=0.25,
        degree_exponent=2.0,
        locality=0.0,
    ),
    # Every edge crosses the partition: worst case for locality-preserving
    # (sequential) mapping, neutral for hashing.
    "adv-bipartite": DatasetProfile(
        name="adv-bipartite",
        num_vertices=4096,
        num_edges=65536,
        num_features=128,
        num_classes=4,
        feature_density=0.25,
        degree_exponent=2.0,
        locality=0.0,
    ),
    # Dense near-clique core with sparse spokes: pathological PE-load and
    # hub-traffic concentration.
    "adv-hubclique": DatasetProfile(
        name="adv-hubclique",
        num_vertices=4096,
        num_edges=60000,
        num_features=128,
        num_classes=4,
        feature_density=0.25,
        degree_exponent=1.5,
        locality=0.0,
    ),
}


def _build_adv_star(prof: DatasetProfile, n: int, m: int, seed: int, name: str) -> CSRGraph:
    del m, seed  # structure is fully determined by the leaf count
    return star_graph(max(n - 1, 1), num_features=prof.num_features, name=name)


def _build_adv_bipartite(
    prof: DatasetProfile, n: int, m: int, seed: int, name: str
) -> CSRGraph:
    left = max(1, n // 2)
    right = max(1, n - left)
    m = min(m, 2 * left * right)
    return bipartite_graph(
        left,
        right,
        m,
        num_features=prof.num_features,
        feature_density=prof.feature_density,
        seed=seed,
        name=name,
    )


def _build_adv_hubclique(
    prof: DatasetProfile, n: int, m: int, seed: int, name: str
) -> CSRGraph:
    # Pick the core size so the near-clique supplies roughly half the edge
    # target: m/2 ≈ density * k * (k - 1).
    k = max(2, min(n, int(round((m / (2 * 0.9)) ** 0.5)) + 1))
    return near_clique_hub_graph(
        n,
        k,
        clique_density=0.9,
        spoke_degree=2,
        num_features=prof.num_features,
        feature_density=prof.feature_density,
        seed=seed,
        name=name,
    )


_ADVERSARIAL_BUILDERS = {
    "adv-star": _build_adv_star,
    "adv-bipartite": _build_adv_bipartite,
    "adv-hubclique": _build_adv_hubclique,
}


def list_datasets() -> list[str]:
    """Names of all registered datasets, in the paper's order."""
    return list(DATASETS)


def list_adversarial_datasets() -> list[str]:
    """Names of the adversarial regression/DSE workloads."""
    return list(ADVERSARIAL_DATASETS)


def dataset_profile(name: str) -> DatasetProfile:
    """Look up the published statistics for ``name`` (case-insensitive)."""
    key = name.lower()
    if key in DATASETS:
        return DATASETS[key]
    if key in ADVERSARIAL_DATASETS:
        return ADVERSARIAL_DATASETS[key]
    raise KeyError(
        f"unknown dataset {name!r}; available: "
        f"{', '.join((*DATASETS, *ADVERSARIAL_DATASETS))}"
    )


def load_dataset(
    name: str,
    *,
    scale: float = 1.0,
    seed: int = 7,
) -> CSRGraph:
    """Generate the synthetic stand-in for dataset ``name``.

    Parameters
    ----------
    scale:
        Proportional shrink factor in ``(0, 1]`` applied to vertex and edge
        counts.  Feature width, density and degree skew are preserved, so a
        scaled graph exercises the same code paths with the same per-edge
        and per-vertex behaviour.
    seed:
        Generator seed; the default is fixed so experiment outputs are
        reproducible run to run.
    """
    if not (0.0 < scale <= 1.0):
        raise ValueError("scale must be in (0, 1]")
    prof = dataset_profile(name)
    memo_key = (prof.name, float(scale), int(seed))
    cached = _SNAPSHOTS.get(memo_key)
    if cached is not None:
        _SNAPSHOTS.move_to_end(memo_key)
        return cached
    n = max(16, int(round(prof.num_vertices * scale)))
    m = max(n, int(round(prof.num_edges * scale)))
    m = min(m, n * n)
    graph_name = prof.name if scale == 1.0 else f"{prof.name}@{scale:g}"
    builder = _ADVERSARIAL_BUILDERS.get(prof.name)
    if builder is not None:
        graph = builder(prof, n, m, int(seed), graph_name)
    else:
        graph = power_law_graph(
            n,
            m,
            exponent=prof.degree_exponent,
            locality=prof.locality,
            num_features=prof.num_features,
            feature_density=prof.feature_density,
            seed=seed,
            name=graph_name,
        )
    _SNAPSHOTS[memo_key] = graph
    while len(_SNAPSHOTS) > SNAPSHOT_CACHE_MAX:
        _SNAPSHOTS.popitem(last=False)
    return graph
