"""Pluggable search strategies behind one ``ask()/tell()`` interface.

Every optimizer proposes :class:`Candidate` batches (``ask``) and
receives ``(candidate, fitness)`` pairs back (``tell``).  Fitness is
minimised; failed evaluations are reported as ``math.inf`` so they lose
every comparison without special-casing.  All randomness flows from one
``random.Random(seed)`` instance, so a search is a pure function of
``(space, seed, budget)`` — the property the determinism and
checkpoint-resume tests pin down.

The ``rung`` field carries multi-fidelity information: ``-1`` means full
fidelity; :class:`SuccessiveHalving` starts candidates on cheap rungs
(scaled-down workloads) and promotes survivors toward rung
``num_rungs - 1`` (full scale).  Single-fidelity optimizers always emit
``rung=-1``.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Sequence

from .space import DesignSpace

__all__ = [
    "Candidate",
    "Optimizer",
    "RandomSearch",
    "HillClimb",
    "GeneticAlgorithm",
    "SuccessiveHalving",
    "OPTIMIZERS",
    "build_optimizer",
    "list_optimizers",
]


@dataclass(frozen=True)
class Candidate:
    """One proposed design: grid indices plus a fidelity rung."""

    indices: tuple[int, ...]
    rung: int = -1


class Optimizer:
    """Base class: bookkeeping shared by every strategy."""

    name = "base"
    #: Fidelity fractions by rung, low → high.  ``(1.0,)`` means the
    #: optimizer is single-fidelity.
    rung_fractions: tuple[float, ...] = (1.0,)

    def __init__(self, space: DesignSpace, *, seed: int = 0, **options) -> None:
        self.space = space
        self.seed = int(seed)
        self.rng = random.Random(self.seed)
        self.options = options
        self.history: list[tuple[Candidate, float]] = []

    def fidelity(self, candidate: Candidate) -> float:
        if candidate.rung < 0:
            return 1.0
        return self.rung_fractions[candidate.rung]

    def ask(self, n: int) -> list[Candidate]:  # pragma: no cover - abstract
        raise NotImplementedError

    def tell(self, evaluated: Sequence[tuple[Candidate, float]]) -> None:
        self.history.extend(evaluated)

    def done(self) -> bool:
        """True once the strategy cannot propose anything new."""
        return False

    # -- helpers -------------------------------------------------------
    def _fresh_random(self, seen: set[tuple[int, ...]]) -> tuple[int, ...] | None:
        """A feasible point not in ``seen`` (None when the space looks
        exhausted — bounded retries keep tiny spaces from spinning)."""
        for _ in range(200):
            point = self.space.random_point(self.rng)
            if point not in seen:
                return point
        return None


class RandomSearch(Optimizer):
    """Uniform feasible sampling, with replacement by default.

    The baseline every structured optimizer must beat.  Replacement is
    deliberate: a repeated draw hits the content-addressed cache and
    costs nothing, so the optimizer needs no dedup bookkeeping — the
    cache *is* the dedup.  ``unique=True`` switches to sampling without
    replacement for exhaustive small-space sweeps.
    """

    name = "random"

    def __init__(
        self,
        space: DesignSpace,
        *,
        seed: int = 0,
        unique: bool = False,
        **options,
    ) -> None:
        super().__init__(space, seed=seed, **options)
        self.unique = bool(unique)
        self._proposed: set[tuple[int, ...]] = set()
        self._exhausted = False

    def ask(self, n: int) -> list[Candidate]:
        out: list[Candidate] = []
        for _ in range(n):
            if self.unique:
                point = self._fresh_random(self._proposed)
                if point is None:
                    self._exhausted = True
                    break
                self._proposed.add(point)
            else:
                point = self.space.random_point(self.rng)
            out.append(Candidate(point))
        return out

    def done(self) -> bool:
        return self._exhausted


class HillClimb(Optimizer):
    """Greedy neighbourhood descent with random restarts.

    Evaluates the current point's unvisited neighbours; moves to the
    best strict improvement, otherwise restarts from a fresh random
    point (``restarts`` bounds how many times before giving up).
    """

    name = "hillclimb"

    def __init__(
        self,
        space: DesignSpace,
        *,
        seed: int = 0,
        restarts: int = 4,
        **options,
    ) -> None:
        super().__init__(space, seed=seed, **options)
        self.restarts = int(restarts)
        self._restarts_used = 0
        self._seen: set[tuple[int, ...]] = set()
        self._current: tuple[int, ...] | None = None
        self._current_fitness = math.inf
        self._frontier: list[tuple[int, ...]] = []
        self._exhausted = False

    def _restart(self) -> None:
        point = self._fresh_random(self._seen)
        if point is None:
            self._exhausted = True
            return
        self._current = None
        self._current_fitness = math.inf
        self._frontier = [point]

    def ask(self, n: int) -> list[Candidate]:
        out: list[Candidate] = []
        while len(out) < n and not self._exhausted:
            if not self._frontier:
                if self._current is None:
                    self._restart()
                else:
                    nbrs = [
                        p
                        for p in self.space.neighbors(self._current)
                        if p not in self._seen
                    ]
                    if nbrs:
                        self._frontier = nbrs
                    elif self._restarts_used < self.restarts:
                        self._restarts_used += 1
                        self._restart()
                    else:
                        self._exhausted = True
                if not self._frontier:
                    break
            point = self._frontier.pop(0)
            self._seen.add(point)
            out.append(Candidate(point))
        return out

    def tell(self, evaluated: Sequence[tuple[Candidate, float]]) -> None:
        super().tell(evaluated)
        improved = False
        for candidate, fitness in evaluated:
            if fitness < self._current_fitness:
                self._current = candidate.indices
                self._current_fitness = fitness
                improved = True
        if improved:
            # Moving invalidates the old neighbourhood queue.
            self._frontier = []

    def done(self) -> bool:
        return self._exhausted


class GeneticAlgorithm(Optimizer):
    """Small steady-state GA on index vectors.

    Tournament selection, uniform crossover, per-axis mutation, and
    elitism.  Index vectors make crossover trivially valid; infeasible
    offspring are resampled.  Duplicate offspring are allowed — the
    content-addressed cache makes re-evaluating a known design free.
    """

    name = "genetic"

    def __init__(
        self,
        space: DesignSpace,
        *,
        seed: int = 0,
        population: int = 16,
        tournament: int = 3,
        mutation_rate: float = 0.2,
        elite: int = 2,
        **options,
    ) -> None:
        super().__init__(space, seed=seed, **options)
        self.population_size = max(2, int(population))
        self.tournament = max(2, int(tournament))
        self.mutation_rate = float(mutation_rate)
        self.elite = max(0, int(elite))
        self._scored: list[tuple[tuple[int, ...], float]] = []

    def _select(self) -> tuple[int, ...]:
        pool = self.rng.sample(
            self._scored, min(self.tournament, len(self._scored))
        )
        return min(pool, key=lambda item: item[1])[0]

    def _crossover(
        self, a: tuple[int, ...], b: tuple[int, ...]
    ) -> tuple[int, ...]:
        return tuple(
            ai if self.rng.random() < 0.5 else bi for ai, bi in zip(a, b)
        )

    def _mutate(self, point: tuple[int, ...]) -> tuple[int, ...]:
        out = list(point)
        for pos, axis in enumerate(self.space.axes):
            if self.rng.random() < self.mutation_rate:
                out[pos] = self.rng.randrange(axis.size)
        return tuple(out)

    def _offspring(self) -> tuple[int, ...]:
        for _ in range(50):
            child = self._mutate(
                self._crossover(self._select(), self._select())
            )
            if self.space.is_feasible(child):
                return child
        return self.space.random_point(self.rng)

    def ask(self, n: int) -> list[Candidate]:
        out: list[Candidate] = []
        for _ in range(n):
            if len(self._scored) < 2:
                point = self.space.random_point(self.rng)
            else:
                point = self._offspring()
            out.append(Candidate(point))
        return out

    def tell(self, evaluated: Sequence[tuple[Candidate, float]]) -> None:
        super().tell(evaluated)
        self._scored.extend(
            (candidate.indices, fitness) for candidate, fitness in evaluated
        )
        # Keep the best `population` individuals (elitism falls out of
        # the sort; `elite` guards against a fully-replaced generation).
        self._scored.sort(key=lambda item: item[1])
        keep = max(self.population_size, self.elite)
        del self._scored[keep:]


class SuccessiveHalving(Optimizer):
    """Multi-fidelity racing: wide and cheap first, narrow and full last.

    A cohort of ``cohort`` designs starts on the cheapest rung (the base
    workload scaled by ``rung_fractions[0]``); after each rung the best
    ``1/eta`` fraction is promoted to the next, finishing with a handful
    of full-fidelity evaluations.  Combined with ``run_jobs``'s cancel
    event, a rung whose budget expires can be stopped mid-flight instead
    of burning evaluations on designs that cannot win.
    """

    name = "sha"

    def __init__(
        self,
        space: DesignSpace,
        *,
        seed: int = 0,
        cohort: int = 27,
        eta: int = 3,
        rungs: int = 3,
        **options,
    ) -> None:
        super().__init__(space, seed=seed, **options)
        if eta < 2:
            raise ValueError("eta must be >= 2")
        if rungs < 1:
            raise ValueError("rungs must be >= 1")
        self.cohort = max(2, int(cohort))
        self.eta = int(eta)
        self.num_rungs = int(rungs)
        self.rung_fractions = tuple(
            float(eta) ** (r - (rungs - 1)) for r in range(rungs)
        )
        self._rung = 0
        self._pending: list[Candidate] | None = None
        self._results: list[tuple[Candidate, float]] = []
        self._outstanding = 0
        self._finished = False

    def _seed_cohort(self) -> None:
        seen: set[tuple[int, ...]] = set()
        cohort: list[Candidate] = []
        for _ in range(self.cohort):
            point = self._fresh_random(seen)
            if point is None:
                break
            seen.add(point)
            cohort.append(Candidate(point, rung=0))
        self._pending = cohort

    def _promote(self) -> None:
        """Close the current rung: keep the top ``1/eta``, advance."""
        ranked = sorted(self._results, key=lambda item: item[1])
        survivors = max(1, len(ranked) // self.eta)
        self._rung += 1
        if self._rung >= self.num_rungs or not ranked:
            self._finished = True
            self._pending = []
        else:
            self._pending = [
                Candidate(candidate.indices, rung=self._rung)
                for candidate, _ in ranked[:survivors]
            ]
        self._results = []

    def ask(self, n: int) -> list[Candidate]:
        if self._finished:
            return []
        if self._pending is None:
            self._seed_cohort()
        out: list[Candidate] = []
        while len(out) < n and self._pending:
            out.append(self._pending.pop(0))
        self._outstanding += len(out)
        return out

    def tell(self, evaluated: Sequence[tuple[Candidate, float]]) -> None:
        super().tell(evaluated)
        self._results.extend(evaluated)
        self._outstanding -= len(evaluated)
        if not self._pending and self._outstanding <= 0:
            self._promote()

    def done(self) -> bool:
        return self._finished


OPTIMIZERS: dict[str, type[Optimizer]] = {
    "random": RandomSearch,
    "hillclimb": HillClimb,
    "genetic": GeneticAlgorithm,
    "sha": SuccessiveHalving,
}


def list_optimizers() -> list[str]:
    return list(OPTIMIZERS)


def build_optimizer(
    name: str, space: DesignSpace, *, seed: int = 0, **options
) -> Optimizer:
    try:
        cls = OPTIMIZERS[name]
    except KeyError:
        raise KeyError(
            f"unknown optimizer {name!r}; available: {', '.join(OPTIMIZERS)}"
        ) from None
    return cls(space, seed=seed, **options)
