#!/usr/bin/env python3
"""Point-cloud processing with EdgeConv — the paper's MP-GNN scenario.

Builds a k-NN graph over a synthetic 3-D point cloud, runs the
executable EdgeConv layer (per-edge MLP + max aggregation), and
simulates it on Aurora.  EdgeConv has *no vertex update* (Table II), so
the partition algorithm forms a single sub-accelerator — this example
shows that path.

Run:  python examples/point_cloud_edgeconv.py
"""

import numpy as np

from repro import AuroraSimulator, LayerDims, get_model
from repro.graphs import from_edge_list
from repro.models import edgeconv_layer


def knn_graph(points: np.ndarray, k: int):
    """Directed k-nearest-neighbour graph over 3-D points."""
    n = points.shape[0]
    d2 = ((points[:, None, :] - points[None, :, :]) ** 2).sum(axis=2)
    np.fill_diagonal(d2, np.inf)
    nbrs = np.argsort(d2, axis=1)[:, :k]
    edges = [(i, int(j)) for i in range(n) for j in nbrs[i]]
    return from_edge_list(n, edges, num_features=3, name="pointcloud")


def main() -> None:
    rng = np.random.default_rng(0)
    # Three clusters of points (a toy segmentation workload).
    centers = np.array([[0, 0, 0], [4, 0, 0], [0, 4, 0]], dtype=float)
    points = np.concatenate(
        [c + 0.5 * rng.normal(size=(160, 3)) for c in centers]
    )
    graph = knn_graph(points, k=8)
    print(f"point cloud: {graph} (k-NN, k=8)")

    # Functional EdgeConv: one per-edge transform, max aggregation.
    w = rng.normal(0, 0.5, size=(3, 16))
    features = edgeconv_layer(graph, points, [w])
    print(f"EdgeConv output features: {features.shape}, "
          f"range [{features.min():.2f}, {features.max():.2f}]")

    # Accelerator simulation: EdgeConv-1 and EdgeConv-5.
    sim = AuroraSimulator()
    for model_name in ("edgeconv-1", "edgeconv-5"):
        r = sim.simulate_layer(
            get_model(model_name), graph, LayerDims(3, 16), input_density=1.0
        )
        print(
            f"{model_name}: {r.total_cycles:,.0f} cycles, "
            f"sub-accelerator split a={r.notes['partition_a']} "
            f"b={r.notes['partition_b']} (single-accelerator mode: "
            f"{r.notes['partition_b'] == 0})"
        )


if __name__ == "__main__":
    main()
