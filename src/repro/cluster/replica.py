"""Replica lifecycle: spawn, health-probe, restart with backoff, drain.

Each replica is a full ``repro serve`` process on its own ephemeral
port with its own cache shard directory.  The supervisor runs one
asyncio task per replica slot:

* **spawn** — start the subprocess, wait for its ``listening on`` line,
  and announce the address to the router (``on_up``);
* **probe** — ``GET /healthz`` every ``probe_interval``; the response's
  ``inflight``/``uptime_seconds`` distinguish *busy* (answers, work in
  flight) from *hung* (no answer at all).  Only ``fail_threshold``
  consecutive silent probes — or the process exiting — count as down;
* **restart** — crashed or hung replicas are killed, removed from the
  ring (``on_down``), and relaunched after an exponential backoff that
  resets once a replica stays up for ``stable_seconds``;
* **drain** — an operator drain removes the replica from the ring
  first, then SIGTERMs it so in-flight work completes, and does *not*
  restart it until asked.

The process launch is injectable (``factory``) so tests can supervise
fake replicas without real subprocesses.
"""

from __future__ import annotations

import asyncio
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from . import wire

__all__ = [
    "ReplicaConfig",
    "ReplicaSpawnError",
    "SubprocessReplica",
    "ReplicaSupervisor",
]

#: Replica slot states as reported by :meth:`ReplicaSupervisor.snapshot`.
STATES = ("starting", "up", "down", "draining", "stopped")


@dataclass(frozen=True)
class ReplicaConfig:
    """Launch spec for one replica slot."""

    replica_id: int
    host: str = "127.0.0.1"
    cache_dir: "Path | str | None" = None
    serve_args: tuple[str, ...] = ()  # extra ``repro serve`` flags

    @property
    def name(self) -> str:
        return str(self.replica_id)


class ReplicaSpawnError(RuntimeError):
    """The replica process failed to start or report its port."""


class SubprocessReplica:
    """One ``repro serve`` subprocess with stdout forwarding."""

    def __init__(self, config: ReplicaConfig, *, forward_output: bool = True) -> None:
        self.config = config
        self.forward_output = forward_output
        self.process: subprocess.Popen | None = None
        self.address: tuple[str, int] | None = None
        self._pump: threading.Thread | None = None

    # ------------------------------------------------------------------
    def start(self, timeout: float = 60.0) -> tuple[str, int]:
        """Spawn and block until the server reports its port."""
        import os

        cfg = self.config
        cmd = [
            sys.executable, "-m", "repro", "serve",
            "--host", cfg.host, "--port", "0",
            "--replica-id", cfg.name,
            *cfg.serve_args,
        ]
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            str(Path(__file__).resolve().parents[2])
            + os.pathsep + env.get("PYTHONPATH", "")
        )
        if cfg.cache_dir is not None:
            env["REPRO_CACHE_DIR"] = str(cfg.cache_dir)
        self.process = subprocess.Popen(
            cmd,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            line = self.process.stdout.readline()
            if not line:
                if self.process.poll() is not None:
                    raise ReplicaSpawnError(
                        f"replica {cfg.name} exited with "
                        f"{self.process.returncode} during startup"
                    )
                continue
            if self.forward_output:
                print(f"replica-{cfg.name}: {line.rstrip()}", flush=True)
            if "listening on" in line:
                host, _, port = line.rstrip().rpartition(":")
                host = host.rsplit(" ", 1)[-1]
                self.address = (host, int(port))
                self._pump = threading.Thread(target=self._drain_stdout, daemon=True)
                self._pump.start()
                return self.address
        self.kill()
        raise ReplicaSpawnError(
            f"replica {cfg.name} never reported its port within {timeout:g}s"
        )

    def _drain_stdout(self) -> None:
        # The pipe must keep draining or the child blocks on a full
        # buffer; forward its (rare) lifecycle lines when asked to.
        try:
            for line in self.process.stdout:
                if self.forward_output:
                    print(
                        f"replica-{self.config.name}: {line.rstrip()}",
                        flush=True,
                    )
        except ValueError:
            pass  # stdout closed during teardown

    # ------------------------------------------------------------------
    @property
    def pid(self) -> int | None:
        return self.process.pid if self.process is not None else None

    def poll(self) -> int | None:
        return self.process.poll() if self.process is not None else None

    def terminate(self) -> None:
        if self.process is not None and self.process.poll() is None:
            self.process.terminate()

    def kill(self) -> None:
        if self.process is not None and self.process.poll() is None:
            self.process.kill()

    def wait(self, timeout: float | None = None) -> int | None:
        if self.process is None:
            return None
        try:
            return self.process.wait(timeout)
        except subprocess.TimeoutExpired:
            return None

    def close(self) -> None:
        if self.process is not None and self.process.stdout is not None:
            try:
                self.process.stdout.close()
            except OSError:
                pass


async def healthz_probe(host: str, port: int, timeout: float) -> dict:
    """Default probe: ``GET /healthz``, raising on any failure."""
    status, payload, _ = await wire.request_json(
        host, port, "GET", "/healthz", timeout=timeout
    )
    if status != 200:
        raise wire.PeerProtocolError(f"healthz answered HTTP {status}")
    return payload


@dataclass
class _Slot:
    """Mutable supervision state for one replica id."""

    config: ReplicaConfig
    state: str = "starting"
    process: object | None = None
    address: tuple[str, int] | None = None
    restarts: int = 0
    consecutive_failures: int = 0
    last_health: dict = field(default_factory=dict)
    up_since: float | None = None
    stop_requested: bool = False
    task: "asyncio.Task | None" = None


class ReplicaSupervisor:
    """Owns N replica slots; keeps each one alive and announced."""

    def __init__(
        self,
        configs: "list[ReplicaConfig] | tuple[ReplicaConfig, ...]",
        *,
        factory: Callable[[ReplicaConfig], SubprocessReplica] = SubprocessReplica,
        probe: Callable[..., "asyncio.Future | object"] = healthz_probe,
        probe_interval: float = 1.0,
        probe_timeout: float = 2.0,
        fail_threshold: int = 3,
        restart_backoff: float = 0.5,
        backoff_cap: float = 10.0,
        stable_seconds: float = 30.0,
        start_timeout: float = 120.0,
        on_up: Callable[[str, str, int], None] | None = None,
        on_down: Callable[[str], None] | None = None,
    ) -> None:
        if fail_threshold < 1:
            raise ValueError("fail_threshold must be >= 1")
        self._slots = {cfg.name: _Slot(cfg) for cfg in configs}
        if len(self._slots) != len(configs):
            raise ValueError("duplicate replica ids")
        self.factory = factory
        self.probe = probe
        self.probe_interval = probe_interval
        self.probe_timeout = probe_timeout
        self.fail_threshold = fail_threshold
        self.restart_backoff = restart_backoff
        self.backoff_cap = backoff_cap
        self.stable_seconds = stable_seconds
        self.start_timeout = start_timeout
        self.on_up = on_up or (lambda name, host, port: None)
        self.on_down = on_down or (lambda name: None)
        self.restarts_total = 0

    # -- lifecycle ------------------------------------------------------
    async def start(self, *, wait_ready: bool = True) -> None:
        """Launch every slot; optionally block until all are up."""
        for slot in self._slots.values():
            slot.stop_requested = False
            slot.task = asyncio.create_task(self._run_slot(slot))
        if wait_ready:
            await self.wait_all_up(self.start_timeout)

    async def wait_all_up(self, timeout: float) -> None:
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            states = [s.state for s in self._slots.values()]
            if all(state == "up" for state in states):
                return
            if any(s.task is not None and s.task.done() for s in self._slots.values()):
                for slot in self._slots.values():
                    if slot.task is not None and slot.task.done():
                        slot.task.result()  # surface the crash
            await asyncio.sleep(0.05)
        raise ReplicaSpawnError(
            f"replicas not all up within {timeout:g}s: "
            + ", ".join(f"{n}={s.state}" for n, s in sorted(self._slots.items()))
        )

    async def stop(self, *, drain_timeout: float = 30.0) -> None:
        """Stop supervising, SIGTERM every replica, reap them all."""
        for slot in self._slots.values():
            slot.stop_requested = True
            if slot.task is not None:
                slot.task.cancel()
        for slot in self._slots.values():
            if slot.task is not None:
                try:
                    await slot.task
                except (asyncio.CancelledError, Exception):  # noqa: BLE001
                    pass
        await asyncio.gather(
            *(self._shutdown_slot(s, drain_timeout) for s in self._slots.values())
        )

    async def _shutdown_slot(self, slot: _Slot, drain_timeout: float) -> None:
        process = slot.process
        if process is None:
            slot.state = "stopped"
            return
        if slot.state == "up":
            self.on_down(slot.config.name)
        process.terminate()
        exited = await asyncio.to_thread(process.wait, drain_timeout)
        if exited is None:
            process.kill()
            await asyncio.to_thread(process.wait, 10.0)
        if hasattr(process, "close"):
            process.close()
        slot.state = "stopped"

    # -- one slot's supervision loop ------------------------------------
    async def _run_slot(self, slot: _Slot) -> None:
        while not slot.stop_requested:
            slot.state = "starting"
            process = self.factory(slot.config)
            try:
                address = await asyncio.to_thread(process.start, self.start_timeout)
            except Exception:  # noqa: BLE001 — spawn failure = backoff + retry
                slot.process = process
                slot.state = "down"
                if slot.stop_requested:
                    return
                await self._backoff(slot)
                continue
            slot.process = process
            slot.address = address
            slot.consecutive_failures = 0
            slot.up_since = time.monotonic()
            slot.state = "up"
            self.on_up(slot.config.name, address[0], address[1])

            healthy = await self._probe_until_down(slot, process)
            if slot.stop_requested:
                return
            # The slot is down: unroute it, reap the process, back off.
            self.on_down(slot.config.name)
            slot.state = "down"
            process.kill()
            await asyncio.to_thread(process.wait, 10.0)
            if hasattr(process, "close"):
                process.close()
            if (
                healthy is not None
                and slot.up_since is not None
                and time.monotonic() - slot.up_since >= self.stable_seconds
            ):
                slot.restarts = 0  # a long healthy run resets the backoff
            await self._backoff(slot)

    async def _probe_until_down(self, slot: _Slot, process) -> "float | None":
        """Probe until the replica is down; returns last healthy time."""
        last_ok: float | None = time.monotonic()
        while not slot.stop_requested:
            try:
                await asyncio.sleep(self.probe_interval)
            except asyncio.CancelledError:
                slot.stop_requested = True
                raise
            if slot.stop_requested:
                return last_ok
            if process.poll() is not None:
                return last_ok  # crashed — the run loop restarts it
            try:
                health = await self.probe(
                    slot.address[0], slot.address[1], self.probe_timeout
                )
            except asyncio.CancelledError:
                slot.stop_requested = True
                raise
            except Exception:  # noqa: BLE001 — silent probe
                slot.consecutive_failures += 1
                if slot.consecutive_failures >= self.fail_threshold:
                    return last_ok  # hung — restart it
            else:
                # Busy replicas still answer (inflight > 0); any timely
                # 200 means alive, so the failure streak resets.
                slot.consecutive_failures = 0
                slot.last_health = health
                last_ok = time.monotonic()
        return last_ok

    async def _backoff(self, slot: _Slot) -> None:
        slot.restarts += 1
        self.restarts_total += 1
        delay = min(
            self.backoff_cap,
            self.restart_backoff * 2 ** min(slot.restarts - 1, 8),
        )
        try:
            await asyncio.sleep(delay)
        except asyncio.CancelledError:
            slot.stop_requested = True
            raise

    # -- operator actions -----------------------------------------------
    async def drain_replica(
        self, replica_id: "int | str", *, drain_timeout: float = 30.0
    ) -> dict:
        """Unroute + SIGTERM one replica; it stays down until restarted."""
        slot = self._slot(replica_id)
        if slot.state in ("draining", "stopped"):
            return self._slot_snapshot(slot)
        slot.stop_requested = True
        if slot.task is not None:
            slot.task.cancel()
            try:
                await slot.task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
            slot.task = None
        was_up = slot.state == "up"
        slot.state = "draining"
        if was_up:
            self.on_down(slot.config.name)
        process = slot.process
        if process is not None:
            process.terminate()
            exited = await asyncio.to_thread(process.wait, drain_timeout)
            if exited is None:
                process.kill()
                await asyncio.to_thread(process.wait, 10.0)
            if hasattr(process, "close"):
                process.close()
        slot.state = "stopped"
        return self._slot_snapshot(slot)

    async def start_replica(self, replica_id: "int | str") -> dict:
        """Relaunch a drained/stopped replica slot."""
        slot = self._slot(replica_id)
        if slot.task is not None and not slot.task.done():
            return self._slot_snapshot(slot)
        slot.stop_requested = False
        slot.task = asyncio.create_task(self._run_slot(slot))
        return self._slot_snapshot(slot)

    # -- introspection --------------------------------------------------
    def _slot(self, replica_id: "int | str") -> _Slot:
        name = str(replica_id)
        if name not in self._slots:
            raise KeyError(f"no such replica: {name}")
        return self._slots[name]

    def states(self) -> dict[str, str]:
        return {name: slot.state for name, slot in sorted(self._slots.items())}

    def _slot_snapshot(self, slot: _Slot) -> dict:
        process = slot.process
        return {
            "replica_id": slot.config.name,
            "state": slot.state,
            "address": list(slot.address) if slot.address else None,
            "pid": getattr(process, "pid", None),
            "restarts": slot.restarts,
            "consecutive_failures": slot.consecutive_failures,
            "uptime_seconds": (
                time.monotonic() - slot.up_since
                if slot.state == "up" and slot.up_since is not None
                else None
            ),
            "last_health": {
                k: slot.last_health[k]
                for k in ("status", "inflight", "uptime_seconds")
                if k in slot.last_health
            },
        }

    def snapshot(self) -> dict:
        return {
            "replicas": {
                name: self._slot_snapshot(slot)
                for name, slot in sorted(self._slots.items())
            },
            "restarts_total": self.restarts_total,
            "probe_interval_seconds": self.probe_interval,
            "fail_threshold": self.fail_threshold,
        }
