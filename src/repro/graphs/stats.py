"""Graph statistics consumed by the mapping and partition units.

These are the quantitative inputs behind the paper's design decisions: the
power-law degree skew motivates the bypass links and degree-aware mapping,
and communication-imbalance metrics quantify what hashing-based mapping
suffers from.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .csr import CSRGraph

__all__ = [
    "degree_histogram",
    "power_law_exponent",
    "gini_coefficient",
    "top_degree_vertices",
    "communication_imbalance",
    "DegreeSummary",
    "degree_summary",
]


@dataclass(frozen=True)
class DegreeSummary:
    """Summary of a degree distribution."""

    mean: float
    std: float
    maximum: int
    p50: float
    p90: float
    p99: float
    gini: float
    fitted_exponent: float


def degree_histogram(graph: CSRGraph, *, use_in_degrees: bool = False) -> np.ndarray:
    """Counts of vertices per degree value (index = degree)."""
    deg = graph.in_degrees if use_in_degrees else graph.degrees
    return np.bincount(deg)


def power_law_exponent(graph: CSRGraph, *, dmin: int = 2) -> float:
    """Maximum-likelihood (Hill) estimate of the degree-tail exponent.

    alpha = 1 + n / sum(ln(d_i / (dmin - 0.5))) over degrees >= dmin.
    Returns ``nan`` when the graph has no tail to fit.
    """
    deg = graph.degrees
    tail = deg[deg >= dmin].astype(np.float64)
    if tail.size < 2:
        return float("nan")
    return float(1.0 + tail.size / np.log(tail / (dmin - 0.5)).sum())


def gini_coefficient(values: np.ndarray) -> float:
    """Gini coefficient of a non-negative array (0 = equal, ->1 = skewed)."""
    v = np.sort(np.asarray(values, dtype=np.float64))
    if v.size == 0:
        return 0.0
    if np.any(v < 0):
        raise ValueError("values must be non-negative")
    total = v.sum()
    if total == 0:
        return 0.0
    n = v.size
    cum = np.cumsum(v)
    # Standard formula: G = (n + 1 - 2 * sum(cum) / total) / n
    return float((n + 1 - 2.0 * cum.sum() / total) / n)


def top_degree_vertices(graph: CSRGraph, k: int, *, use_in_degrees: bool = False) -> np.ndarray:
    """Ids of the ``k`` highest-degree vertices, sorted by degree descending.

    Ties are broken by vertex id (ascending) so the result is deterministic —
    the degree-aware mapper depends on this ordering.
    """
    if k < 0:
        raise ValueError("k must be non-negative")
    deg = graph.in_degrees if use_in_degrees else graph.degrees
    k = min(k, deg.size)
    if k == 0:
        return np.empty(0, dtype=np.int64)
    order = np.lexsort((np.arange(deg.size), -deg))
    return order[:k].astype(np.int64)


def communication_imbalance(loads: np.ndarray) -> float:
    """Max/mean load ratio across PEs (1.0 = perfectly balanced).

    This is the metric the degree-aware mapping targets: hashing mapping
    can land several hubs on one row, spiking its row load.
    """
    loads = np.asarray(loads, dtype=np.float64)
    if loads.size == 0 or loads.sum() == 0:
        return 1.0
    return float(loads.max() / loads.mean())


def degree_summary(graph: CSRGraph) -> DegreeSummary:
    """Convenience bundle of the statistics the controller logs per graph."""
    deg = graph.degrees.astype(np.float64)
    return DegreeSummary(
        mean=float(deg.mean()),
        std=float(deg.std()),
        maximum=int(deg.max()) if deg.size else 0,
        p50=float(np.percentile(deg, 50)) if deg.size else 0.0,
        p90=float(np.percentile(deg, 90)) if deg.size else 0.0,
        p99=float(np.percentile(deg, 99)) if deg.size else 0.0,
        gini=gini_coefficient(deg),
        fitted_exponent=power_law_exponent(graph),
    )
