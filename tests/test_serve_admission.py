"""Tests for the bounded admission controller and drain lifecycle."""

import asyncio

import pytest

from repro.serve.admission import AdmissionController


class TestBudget:
    def test_admits_up_to_depth_then_sheds(self):
        ctl = AdmissionController(max_pending=2)
        assert ctl.try_acquire()
        assert ctl.try_acquire()
        assert not ctl.try_acquire()  # full → shed
        assert ctl.stats.admitted == 2
        assert ctl.stats.shed == 1
        assert ctl.in_flight == 2

    def test_release_frees_a_slot(self):
        ctl = AdmissionController(max_pending=1)
        assert ctl.try_acquire()
        assert not ctl.try_acquire()
        ctl.release()
        assert ctl.try_acquire()
        assert ctl.stats.completed == 1

    def test_unmatched_release_raises(self):
        with pytest.raises(RuntimeError):
            AdmissionController().release()

    def test_rejects_nonpositive_depth(self):
        with pytest.raises(ValueError):
            AdmissionController(max_pending=0)


class TestDrain:
    def test_draining_rejects_new_work(self):
        ctl = AdmissionController(max_pending=4)
        ctl.begin_drain()
        assert not ctl.try_acquire()
        assert ctl.stats.rejected_draining == 1
        assert ctl.stats.shed == 0  # distinct counter from load shedding

    def test_wait_drained_immediate_when_idle(self):
        ctl = AdmissionController()

        async def run():
            return await ctl.wait_drained(timeout=0.1)

        assert asyncio.run(run()) is True

    def test_wait_drained_completes_on_last_release(self):
        ctl = AdmissionController()
        assert ctl.try_acquire()

        async def run():
            async def finish_later():
                await asyncio.sleep(0.02)
                ctl.release()

            task = asyncio.ensure_future(finish_later())
            drained = await ctl.wait_drained(timeout=2.0)
            await task
            return drained

        assert asyncio.run(run()) is True

    def test_wait_drained_times_out(self):
        ctl = AdmissionController()
        assert ctl.try_acquire()  # never released

        async def run():
            return await ctl.wait_drained(timeout=0.05)

        assert asyncio.run(run()) is False

    def test_snapshot_shape(self):
        ctl = AdmissionController(max_pending=3)
        ctl.try_acquire()
        snap = ctl.snapshot()
        assert snap["max_pending"] == 3
        assert snap["in_flight"] == 1
        assert snap["draining"] is False
        assert snap["admitted"] == 1
