"""CI smoke test for `repro serve`.

Boots the real server as a subprocess, drives it with the resilient
client — concurrent cold requests (single-flight), warm cache hits with
a latency bound, overload shedding — exports the request traces as a
Chrome ``trace.json`` (validated: well-formed events, at least one
complete request tree), then checks the SIGTERM drain contract and
writes the final ``/stats`` snapshot to SERVE_STATS.json.  Both JSON
files are uploaded as CI artifacts.

Run from the repo root:

    PYTHONPATH=src python scripts/serve_smoke.py
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.serve.client import ServeClient, ServeError  # noqa: E402
from repro.telemetry.export import (  # noqa: E402
    trace_roots,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.telemetry.trace import Span  # noqa: E402

SMALL = {"dataset": "cora", "scale": 0.2, "hidden": 16, "layers": 1}
WARM_LATENCY_BUDGET = 2.0  # generous for shared CI runners


def check(condition: bool, label: str) -> None:
    status = "ok" if condition else "FAIL"
    print(f"smoke: {label}: {status}", flush=True)
    if not condition:
        raise SystemExit(f"smoke check failed: {label}")


def boot(cache_dir: str) -> tuple[subprocess.Popen, int]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    env["REPRO_CACHE_DIR"] = cache_dir
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--queue-depth", "16"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )
    deadline = time.monotonic() + 60.0
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line and process.poll() is not None:
            raise SystemExit("smoke: server died during startup")
        if "listening on" in line:
            return process, int(line.rsplit(":", 1)[1])
    raise SystemExit("smoke: server never reported its port")


def main() -> int:
    with tempfile.TemporaryDirectory() as cache_dir:
        process, port = boot(cache_dir)
        try:
            client = ServeClient("127.0.0.1", port, timeout=60.0)
            check(client.healthz()["status"] == "ok", "healthz")

            # Concurrent identical cold requests: exactly one execution.
            with ThreadPoolExecutor(4) as pool:
                payloads = list(
                    pool.map(lambda _: client.simulate(SMALL), range(4))
                )
            keys = {p["key"] for p in payloads}
            check(len(keys) == 1, "all requests produced one key")
            stats = client.stats()
            check(
                stats["batcher"]["jobs_run"] <= 1 + stats["cache"]["hits"],
                "concurrent identical requests ran once",
            )

            # Warm request: a cache hit, and fast.
            start = time.perf_counter()
            warm = client.simulate(SMALL)
            warm_latency = time.perf_counter() - start
            check(warm["cached"] is True, "warm request hit the cache")
            check(
                warm_latency < WARM_LATENCY_BUDGET,
                f"warm latency {warm_latency:.3f}s < {WARM_LATENCY_BUDGET}s",
            )

            # Distinct cold requests all land (retries absorb any sheds).
            with ThreadPoolExecutor(8) as pool:
                results = list(
                    pool.map(
                        lambda seed: client.simulate({**SMALL, "seed": seed}),
                        range(1, 9),
                    )
                )
            check(len(results) == 8, "burst of distinct requests completed")

            # Telemetry: /metrics is parseable Prometheus text, and the
            # recorded spans export as a valid Chrome trace holding at
            # least one complete request tree.
            metrics_text = client.metrics()
            check(
                "repro_requests_total" in metrics_text
                and "# TYPE" in metrics_text,
                "/metrics returns Prometheus text",
            )
            spans = [
                Span.from_dict(s) for s in client.trace().get("spans", [])
            ]
            check(len(spans) > 0, "server recorded spans")
            doc = write_chrome_trace("trace.json", spans)
            problems = validate_chrome_trace(doc)
            check(not problems, f"trace.json is valid ({problems[:3]})")
            trees = trace_roots(spans)
            check(
                len(trees) >= 1,
                f"trace.json holds ≥1 complete request tree ({len(trees)})",
            )
            print("smoke: wrote trace.json", flush=True)

            try:
                snapshot = client.stats()
            except ServeError:
                snapshot = stats
            Path("SERVE_STATS.json").write_text(
                json.dumps(snapshot, indent=2, sort_keys=True) + "\n"
            )
            print("smoke: wrote SERVE_STATS.json", flush=True)

            # SIGTERM drain: the process must exit 0.
            process.send_signal(signal.SIGTERM)
            exit_code = process.wait(timeout=60.0)
            check(exit_code == 0, "SIGTERM drained and exited 0")
        finally:
            if process.poll() is None:
                process.kill()
            process.stdout.close()
            process.wait()
    print("smoke: all checks passed", flush=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
