"""NoC characterization: latency-load curves and saturation points.

The standard network-on-chip evaluation the paper's NoC section implies:
sweep the injection rate under a synthetic traffic pattern, measure the
average packet latency, and find the saturation throughput.  Used by the
bypass/topology studies to show where the flexible configuration moves
the curve.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..arch.noc.network import NoCSimulator
from ..arch.noc.topology import FlexibleMeshTopology
from ..config import NoCConfig

__all__ = ["LoadPoint", "LatencyLoadCurve", "latency_load_curve"]

PATTERNS = ("uniform", "hotspot", "transpose")


@dataclass(frozen=True)
class LoadPoint:
    """One injection-rate sample."""

    injection_rate: float  # packets / node / cycle offered
    avg_latency: float
    delivered: int
    drain_cycles: int


@dataclass(frozen=True)
class LatencyLoadCurve:
    """Sweep result with saturation detection."""

    pattern: str
    points: tuple[LoadPoint, ...]

    @property
    def zero_load_latency(self) -> float:
        return self.points[0].avg_latency if self.points else 0.0

    def saturation_rate(self, *, factor: float = 3.0) -> float | None:
        """First injection rate whose latency exceeds ``factor`` × the
        zero-load latency; None if the sweep never saturates."""
        base = self.zero_load_latency
        for p in self.points[1:]:
            if p.avg_latency > factor * base:
                return p.injection_rate
        return None


def _destinations(
    pattern: str, sources: np.ndarray, k: int, rng: np.random.Generator
) -> np.ndarray:
    n = k * k
    if pattern == "uniform":
        dst = rng.integers(0, n, size=sources.size)
    elif pattern == "hotspot":
        # 30% of traffic converges on one node, the rest uniform.
        hot = n // 2
        dst = rng.integers(0, n, size=sources.size)
        dst[rng.random(sources.size) < 0.3] = hot
    elif pattern == "transpose":
        x, y = sources % k, sources // k
        dst = x * k + y
    else:
        raise ValueError(f"unknown pattern {pattern!r}; choose from {PATTERNS}")
    return dst


def latency_load_curve(
    topology: FlexibleMeshTopology,
    *,
    pattern: str = "uniform",
    rates: tuple[float, ...] = (0.005, 0.01, 0.02, 0.04, 0.08),
    warm_cycles: int = 200,
    packet_bytes: int = 32,
    config: NoCConfig | None = None,
    seed: int = 0,
) -> LatencyLoadCurve:
    """Open-loop injection sweep: Bernoulli arrivals per node per cycle
    over ``warm_cycles``, then drain and report mean latency."""
    if warm_cycles < 1:
        raise ValueError("warm_cycles must be >= 1")
    points = []
    n = topology.num_nodes
    k = topology.k
    for rate in rates:
        if not 0 < rate <= 1:
            raise ValueError("rates must be in (0, 1]")
        rng = np.random.default_rng(seed)
        sim = NoCSimulator(topology, config)
        sim.refresh_configuration()
        for cycle in range(warm_cycles):
            fire = rng.random(n) < rate
            sources = np.nonzero(fire)[0]
            if sources.size == 0:
                sim.step()
                continue
            dsts = _destinations(pattern, sources, k, rng)
            for src, dst in zip(sources.tolist(), dsts.tolist()):
                if src != dst:
                    sim.inject(int(src), int(dst), packet_bytes)
            sim.step()
        stats = sim.run(max_cycles=500_000)
        points.append(
            LoadPoint(
                injection_rate=rate,
                avg_latency=stats.avg_packet_latency,
                delivered=stats.packets_delivered,
                drain_cycles=stats.cycles,
            )
        )
    return LatencyLoadCurve(pattern=pattern, points=tuple(points))
