"""Standard layer benchmarks behind ``repro bench``.

Runs the analytical tier's hot path (:meth:`AuroraSimulator.simulate_layer`)
over a fixed set of dataset workloads, measuring a **cold** call (all
memoization layers emptied) and a set of **warm** repeats, and writes the
result — together with the :data:`~repro.perf.instrumentation.PERF`
per-stage breakdown and cache counters — to a ``BENCH_<n>.json``
snapshot.  The snapshot is what the CI benchmark job archives and what
``docs/performance.md`` explains how to read.

Numbers in the snapshot are *wall-clock only*; the simulated results are
deterministic and independent of everything measured here (asserted by
``tests/test_determinism.py`` and the golden suite).
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import dataclass
from pathlib import Path

__all__ = ["BENCH_SCHEMA_VERSION", "BenchCase", "STANDARD_BENCHES", "run_benches", "write_bench_json"]

#: Bump when the snapshot layout changes incompatibly.
BENCH_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class BenchCase:
    """One standard workload: a model layer on a (scaled) dataset."""

    name: str
    dataset: str
    scale: float = 1.0
    model: str = "gcn"
    hidden: int = 64

    def label(self) -> str:
        return f"{self.model}/{self.dataset}@{self.scale:g}"


#: The standard benches ``repro bench`` runs, mirroring
#: ``benchmarks/test_simulator_performance.py``.
STANDARD_BENCHES: tuple[BenchCase, ...] = (
    BenchCase("cora", "cora", 1.0),
    BenchCase("citeseer", "citeseer", 1.0),
    BenchCase("pubmed", "pubmed", 0.5),
)


def clear_hot_path_caches() -> None:
    """Empty every memoization layer the hot path consults.

    Used before the cold measurement so it reflects a from-scratch run
    (the state a fresh process or a never-seen workload starts in).
    """
    from ..arch.noc.analytical import AnalyticalNoCModel
    from ..core.configuration import ConfigurationUnit
    from ..mapping.degree_aware import _zorder_nodes_cached
    from ..mapping.memo import clear_mapping_cache

    clear_mapping_cache()
    AnalyticalNoCModel._cache.clear()
    ConfigurationUnit._cache.clear()
    _zorder_nodes_cached.cache_clear()


def _run_case(case: BenchCase, repeat: int) -> dict:
    from ..core.simulator import AuroraSimulator
    from ..graphs.datasets import load_dataset
    from ..models.workload import LayerDims
    from ..models.zoo import get_model

    graph = load_dataset(case.dataset, scale=case.scale)
    model = get_model(case.model)
    dims = LayerDims(graph.num_features, case.hidden)

    clear_hot_path_caches()
    sim = AuroraSimulator()
    t0 = time.perf_counter()
    result = sim.simulate_layer(model, graph, dims)
    cold = time.perf_counter() - t0

    warm: list[float] = []
    for _ in range(max(1, repeat)):
        t0 = time.perf_counter()
        again = sim.simulate_layer(model, graph, dims)
        warm.append(time.perf_counter() - t0)
        if again.to_dict() != result.to_dict():  # pragma: no cover
            raise AssertionError(f"non-deterministic bench result for {case.label()}")

    return {
        "label": case.label(),
        "dataset": case.dataset,
        "scale": case.scale,
        "model": case.model,
        "hidden": case.hidden,
        "num_vertices": graph.num_vertices,
        "num_edges": graph.num_edges,
        "cold_seconds": cold,
        "warm_seconds": warm,
        "warm_mean_seconds": sum(warm) / len(warm),
        "warm_min_seconds": min(warm),
        "total_seconds_simulated": result.total_seconds,
    }


def run_benches(
    benches: tuple[BenchCase, ...] = STANDARD_BENCHES, *, repeat: int = 5
) -> dict:
    """Run the standard benches and return the snapshot dict."""
    from .instrumentation import PERF

    PERF.reset()
    wall_start = time.perf_counter()
    results = {case.name: _run_case(case, repeat) for case in benches}
    wall = time.perf_counter() - wall_start
    perf = PERF.snapshot()
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "repeat": repeat,
        "wall_seconds": wall,
        "benches": results,
        "stages": perf["stages"],
        "counters": perf["counters"],
        "environment": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "machine": platform.machine(),
        },
    }


def write_bench_json(
    path: str | Path,
    benches: tuple[BenchCase, ...] = STANDARD_BENCHES,
    *,
    repeat: int = 5,
) -> dict:
    """Run the benches and write the snapshot to ``path``; returns it."""
    snapshot = run_benches(benches, repeat=repeat)
    Path(path).write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
    return snapshot
