"""Cycle-tier throughput bench: event engine vs the retained reference.

PR 3's tentpole rebuilt the flit-level simulators as batched event
engines; the contract is a >=5x speedup on the standard pubmed cycle
tile (the BENCH_3.json workload) while staying bit-identical to the
reference implementations they replaced.  This module is the CI guard
on that contract.

The speedup assert is a *ratio* of two runs on the same machine, so it
is far less machine-sensitive than a wall-time bound — but shared
runners still jitter, so it too is relaxed by ``$REPRO_BENCH_SLACK``
(default 1.0; CI sets a larger factor).  ``repro bench --tier cycle``
/ ``BENCH_3.json`` is the instrument for real numbers.
"""

import os
import time

import pytest

from repro.perf.bench import (
    CYCLE_BENCHES,
    _run_cycle_case,
    clear_hot_path_caches,
)

#: Multiplier on every wall-time bound; CI sets e.g. REPRO_BENCH_SLACK=4.
SLACK = float(os.environ.get("REPRO_BENCH_SLACK", "1.0"))

#: Locked contract from ISSUE/BENCH_3: event warm-min vs one reference
#: run on the pubmed tile.  Measured 5.7-6.1x on the development box.
MIN_SPEEDUP = 5.0


@pytest.fixture(scope="module")
def pubmed_tile_case():
    return CYCLE_BENCHES[0]


def test_event_engine_speedup_vs_reference(pubmed_tile_case):
    """One bench pass (cold + 2 warm + reference) with identity checks
    built into ``_run_cycle_case`` — diverging results raise before any
    timing assert can pass."""
    bench = _run_cycle_case(pubmed_tile_case, repeat=2)
    assert bench["speedup_vs_reference"] >= MIN_SPEEDUP / SLACK
    # Absolute sanity: the tile itself must be the heavy standard one.
    assert bench["packets"] > 5_000
    assert bench["noc_cycles"] > 20_000


def test_event_engine_tile_wall_time():
    """A small calibration-sized tile stays interactive on the event
    engine — the latency calibration sweeps actually feel."""
    from repro.config import small_config
    from repro.core.cycle_engine import CycleTileEngine
    from repro.graphs.generators import power_law_graph
    from repro.models.workload import LayerDims
    from repro.models.zoo import get_model

    clear_hot_path_caches()
    graph = power_law_graph(120, 700, num_features=16, seed=1)
    engine = CycleTileEngine(small_config(8), noc_engine="event")
    model = get_model("gin")
    dims = LayerDims(16, 8)
    engine.run_tile(model, graph, dims)  # warm route memo + mapping memo
    t0 = time.perf_counter()
    engine.run_tile(model, graph, dims)
    assert time.perf_counter() - t0 < 0.5 * SLACK
