"""Memoized tile mapping shared by the analytical and cycle tiers.

Both :class:`repro.core.simulator.AuroraSimulator` and
:class:`repro.core.cycle_engine.CycleTileEngine` map tiles with identical
inputs whenever tile structures repeat (regular generators, repeated
layers of one graph, calibration runs re-executing the same tile).  The
mapping algorithms are pure functions of ``(subgraph content, region,
policy, capacity)``, so their results are cached in a bounded LRU keyed
by :attr:`repro.graphs.csr.CSRGraph.content_key`.

:class:`~repro.mapping.base.MappingResult` is frozen and treated as
immutable by every consumer (its ``vertex_to_pe`` array is only read),
so sharing one instance across cache hits is safe.
"""

from __future__ import annotations

from collections import OrderedDict

from ..graphs.csr import CSRGraph
from ..perf import PERF
from .base import MappingResult, PERegion
from .degree_aware import degree_aware_map
from .hashing import hashing_map

__all__ = ["map_tile", "clear_mapping_cache", "MAPPING_CACHE_MAX"]

#: Bounded LRU size; tiles are small and MappingResults lighter still,
#: but sweeps touch many graphs so the cache must not grow unbounded.
MAPPING_CACHE_MAX = 512

_CACHE: OrderedDict[tuple, MappingResult] = OrderedDict()


def map_tile(
    sub: CSRGraph,
    region: PERegion,
    policy: str,
    *,
    pe_vertex_capacity: int | None = None,
) -> MappingResult:
    """Map ``sub`` onto ``region`` under ``policy``, with an LRU memo.

    ``pe_vertex_capacity`` defaults to the ceiling of vertices over the
    region's PEs — the capacity both simulator tiers use.
    """
    if policy not in ("degree-aware", "hashing"):
        raise ValueError("policy must be 'degree-aware' or 'hashing'")
    cap = (
        pe_vertex_capacity
        if pe_vertex_capacity is not None
        else max(1, -(-sub.num_vertices // region.num_pes))
    )
    key = (sub.content_key, region, policy, cap)
    hit = _CACHE.get(key)
    if hit is not None:
        _CACHE.move_to_end(key)
        PERF.incr("mapping.tile_cache_hit")
        return hit
    PERF.incr("mapping.tile_cache_miss")
    with PERF.timer("mapping"):
        if policy == "degree-aware":
            result = degree_aware_map(sub, region, pe_vertex_capacity=cap)
        else:
            result = hashing_map(sub, region, pe_vertex_capacity=cap)
    _CACHE[key] = result
    if len(_CACHE) > MAPPING_CACHE_MAX:
        _CACHE.popitem(last=False)
    return result


def clear_mapping_cache() -> None:
    """Drop all memoized tile mappings (tests, memory pressure)."""
    _CACHE.clear()
