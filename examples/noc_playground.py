#!/usr/bin/env python3
"""Explore the flexible NoC at its three fidelities.

Walks one traffic scenario — a high-degree vertex's neighborhood
converging on its PE — through the analytical counting model, the lumped
flit simulator, and the detailed VC-router simulator, with and without
the bypass configuration the degree-aware mapper would install.  Also
runs the deadlock checker on each configuration and a tree-multicast
broadcast for contrast.

Run:  python examples/noc_playground.py
"""

import numpy as np

from repro.arch.noc import (
    AnalyticalNoCModel,
    BypassSegment,
    FlexibleMeshTopology,
    MulticastSimulator,
    NoCSimulator,
    TrafficMatrix,
    VCNetworkSimulator,
    check_deadlock_freedom,
)
from repro.eval import format_table

K = 8
HUB = 36  # node (4, 4)


def hub_flows(payload: int = 64):
    return np.array(
        [[src, HUB, payload] for src in range(K * K) if src != HUB],
        dtype=np.int64,
    )


def configured_topology() -> FlexibleMeshTopology:
    topo = FlexibleMeshTopology(K)
    topo.add_bypass_segment(BypassSegment("row", 4, 0, K - 1))
    topo.add_bypass_segment(BypassSegment("col", 4, 0, K - 1))
    return topo


def main() -> None:
    rows = []
    for label, topo, boost in (
        ("plain mesh", FlexibleMeshTopology(K), ()),
        ("mesh + hub bypass", configured_topology(), (HUB,)),
    ):
        flows = hub_flows()
        # Tier 1: analytical counting model.
        traffic = TrafficMatrix.from_flows(flows, 16, K)
        analytical = AnalyticalNoCModel(topo).evaluate(
            traffic, boost_nodes=boost, boost_factor=4.0
        )
        # Tier 2: lumped flit simulator.
        lumped = NoCSimulator(topo)
        for src, dst, nbytes in flows.tolist():
            lumped.inject(src, dst, nbytes)
        t_lumped = lumped.run().cycles
        # Tier 3: detailed VC-router simulator.
        detailed = VCNetworkSimulator(topo)
        for src, dst, nbytes in flows.tolist():
            detailed.inject(src, dst, nbytes)
        t_detailed = detailed.run()
        # Safety: channel-dependency analysis of the configuration.
        report = check_deadlock_freedom(topo)
        rows.append(
            [
                label,
                f"{analytical.drain_cycles:,}",
                f"{t_lumped:,}",
                f"{t_detailed:,}",
                "acyclic" if report.acyclic else "ring-safe",
            ]
        )
    print(
        format_table(
            ["configuration", "analytical", "lumped flit", "VC router", "CDG"],
            rows,
            title=f"Hub convergence at node {HUB} (63 senders, 4 flits each)",
        )
    )
    print(
        "\nnote: the three tiers agree on the plain mesh; with the bypass "
        "the analytical model credits the S_PE's extra ejection bandwidth "
        "(local port + bypass endpoints + row-mate merging), which the "
        "single-local-port flit simulators deliberately do not model — "
        "the fidelity gap experiment E14 quantifies."
    )

    # Contrast: the hub broadcasting its feature — tree multicast.
    mc = MulticastSimulator(FlexibleMeshTopology(K))
    dsts = [n for n in range(K * K) if n != HUB]
    tree = mc.inject(HUB, dsts, 64)
    stats = mc.run()
    print(
        f"\nmulticast broadcast from the hub: {stats.cycles} cycles, "
        f"{stats.link_traversals} link traversals over a {tree.num_edges}-edge "
        f"tree (unicast would traverse "
        f"{sum(abs(n % K - 4) + abs(n // K - 4) for n in dsts) * 4} links)"
    )


if __name__ == "__main__":
    main()
