"""ReGNN (Chen et al., HPCA 2022) baseline model.

ReGNN eliminates redundant neighborhood computation: overlapping
neighbor sets are detected dynamically and their partial aggregations
reused, improving both op count and data locality.  Published properties
this model encodes:

* **Redundancy-eliminated message passing** — a substantial fraction of
  aggregation work is removed (``redundancy_elimination = 0.35``) and
  locality improves (``feature_reuse = 0.75``).
* **Heterogeneous engines with a fixed split** between the
  redundancy/aggregation datapath and the neural-update datapath
  (``engine_split = 0.25``); the separation of graph and neural
  operations restricts it (paper §I: "its performance is also restricted
  by the separate executions of graph and neural operations").
* **Message passing with edge support but no edge embeddings**
  (Table I): edge-update primitives execute natively
  (``supports_edge_update = True``) and A-GNNs are covered, full MP-GNNs
  (vector edge features) are not.
* Fixed crossbar-style interconnect, partial hub mitigation from the
  redundancy combining tree (``hub_relief = 0.2``).
"""

from __future__ import annotations

from .base import BaselineAccelerator, BaselineTraits

__all__ = ["REGNN_TRAITS", "ReGNN"]

REGNN_TRAITS = BaselineTraits(
    name="regnn",
    supports_c_gnn=True,
    supports_a_gnn=True,
    supports_mp_gnn=False,
    flexible_pe=False,
    flexible_dataflow=True,  # Table I: partial
    flexible_noc=False,
    message_passing=True,
    supports_edge_update=True,
    engine_split=0.25,
    runtime_rebalancing=False,
    redundancy_elimination=0.3,
    phase_pipelined=True,
    imbalance_sensitivity=0.2,
    feature_reuse=0.75,
    weight_reload_per_tile=False,
    interphase_spill=True,
    buffer_traffic_factor=0.75,
    traffic_factor=0.65,
    comm_ports=230,
    comm_hops=1.0,
    hub_relief=0.2,
    comm_service_cycles=4.6,
)


class ReGNN(BaselineAccelerator):
    """ReGNN scaled to Aurora's multiplier/bandwidth/storage budget."""

    def __init__(self, config=None, energy_table=None) -> None:
        super().__init__(REGNN_TRAITS, config, energy_table)
