"""Schema-versioned JSONL session recording with rotation.

A :class:`SessionRecorder` is an :class:`~.events.EventSink` that
appends every event as one JSON line.  Each segment opens with a
``session.meta`` header line carrying the schema version, so a reader
can refuse a file written by an incompatible future format instead of
misreading it.  When a segment passes ``max_bytes`` the file rotates
shift-style (``path`` → ``path.1`` → ``path.2`` …) keeping at most
``max_segments`` historical segments — a long soak test cannot fill
the disk.

:func:`read_session` is the tolerant reader: it walks segments oldest
first and skips a truncated tail line (the normal state of a recording
cut by SIGKILL) rather than failing the whole replay.
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

from .events import SCHEMA_VERSION, Event, EventSink

__all__ = ["SessionRecorder", "read_session"]


class SessionRecorder(EventSink):
    """Append observe events to a rotating JSONL log."""

    def __init__(
        self,
        path,
        *,
        max_bytes: int = 32 << 20,
        max_segments: int = 3,
        source: str = "serve",
        flush_every: int = 32,
    ) -> None:
        if max_bytes < 1024:
            raise ValueError("max_bytes must be >= 1024")
        if max_segments < 0:
            raise ValueError("max_segments must be >= 0")
        self.path = Path(path)
        self.max_bytes = max_bytes
        self.max_segments = max_segments
        self.source = source
        self.flush_every = max(1, flush_every)
        self._lock = threading.Lock()
        self._file = None
        self._bytes = 0
        self._unflushed = 0
        self.events_recorded = 0
        self.bytes_written = 0
        self.rotations = 0

    # -- sink side ------------------------------------------------------
    def emit(self, event: Event) -> None:
        encoded = (event.to_json() + "\n").encode("utf-8")
        with self._lock:
            if self._file is None:
                self._open()
            elif self._bytes + len(encoded) > self.max_bytes:
                self._rotate()
            self._file.write(encoded)
            self._bytes += len(encoded)
            self.bytes_written += len(encoded)
            self.events_recorded += 1
            self._unflushed += 1
            if self._unflushed >= self.flush_every:
                self._file.flush()
                self._unflushed = 0

    def flush(self) -> None:
        with self._lock:
            if self._file is not None:
                self._file.flush()
                self._unflushed = 0

    def close(self) -> None:
        with self._lock:
            if self._file is not None:
                self._file.flush()
                self._file.close()
                self._file = None

    # -- segment management (lock held) ---------------------------------
    def _open(self) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file = open(self.path, "ab")
        self._bytes = self._file.tell()
        if self._bytes == 0:
            self._write_meta()

    def _write_meta(self) -> None:
        meta = {
            "seq": 0,
            "ts": time.time(),
            "type": "session.meta",
            "data": {
                "schema": SCHEMA_VERSION,
                "source": self.source,
                "pid": os.getpid(),
            },
        }
        encoded = (json.dumps(meta, separators=(",", ":")) + "\n").encode()
        self._file.write(encoded)
        self._bytes += len(encoded)
        self.bytes_written += len(encoded)

    def _rotate(self) -> None:
        self._file.flush()
        self._file.close()
        self._file = None
        if self.max_segments == 0:
            self.path.unlink(missing_ok=True)
        else:
            oldest = self.path.with_name(f"{self.path.name}.{self.max_segments}")
            oldest.unlink(missing_ok=True)
            for n in range(self.max_segments - 1, 0, -1):
                src = self.path.with_name(f"{self.path.name}.{n}")
                if src.exists():
                    src.rename(self.path.with_name(f"{self.path.name}.{n + 1}"))
            self.path.rename(self.path.with_name(f"{self.path.name}.1"))
        self.rotations += 1
        self._file = open(self.path, "ab")
        self._bytes = 0
        self._unflushed = 0
        self._write_meta()

    # -- stats ----------------------------------------------------------
    def segments(self) -> list[Path]:
        """Existing segment paths, oldest first (the read order)."""
        found = []
        for n in range(self.max_segments, 0, -1):
            candidate = self.path.with_name(f"{self.path.name}.{n}")
            if candidate.exists():
                found.append(candidate)
        if self.path.exists():
            found.append(self.path)
        return found

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "path": str(self.path),
                "events_recorded": self.events_recorded,
                "bytes_written": self.bytes_written,
                "rotations": self.rotations,
                "segments": len(self.segments()),
                "max_bytes": self.max_bytes,
                "max_segments": self.max_segments,
            }


def read_session(
    path, *, include_meta: bool = False, max_segments: int = 16
) -> tuple[list[Event], dict]:
    """Read a recorded session back as events, oldest segment first.

    Returns ``(events, info)`` where ``info`` reports the schema
    version seen, the segment count, and how many lines were skipped
    (a truncated tail from a hard kill, or garbage).  Raises
    ``ValueError`` only for a schema version this reader does not
    understand — everything else degrades to ``skipped`` counts.
    """
    path = Path(path)
    segments = []
    for n in range(max_segments, 0, -1):
        candidate = path.with_name(f"{path.name}.{n}")
        if candidate.exists():
            segments.append(candidate)
    if path.exists():
        segments.append(path)
    if not segments:
        raise FileNotFoundError(f"no session recording at {path}")

    events: list[Event] = []
    skipped = 0
    schema = None
    for segment in segments:
        with open(segment, "rb") as handle:
            for raw in handle:
                try:
                    data = json.loads(raw)
                except json.JSONDecodeError:
                    skipped += 1  # truncated tail or corruption
                    continue
                if not isinstance(data, dict) or "type" not in data:
                    skipped += 1
                    continue
                if data["type"] == "session.meta":
                    seen = data.get("data", {}).get("schema")
                    if seen is not None and seen > SCHEMA_VERSION:
                        raise ValueError(
                            f"recording schema v{seen} is newer than this "
                            f"reader (v{SCHEMA_VERSION})"
                        )
                    schema = seen
                    if not include_meta:
                        continue
                try:
                    events.append(Event.from_dict(data))
                except (KeyError, TypeError, ValueError):
                    skipped += 1
    return events, {
        "schema": schema,
        "segments": len(segments),
        "events": len(events),
        "skipped": skipped,
    }
