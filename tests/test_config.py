"""Unit tests for the hardware configuration."""

import pytest

from repro.config import (
    AcceleratorConfig,
    DRAMConfig,
    NoCConfig,
    default_config,
    small_config,
)


class TestDefaults:
    def test_paper_configuration(self):
        cfg = default_config()
        assert cfg.array_k == 32
        assert cfg.num_pes == 1024
        assert cfg.frequency_hz == 700e6
        assert cfg.pe_buffer_bytes == 100 * 1024

    def test_onchip_capacity_about_100mb(self):
        cfg = default_config()
        assert cfg.onchip_bytes == 1024 * 100 * 1024  # 100 MiB

    def test_reconfiguration_cycles(self):
        assert default_config().reconfiguration_cycles == 63  # 2*32-1
        assert small_config(8).reconfiguration_cycles == 15

    def test_peak_flops(self):
        cfg = default_config()
        assert cfg.peak_flops == 1024 * 32 * 700e6

    def test_total_multipliers(self):
        assert default_config().total_multipliers == 1024 * 16


class TestValidation:
    def test_array_k(self):
        with pytest.raises(ValueError):
            AcceleratorConfig(array_k=1)

    def test_frequency(self):
        with pytest.raises(ValueError):
            AcceleratorConfig(frequency_hz=0)

    def test_buffer_floor(self):
        with pytest.raises(ValueError):
            AcceleratorConfig(pe_buffer_bytes=512)

    def test_precision(self):
        with pytest.raises(ValueError):
            AcceleratorConfig(bytes_per_value=2)

    def test_noc_validation(self):
        with pytest.raises(ValueError):
            NoCConfig(flit_bytes=0)
        with pytest.raises(ValueError):
            NoCConfig(vc_depth=0)

    def test_dram_validation(self):
        with pytest.raises(ValueError):
            DRAMConfig(bandwidth_bytes_per_sec=0)
        with pytest.raises(ValueError):
            DRAMConfig(row_buffer_bytes=32, burst_bytes=64)


class TestHelpers:
    def test_cycle_time_roundtrip(self):
        cfg = default_config()
        assert cfg.seconds_to_cycles(cfg.cycles_to_seconds(1234)) == pytest.approx(
            1234
        )

    def test_scaled_copy(self):
        cfg = default_config().scaled(array_k=16)
        assert cfg.array_k == 16
        assert cfg.frequency_hz == 700e6  # untouched fields preserved
        assert default_config().array_k == 32  # original immutable

    def test_small_config(self):
        cfg = small_config(8)
        assert cfg.num_pes == 64
