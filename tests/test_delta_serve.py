"""The incremental-simulation surface: ``{base, mutations}`` request
canonicalization, tile-reuse counters in responses and ``/stats``, and
the ``repro mutate`` / ``repro cache stats`` CLI paths.
"""

import json

import pytest

from repro.cli import main
from repro.graphs.datasets import load_dataset
from repro.graphs.delta import EdgeDelta, rewire_delta
from repro.runtime import ResultCache, SimJob, job_key, run_jobs
from repro.runtime.jobs import ENV_TILE_CACHE_DIR
from repro.runtime.runner import JobOutcome
from repro.serve.client import ServeClient
from repro.serve.protocol import (
    ProtocolError,
    encode_outcome,
    parse_simulation_request,
)
from repro.serve.server import ServerThread, SimulationService

SMALL = {"dataset": "cora", "scale": 0.1, "hidden": 8, "layers": 1}


def _small_delta() -> EdgeDelta:
    graph = load_dataset("cora", scale=0.1, seed=7)
    return rewire_delta(graph, [0, 5], seed=3)


class TestRequestCanonicalization:
    def test_incremental_form_equals_flat_form(self):
        delta = _small_delta()
        flat = dict(SMALL, mutations=[delta.as_dict()])
        nested = {"base": dict(SMALL), "mutations": [delta.as_dict()]}
        a = parse_simulation_request(flat)
        b = parse_simulation_request(nested)
        assert a == b
        assert job_key(a) == job_key(b)
        assert a.mutations is not None

    def test_dict_and_object_mutation_spellings_hash_identically(self):
        delta = _small_delta()
        parsed = parse_simulation_request(
            {"base": dict(SMALL), "mutations": [delta.as_dict()]}
        )
        direct = SimJob(
            dataset="cora", scale=0.1, hidden=8, num_layers=1,
            mutations=(delta,),
        )
        assert job_key(parsed) == job_key(direct)

    def test_empty_mutation_chain_canonicalizes_to_none(self):
        job = parse_simulation_request({"base": dict(SMALL), "mutations": []})
        assert job.mutations is None
        assert job_key(job) == job_key(parse_simulation_request(dict(SMALL)))

    def test_base_without_mutations_is_plain_job(self):
        job = parse_simulation_request({"base": dict(SMALL)})
        assert job.mutations is None


class TestProtocolRejections:
    def test_extra_field_beside_base(self):
        with pytest.raises(ProtocolError, match="only 'base' and 'mutations'"):
            parse_simulation_request(
                {"base": dict(SMALL), "mutations": [], "hidden": 8}
            )

    def test_base_must_be_object(self):
        with pytest.raises(ProtocolError, match="'base' must be a JSON object"):
            parse_simulation_request({"base": [1, 2]})

    def test_mutations_inside_base_rejected(self):
        with pytest.raises(ProtocolError, match="beside 'base'"):
            parse_simulation_request(
                {"base": dict(SMALL, mutations=[])}
            )

    def test_malformed_mutation_entry_is_a_protocol_error(self):
        with pytest.raises(ProtocolError):
            parse_simulation_request(
                {"base": dict(SMALL), "mutations": [{"bogus": 1}]}
            )


class TestEncodeOutcome:
    def _outcome(self, exec_meta):
        job = SimJob(dataset="cora", scale=0.1)
        return JobOutcome(
            job=job, key=job.key, result=None, seconds=0.1,
            exec_meta=exec_meta,
        )

    def test_tile_counters_present_with_exec_meta(self):
        meta = {"tiles": 5, "tiles_reused": 3, "tiles_recomputed": 2}
        payload = encode_outcome(
            self._outcome(meta), joined=False, latency_seconds=0.2
        )
        assert payload["tiles_reused"] == 3
        assert payload["tiles_recomputed"] == 2

    def test_tile_counters_absent_without_exec_meta(self):
        payload = encode_outcome(
            self._outcome(None), joined=False, latency_seconds=0.2
        )
        assert "tiles_reused" not in payload
        assert "tiles_recomputed" not in payload


class TestServiceStats:
    def test_no_tile_cache_and_zero_counters_reports_none(self):
        service = SimulationService()
        assert service.stats()["tile_cache"] is None

    def test_counters_alone_surface_without_tile_cache(self):
        service = SimulationService()
        service.tile_counters["tiles_reused"] += 4
        section = service.stats()["tile_cache"]
        assert section == {"tiles_reused": 4, "tiles_recomputed": 0}

    def test_tile_cache_adds_stats_entries_bytes(self, tmp_path):
        tile_cache = ResultCache(tmp_path / "tiles")
        tile_cache.store("k0", {"tiles": []})
        service = SimulationService(tile_cache=tile_cache)
        section = service.stats()["tile_cache"]
        assert section["tiles_reused"] == 0
        assert section["tiles_recomputed"] == 0
        assert section["entries"] == 1
        assert section["bytes"] > 0
        assert "stats" in section


class TestServedTileReuse:
    """Responses and /stats carry per-tile reuse through a live server."""

    def test_counters_accumulate_across_requests(self, tmp_path, monkeypatch):
        from repro.perf.bench import clear_hot_path_caches

        root = tmp_path / "tiles"
        monkeypatch.setenv(ENV_TILE_CACHE_DIR, str(root))
        clear_hot_path_caches()

        async def runner(jobs):
            import asyncio

            return await asyncio.to_thread(lambda: run_jobs(jobs))

        service = SimulationService(
            runner=runner, batch_window=0.0, tile_cache=ResultCache(root)
        )
        with ServerThread(service) as thread:
            client = ServeClient(*thread.address, timeout=60.0)
            first = client.simulate(SMALL)
            assert first["tiles_recomputed"] > 0
            assert first["tiles_reused"] == 0
            second = client.simulate(dict(SMALL, hidden=16))
            assert second["tiles_reused"] > 0
            assert second["tiles_recomputed"] == 0

            section = service.stats()["tile_cache"]
            assert section["tiles_recomputed"] == first["tiles_recomputed"]
            assert section["tiles_reused"] == second["tiles_reused"]
            assert section["entries"] > 0
        clear_hot_path_caches()


class TestMutateCLI:
    def test_json_payload_round_trips_through_protocol(self, capsys):
        rc = main([
            "mutate", "--dataset", "cora", "--scale", "0.2", "--json",
        ])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {"base", "mutations"}
        job = parse_simulation_request(payload)
        assert job.dataset == "cora"
        assert job.mutations is not None
        assert job.mutations[0].num_edits > 0

    def test_output_file_matches_stdout_payload(self, tmp_path, capsys):
        out = tmp_path / "req.json"
        rc = main([
            "mutate", "--dataset", "cora", "--scale", "0.2",
            "--json", "--output", str(out),
        ])
        assert rc == 0
        printed = json.loads(capsys.readouterr().out)
        assert json.loads(out.read_text()) == printed

    def test_human_summary_lines(self, capsys):
        rc = main(["mutate", "--dataset", "cora", "--scale", "0.2"])
        assert rc == 0
        text = capsys.readouterr().out
        assert "dataset" in text
        assert "tiles" in text
        assert "delta key" in text

    def test_bad_dirty_fraction_is_usage_error(self, capsys):
        rc = main([
            "mutate", "--dataset", "cora", "--dirty-fraction", "1.5",
        ])
        assert rc == 2
        assert "dirty-fraction" in capsys.readouterr().err


class TestCacheStatsCLI:
    def test_tiles_sub_cache_section(self, tmp_path, capsys):
        root = tmp_path / "cache"
        ResultCache(root)  # materialize the main cache root
        tiles = ResultCache(root / "tiles")
        tiles.store("k0", {"tiles": []})
        rc = main(["cache", "--dir", str(root), "stats"])
        assert rc == 0
        text = capsys.readouterr().out
        assert "tiles sub-cache" in text
        assert "entries   : 1" in text

    def test_no_tiles_section_without_sub_cache(self, tmp_path, capsys):
        root = tmp_path / "cache"
        ResultCache(root)
        rc = main(["cache", "--dir", str(root), "stats"])
        assert rc == 0
        assert "tiles sub-cache" not in capsys.readouterr().out
