"""E10 — ablation: Algorithm 2's balanced split vs a fixed 50/50 split."""

from conftest import emit

from repro.eval import run_experiment


def test_ablation_partition(benchmark):
    result = benchmark(run_experiment, "E10")
    emit(result.text)
    for model, row in result.data.items():
        assert row["gain_vs_half_split"] >= 1.0, model
        assert row["imbalance"] < 0.05, model  # near-perfect balance
    # GCN is aggregation-light: A gets few PEs; G-GCN is edge-heavy: many.
    assert result.data["gcn"]["a"] < result.data["ggcn"]["a"]
