"""Simulation job specs: frozen, hashable, content-addressable.

A :class:`SimJob` captures *everything* that determines a simulation's
outcome — model, dataset, scale, seed, layer dimensioning, accelerator,
mapping policy, hardware configuration, and (for sensitivity sweeps) a
fully perturbed baseline-traits record.  Because the simulators are
deterministic functions of that spec, a job's canonical content hash
(:func:`job_key`) addresses its result: two equal hashes mean equal
results, which is what the on-disk cache and the sweep deduplication in
:mod:`repro.runtime.runner` rely on.

``run_job``/``execute_job`` are module-level so ``ProcessPoolExecutor``
workers can pickle them by reference.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass

from ..baselines import BaselineAccelerator, BaselineTraits, make_baseline
from ..config import AcceleratorConfig, DRAMConfig, NoCConfig, default_config
from ..core.accelerator import layer_plan
from ..core.results import SimulationResult
from ..core.simulator import AuroraSimulator
from ..graphs.datasets import dataset_profile, load_dataset
from ..graphs.delta import EdgeDelta, apply_chain
from ..perf import PERF
from ..models.zoo import get_model

__all__ = [
    "SimJob",
    "job_key",
    "run_job",
    "execute_job",
    "take_exec_meta",
    "ENV_TILE_CACHE_DIR",
    "ENV_TILE_WORKERS",
]

#: Directory of the per-tile result cache the job runner should use.
#: Environment-propagated (rather than a parameter) so pool workers
#: executing pickled jobs inherit it from the serving parent.
ENV_TILE_CACHE_DIR = "REPRO_TILE_CACHE_DIR"

#: Intra-job tile fan-out width for the analytical simulator.
ENV_TILE_WORKERS = "REPRO_TILE_WORKERS"

#: Wire-format aliases the service and CLI accept (`layers` mirrors the
#: ``repro simulate --layers`` flag, ``device`` its ``--device``).
REQUEST_ALIASES = {"layers": "num_layers", "device": "accelerator"}

def _as_int(value) -> int:
    """Strict int coercion: ``2.0`` and ``"2"`` pass, ``2.7``/bools fail.

    Plain ``int()`` would silently truncate ``1.5`` (simulating a
    different job than requested) and accept ``true``/``false`` via
    bool's int subtyping; a malformed spec must be rejected instead.
    """
    if isinstance(value, bool):
        raise ValueError("booleans are not integers")
    if isinstance(value, float):
        if not value.is_integer():
            raise ValueError("value is not integral")
        return int(value)
    return int(value)


def _as_float(value) -> float:
    """Strict float coercion: rejects bools, accepts ints and numerals."""
    if isinstance(value, bool):
        raise ValueError("booleans are not numbers")
    return float(value)


#: Numeric coercions applied to loosely-typed request values so that
#: e.g. JSON ``"scale": 1`` and ``"scale": 1.0`` canonicalize to the
#: same job (and therefore the same content hash / cache entry); values
#: that would change meaning under coercion (``1.5`` for an int field,
#: ``true`` for any numeric field) are rejected, not truncated.
_REQUEST_COERCE = {
    "scale": ("float", _as_float),
    "hidden": ("int", _as_int),
    "num_layers": ("int", _as_int),
    "seed": ("int", _as_int),
}

#: Bump when the job schema or its execution semantics change in a way
#: that must invalidate previously cached results.
JOB_SCHEMA_VERSION = 1

MAPPING_POLICIES = ("degree-aware", "hashing")


@dataclass(frozen=True)
class SimJob:
    """One simulation point of a sweep, as pure data.

    ``accelerator`` is ``"aurora"`` or a baseline name accepted by
    :func:`repro.baselines.make_baseline`; ``baseline_traits`` overrides
    the registry with an explicit (possibly perturbed) traits record, as
    the sensitivity sweeps need.  ``scale_buffers`` reproduces the
    comparison harness's convention of shrinking the per-PE buffer with
    the dataset so tiling pressure matches the full-size run.
    """

    model: str = "gcn"
    dataset: str = "cora"
    accelerator: str = "aurora"
    scale: float = 1.0
    hidden: int = 64
    num_layers: int = 2
    seed: int = 7
    mapping: str = "degree-aware"
    strict: bool = False
    scale_buffers: bool = False
    config: AcceleratorConfig | None = None
    baseline_traits: BaselineTraits | None = None
    #: Ordered EdgeDelta chain applied over the loaded dataset before
    #: simulation — the ``{base, mutations}`` request form.  Canonical
    #: (each delta sorted/deduplicated, empty chain collapsed to None)
    #: so equivalent spellings share a content hash; the chain is part
    #: of :meth:`as_dict` and therefore of :func:`job_key`.
    mutations: tuple | None = None

    def __post_init__(self) -> None:
        if self.mapping not in MAPPING_POLICIES:
            raise ValueError(f"mapping must be one of {MAPPING_POLICIES}")
        if not (0.0 < self.scale <= 1.0):
            raise ValueError("scale must be in (0, 1]")
        if self.hidden < 1 or self.num_layers < 1:
            raise ValueError("hidden and num_layers must be >= 1")
        if self.mutations is not None:
            chain = tuple(
                d if isinstance(d, EdgeDelta) else EdgeDelta.from_dict(d)
                for d in self.mutations
            )
            object.__setattr__(self, "mutations", chain or None)

    # ------------------------------------------------------------------
    def as_dict(self) -> dict:
        """Canonical JSON-encodable form (basis of :func:`job_key`)."""
        return {
            "model": self.model,
            "dataset": self.dataset,
            "accelerator": self.accelerator,
            "scale": self.scale,
            "hidden": self.hidden,
            "num_layers": self.num_layers,
            "seed": self.seed,
            "mapping": self.mapping,
            "strict": self.strict,
            "scale_buffers": self.scale_buffers,
            "config": asdict(self.config) if self.config is not None else None,
            "baseline_traits": (
                asdict(self.baseline_traits)
                if self.baseline_traits is not None
                else None
            ),
            "mutations": (
                [d.as_dict() for d in self.mutations]
                if self.mutations is not None
                else None
            ),
        }

    @staticmethod
    def from_dict(data: dict) -> "SimJob":
        """Inverse of :meth:`as_dict`."""
        config = data.get("config")
        if config is not None:
            config = AcceleratorConfig(
                **{
                    **{k: v for k, v in config.items() if k not in ("noc", "dram")},
                    "noc": NoCConfig(**config["noc"]),
                    "dram": DRAMConfig(**config["dram"]),
                }
            )
        traits = data.get("baseline_traits")
        if traits is not None:
            traits = BaselineTraits(**traits)
        mutations = data.get("mutations")
        if mutations is not None:
            mutations = tuple(EdgeDelta.from_dict(d) for d in mutations)
        known = (
            "model", "dataset", "accelerator", "scale", "hidden",
            "num_layers", "seed", "mapping", "strict", "scale_buffers",
        )
        return SimJob(
            **{k: data[k] for k in known if k in data},
            config=config,
            baseline_traits=traits,
            mutations=mutations,
        )

    @staticmethod
    def from_request(data: dict) -> "SimJob":
        """Canonicalize a loosely-keyed request dict into a job spec.

        This is the wire-format entry point (`repro.serve`, `repro
        request`): it accepts the CLI-style aliases (``layers``,
        ``device``), coerces numeric types so equivalent JSON spellings
        hash identically, and rejects unknown fields loudly — a typo
        must fail the request, not silently simulate the default.
        """
        if not isinstance(data, dict):
            raise TypeError("request must be a JSON object")
        known = set(SimJob().as_dict())
        normalized: dict = {}
        for key, value in data.items():
            field = REQUEST_ALIASES.get(key, key)
            if field not in known:
                raise KeyError(f"unknown request field: {key!r}")
            if field in normalized:
                raise ValueError(f"duplicate request field: {key!r}")
            coerce = _REQUEST_COERCE.get(field)
            if coerce is not None and value is not None:
                type_name, convert = coerce
                try:
                    value = convert(value)
                except (TypeError, ValueError):
                    raise ValueError(
                        f"field {key!r} must be {type_name}, "
                        f"got {value!r}"
                    ) from None
            normalized[field] = value
        return SimJob.from_dict(normalized)

    # ------------------------------------------------------------------
    def resolved_config(self) -> AcceleratorConfig:
        """The hardware config this job simulates on."""
        cfg = self.config or default_config()
        if self.scale_buffers and self.scale < 1.0:
            cfg = cfg.scaled(
                pe_buffer_bytes=max(1024, int(cfg.pe_buffer_bytes * self.scale))
            )
        return cfg

    @property
    def key(self) -> str:
        return job_key(self)

    def label(self) -> str:
        """Short human-readable tag for progress lines."""
        return f"{self.model}/{self.dataset}@{self.scale:g}/{self.accelerator}"


def job_key(job: SimJob) -> str:
    """Canonical content hash of a job spec (hex sha256).

    Stable across processes and sessions: the hash covers the canonical
    JSON form with sorted keys plus a schema version, never object ids.
    """
    payload = {"version": JOB_SCHEMA_VERSION, **job.as_dict()}
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


#: Per-process scratch for the last execution's tile-reuse counters —
#: set by _run_job when a tile cache was active, harvested (and reset)
#: by execute_job right after the run so the serve/runner layers can
#: attach it to the wire payload without polluting SimulationResult.
_LAST_EXEC_META: dict | None = None


def take_exec_meta() -> dict | None:
    """Pop the tile-reuse counters of the most recent run_job call."""
    global _LAST_EXEC_META
    meta, _LAST_EXEC_META = _LAST_EXEC_META, None
    return meta


def _tile_execution_settings():
    """Tile cache + fan-out width from the environment (pool-inheritable)."""
    cache = None
    root = os.environ.get(ENV_TILE_CACHE_DIR)
    if root:
        from .cache import ResultCache

        cache = ResultCache(root=root)
    workers = 1
    raw = os.environ.get(ENV_TILE_WORKERS)
    if raw:
        try:
            workers = max(1, int(raw))
        except ValueError:
            workers = 1
    return cache, workers


def run_job(job: SimJob) -> SimulationResult:
    """Execute one job with fresh simulator/device instances."""
    with PERF.timer("runtime.job"):
        return _run_job(job)


def _run_job(job: SimJob) -> SimulationResult:
    global _LAST_EXEC_META
    cfg = job.resolved_config()
    graph = load_dataset(job.dataset, scale=job.scale, seed=job.seed)
    if job.mutations:
        # Incremental path: touched rows rebuild, row digests refresh
        # incrementally, so tile content keys of clean tiles are
        # unchanged and resolve from the per-tile cache below.
        graph = apply_chain(graph, job.mutations)
    profile = dataset_profile(job.dataset)
    dims = layer_plan(graph, job.hidden, job.num_layers, profile.num_classes)
    model = get_model(job.model)
    if job.baseline_traits is not None:
        device = BaselineAccelerator(job.baseline_traits, cfg)
        return device.simulate(model, graph, dims, strict=job.strict)
    if job.accelerator == "aurora":
        tile_cache, tile_workers = _tile_execution_settings()
        sim = AuroraSimulator(
            cfg,
            mapping_policy=job.mapping,
            tile_cache=tile_cache,
            tile_workers=tile_workers,
        )
        result = sim.simulate(model, graph, dims)
        if tile_cache is not None:
            stats = sim.take_tile_stats()
            _LAST_EXEC_META = {
                "tiles": stats["tiles"],
                "tiles_reused": stats["reused"],
                "tiles_recomputed": stats["recomputed"],
            }
        return result
    device = make_baseline(job.accelerator, cfg)
    return device.simulate(model, graph, dims, strict=job.strict)


def execute_job(job: SimJob) -> dict:
    """``run_job`` in the wire/cache format (the worker entry point).

    Returning the dict form rather than the object keeps the serial,
    process-pool, and warm-cache paths on one representation, so all
    three produce bit-identical results.  When a per-tile cache was
    active, the payload additionally carries the run's tile-reuse
    counters under ``"_exec"`` — a sibling of the result fields that
    ``SimulationResult.from_dict`` ignores, so result identity across
    cached/uncached paths is untouched.
    """
    take_exec_meta()  # drop stale state from a prior failed run
    payload = run_job(job).to_dict()
    meta = take_exec_meta()
    if meta is not None:
        payload = {**payload, "_exec": meta}
    return payload
