"""Extension models beyond the paper's Table II.

The paper's abstraction ("GAN, GCN, and GIN, among others") is open: any
model expressible as edge update / aggregation / vertex update over the
primitive ops runs on the unified PE.  These three extensions exercise
corners Table II doesn't:

* **GAT (multi-head)** — per-edge learned attention with H heads: the
  edge update carries H dot products + scalings per edge, the vertex
  update concatenates head outputs.
* **APPNP** — propagation-only layers (personalised PageRank): scalar
  edge weights, no vertex transform at all after the first hop — the
  mirror image of EdgeConv's missing phase.
* **GCNII** — GCN with initial-residual and identity mapping: two
  vector-scale ops in the vertex update on top of the dense transform.

Registering them is one dict update; the simulators, partition
algorithm, and configuration unit need no changes — which is the point.
"""

from __future__ import annotations

from .base import GNNModel, ModelCategory, OpKind, Phase, PhaseOp, PhaseSpec
from .zoo import MODEL_ZOO

__all__ = ["GAT_2HEAD", "APPNP", "GCNII", "EXTENSION_ZOO", "register_extensions"]


def _edge(*ops: PhaseOp) -> PhaseSpec:
    return PhaseSpec(Phase.EDGE_UPDATE, tuple(ops))


def _agg(*ops: PhaseOp) -> PhaseSpec:
    return PhaseSpec(Phase.AGGREGATION, tuple(ops))


def _vert(*ops: PhaseOp) -> PhaseSpec:
    return PhaseSpec(Phase.VERTEX_UPDATE, tuple(ops))


GAT_2HEAD = GNNModel(
    name="gat-2head",
    category=ModelCategory.A_GNN,
    edge_update=_edge(
        # Per head: attention score (dot of transformed endpoints) and
        # the score-scaled neighbor feature.
        PhaseOp(OpKind.DOT, per="edge", repeat=2),
        PhaseOp(OpKind.SCALAR_VECTOR, per="edge", repeat=2),
        PhaseOp(OpKind.ACTIVATION, per="edge"),  # LeakyReLU on the scores
    ),
    aggregation=_agg(PhaseOp(OpKind.ACCUMULATE, per="edge", repeat=2)),
    vertex_update=_vert(
        PhaseOp(OpKind.MATRIX_VECTOR, per="vertex", repeat=2),  # per-head W
        PhaseOp(OpKind.CONCAT, per="vertex"),
        PhaseOp(OpKind.ACTIVATION, per="vertex", uses_output_dim=True),
    ),
    uses_edge_embeddings=True,
    description="Graph attention with 2 heads: per-edge scores per head, "
    "head-concatenated vertex update.",
)

APPNP = GNNModel(
    name="appnp",
    category=ModelCategory.C_GNN,
    edge_update=_edge(PhaseOp(OpKind.SCALAR_VECTOR, per="edge")),
    aggregation=_agg(PhaseOp(OpKind.ACCUMULATE, per="edge")),
    vertex_update=_vert(
        # Residual blend with the initial features: two scalings + add,
        # all vector-wide; no dense transform.
        PhaseOp(OpKind.SCALAR_VECTOR, per="vertex", repeat=2),
        PhaseOp(OpKind.VECTOR_VECTOR, per="vertex"),
    ),
    description="APPNP propagation layer: PageRank-style scalar-weighted "
    "aggregation with an initial-residual blend, no weight matrix.",
)

GCNII = GNNModel(
    name="gcnii",
    category=ModelCategory.C_GNN,
    edge_update=_edge(PhaseOp(OpKind.SCALAR_VECTOR, per="edge")),
    aggregation=_agg(PhaseOp(OpKind.ACCUMULATE, per="edge")),
    vertex_update=_vert(
        PhaseOp(OpKind.MATRIX_VECTOR, per="vertex"),
        PhaseOp(OpKind.SCALAR_VECTOR, per="vertex", repeat=2),  # alpha/beta
        PhaseOp(OpKind.ACTIVATION, per="vertex", uses_output_dim=True),
    ),
    description="GCNII layer: GCN aggregation + identity-mapped dense "
    "update with initial residual.",
)


EXTENSION_ZOO: dict[str, GNNModel] = {
    m.name: m for m in (GAT_2HEAD, APPNP, GCNII)
}


def register_extensions() -> None:
    """Add the extension models to the global zoo (idempotent)."""
    for name, model in EXTENSION_ZOO.items():
        MODEL_ZOO.setdefault(name, model)
