"""Graph substrate: CSR storage, synthetic datasets, tiling, statistics."""

from .csr import CSRGraph, GraphMeta, from_dense_adjacency, from_edge_list
from .datasets import (
    ADVERSARIAL_DATASETS,
    DATASETS,
    DatasetProfile,
    dataset_profile,
    list_adversarial_datasets,
    list_datasets,
    load_dataset,
)
from .io import load_npz, read_edge_list_file, save_npz, write_edge_list_file
from .reorder import bfs_order, edge_locality_score, permute_graph
from .generators import (
    bipartite_graph,
    chain_graph,
    complete_graph,
    grid_graph,
    near_clique_hub_graph,
    power_law_graph,
    rmat_graph,
    star_graph,
    uniform_random_graph,
)
from .stats import (
    DegreeSummary,
    communication_imbalance,
    degree_histogram,
    degree_summary,
    gini_coefficient,
    power_law_exponent,
    top_degree_vertices,
)
from .tiling import Tile, TilingPlan, tile_footprint_bytes, tile_graph

__all__ = [
    "CSRGraph",
    "GraphMeta",
    "from_edge_list",
    "from_dense_adjacency",
    "DatasetProfile",
    "DATASETS",
    "ADVERSARIAL_DATASETS",
    "dataset_profile",
    "list_datasets",
    "list_adversarial_datasets",
    "load_dataset",
    "power_law_graph",
    "rmat_graph",
    "uniform_random_graph",
    "grid_graph",
    "star_graph",
    "bipartite_graph",
    "near_clique_hub_graph",
    "chain_graph",
    "complete_graph",
    "bfs_order",
    "permute_graph",
    "edge_locality_score",
    "save_npz",
    "load_npz",
    "read_edge_list_file",
    "write_edge_list_file",
    "Tile",
    "TilingPlan",
    "tile_graph",
    "tile_footprint_bytes",
    "DegreeSummary",
    "degree_histogram",
    "degree_summary",
    "power_law_exponent",
    "gini_coefficient",
    "top_degree_vertices",
    "communication_imbalance",
]
