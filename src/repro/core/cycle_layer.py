"""Cycle-tier layer runner: one layer, many tiles, sharded execution.

:class:`~repro.core.cycle_engine.CycleTileEngine` executes one tile;
this module runs a whole layer's worth of tiles and is where intra-job
parallelism lives.  Tiles are independent — each maps, configures,
injects, and drains its own NoC — so the runner hands them to
:func:`repro.runtime.shards.run_tile_shards`, which batches them into
contiguous shards across worker processes, serves previously computed
tiles from the per-tile result cache, and recovers crashed shards
serially.

Two invariants the property tests pin:

* **Deterministic order** — results come back in tile order regardless
  of worker count or shard layout.
* **Bit identity** — the aggregate result is identical under serial,
  sharded, and any NoC engine choice, because every engine is pinned
  bit-identical and per-tile work is a pure function of the tile.

Worker processes receive the parent's NoC route memo
(:func:`repro.arch.noc.network.export_route_memo`) so identical
topologies never re-derive routes per shard.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from functools import partial
from typing import Sequence

from typing import TYPE_CHECKING

from ..arch.noc.network import export_route_memo, install_route_memo
from ..config import AcceleratorConfig
from ..graphs.csr import CSRGraph
from ..graphs.tiling import TilingPlan
from ..models.base import GNNModel
from ..models.workload import LayerDims
from ..telemetry import TRACER
from .cycle_engine import CycleTileEngine, CycleTileResult

if TYPE_CHECKING:  # deferred at runtime: repro.runtime imports repro.core
    from ..runtime.cache import ResultCache
    from ..runtime.shards import TileShardJob, TileShardPlanner

__all__ = ["CycleLayerResult", "run_cycle_layer"]


@dataclass
class CycleLayerResult:
    """Per-tile cycle-accurate results for one layer, in tile order."""

    tiles: list[CycleTileResult]
    fanout: dict
    noc_engine: str

    @property
    def total_cycles(self) -> int:
        """Layer latency with tiles executed back to back."""
        return sum(t.tile_cycles for t in self.tiles)

    @property
    def packets(self) -> int:
        return sum(t.packets for t in self.tiles)

    @property
    def flits(self) -> int:
        return sum(t.flits for t in self.tiles)

    @property
    def stall_events(self) -> int:
        return sum(t.stall_events for t in self.tiles)


def _run_cycle_shard(
    job: TileShardJob,
    *,
    config: AcceleratorConfig,
    model: GNNModel,
    dims: LayerDims,
    mapping_policy: str,
    noc_engine: str,
) -> dict:
    """Pool-worker entry: execute one shard's tiles, return JSON payloads.

    Module-level (and invoked through :func:`functools.partial`) so the
    process pool can pickle it by reference.
    """
    if job.route_memo:
        install_route_memo(dict(job.route_memo))
    engine = CycleTileEngine(
        config, mapping_policy=mapping_policy, noc_engine=noc_engine
    )
    tiles = []
    for sub in job.payloads:
        if not isinstance(sub, CSRGraph):
            # Shared-memory handle from the parent's GraphPlane; resolves
            # through the worker's content-keyed graph cache.
            from ..runtime.graphplane import resolve_handle

            sub = resolve_handle(sub)
        tiles.append(engine.run_tile(model, sub, dims).to_payload())
    return {"tiles": tiles}


def _tile_keys(
    subs: Sequence[CSRGraph],
    model: GNNModel,
    dims: LayerDims,
    config: AcceleratorConfig,
    mapping_policy: str,
    partition_signature: dict | None,
) -> list[str]:
    """Per-tile content-addressed cache sub-keys.

    The NoC engine is deliberately absent: engines are property-tested
    bit-identical, so a tile computed under ``fused`` is a valid cache
    hit for a later ``numba`` run of the same workload.  The partition
    signature *is* present: a tile cached under one tiling configuration
    must never satisfy a probe from another.
    """
    from ..runtime.shards import tile_sub_key

    base = {
        "model": model.name,
        "dims": [dims.in_features, dims.out_features, dims.hidden],
        "config": asdict(config),
        "policy": mapping_policy,
        "tiling": partition_signature,
    }
    return [
        tile_sub_key("cycle-tile", {**base, "graph": sub.content_key})
        for sub in subs
    ]


def run_cycle_layer(
    model: GNNModel,
    tiles: TilingPlan | Sequence[CSRGraph],
    dims: LayerDims,
    *,
    config: AcceleratorConfig,
    mapping_policy: str = "degree-aware",
    noc_engine: str = "event",
    tile_workers: int = 1,
    cache: ResultCache | None = None,
    planner: TileShardPlanner | None = None,
    timeout: float | None = None,
    partition_signature: dict | None = None,
    graph_plane=None,
) -> CycleLayerResult:
    """Execute every tile of one layer, fanned out over ``tile_workers``.

    ``tiles`` is either a :class:`~repro.graphs.tiling.TilingPlan` or a
    sequence of tile subgraphs.  With a ``cache``, each tile is probed
    under its content-addressed sub-key first, so re-running a job after
    editing one tile recomputes only that tile.  ``partition_signature``
    carries the tiling parameters into the cache keys (defaults to the
    plan's own parameters when ``tiles`` is a
    :class:`~repro.graphs.tiling.TilingPlan`).  With a ``graph_plane``
    and multiple workers, cold tile subgraphs ship to workers as
    shared-memory handles instead of pickled arrays.
    """
    from ..runtime.shards import run_tile_shards

    if isinstance(tiles, TilingPlan):
        subs = [tile.subgraph for tile in tiles]
        if partition_signature is None:
            partition_signature = {
                "capacity_bytes": tiles.capacity_bytes,
                "bytes_per_value": tiles.bytes_per_value,
            }
    else:
        subs = list(tiles)

    worker_fn = partial(
        _run_cycle_shard,
        config=config,
        model=model,
        dims=dims,
        mapping_policy=mapping_policy,
        noc_engine=noc_engine,
    )
    keys = (
        _tile_keys(subs, model, dims, config, mapping_policy, partition_signature)
        if cache is not None
        else None
    )
    ship_via_plane = graph_plane is not None and tile_workers > 1

    def build_payloads(indices):
        return [
            graph_plane.publish(subs[i]) if ship_via_plane else subs[i]
            for i in indices
        ]
    with TRACER.span(
        "cycle.layer",
        {
            "model": model.name,
            "tiles": len(subs),
            "tile_workers": tile_workers,
            "noc_engine": noc_engine,
        },
    ):
        fanout = run_tile_shards(
            len(subs),
            worker_fn,
            kind="cycle",
            tile_workers=tile_workers,
            costs=[max(1, sub.num_edges) for sub in subs],
            tile_keys=keys,
            cache=cache,
            planner=planner,
            route_memo=export_route_memo(),
            timeout=timeout,
            payload_builder=build_payloads,
        )
    return CycleLayerResult(
        tiles=[CycleTileResult.from_payload(p) for p in fanout.payloads],
        fanout=fanout.stats,
        noc_engine=noc_engine,
    )
