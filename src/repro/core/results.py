"""Result types shared by the Aurora simulator and the baseline models.

Every accelerator simulation produces a :class:`SimulationResult` so the
evaluation harness can compare them uniformly: execution time, its
component breakdown, DRAM volume, on-chip communication cycles, and the
energy breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..arch.energy import EnergyBreakdown, EnergyCounters

__all__ = ["PhaseBreakdown", "SimulationResult"]


def _plain(value):
    """Recursively coerce numpy scalars/arrays to JSON-encodable builtins."""
    if isinstance(value, dict):
        return {str(k): _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    if hasattr(value, "item") and not isinstance(value, (str, bytes)):
        try:
            return value.item()
        except (AttributeError, ValueError):
            return [_plain(v) for v in value.tolist()]
    return value


@dataclass(frozen=True)
class PhaseBreakdown:
    """Seconds attributed to each activity class (pre-overlap)."""

    compute_seconds: float = 0.0
    noc_seconds: float = 0.0
    dram_seconds: float = 0.0

    @property
    def serial_seconds(self) -> float:
        """Time if nothing overlapped (upper bound)."""
        return self.compute_seconds + self.noc_seconds + self.dram_seconds

    def to_dict(self) -> dict[str, float]:
        return {
            "compute_seconds": self.compute_seconds,
            "noc_seconds": self.noc_seconds,
            "dram_seconds": self.dram_seconds,
        }

    @staticmethod
    def from_dict(data: dict) -> "PhaseBreakdown":
        return PhaseBreakdown(
            compute_seconds=data["compute_seconds"],
            noc_seconds=data["noc_seconds"],
            dram_seconds=data["dram_seconds"],
        )


@dataclass
class SimulationResult:
    """Outcome of simulating one layer (or one full model) on a device."""

    accelerator: str
    model_name: str
    graph_name: str
    total_seconds: float
    breakdown: PhaseBreakdown
    dram_bytes: int
    onchip_comm_cycles: int
    energy: EnergyBreakdown
    counters: EnergyCounters
    num_tiles: int = 1
    frequency_hz: float = 700e6
    notes: dict = field(default_factory=dict)

    @property
    def total_cycles(self) -> float:
        return self.total_seconds * self.frequency_hz

    @property
    def energy_joules(self) -> float:
        return self.energy.total

    def to_dict(self) -> dict:
        """Lossless JSON-compatible form (the result-cache storage format).

        Floats survive a ``json.dumps``/``loads`` round trip bit-exactly,
        so ``from_dict(json.loads(json.dumps(r.to_dict())))`` reproduces
        every field.  ``notes`` must therefore only hold JSON-encodable
        values (the simulators keep to str/int/float/bool/lists).
        """
        return {
            "accelerator": self.accelerator,
            "model_name": self.model_name,
            "graph_name": self.graph_name,
            "total_seconds": float(self.total_seconds),
            "breakdown": _plain(self.breakdown.to_dict()),
            "dram_bytes": int(self.dram_bytes),
            "onchip_comm_cycles": int(self.onchip_comm_cycles),
            "energy": _plain(self.energy.as_dict()),
            "counters": _plain(self.counters.as_dict()),
            "num_tiles": int(self.num_tiles),
            "frequency_hz": float(self.frequency_hz),
            "notes": _plain(self.notes),
        }

    @staticmethod
    def from_dict(data: dict) -> "SimulationResult":
        """Inverse of :meth:`to_dict`."""
        return SimulationResult(
            accelerator=data["accelerator"],
            model_name=data["model_name"],
            graph_name=data["graph_name"],
            total_seconds=data["total_seconds"],
            breakdown=PhaseBreakdown.from_dict(data["breakdown"]),
            dram_bytes=data["dram_bytes"],
            onchip_comm_cycles=data["onchip_comm_cycles"],
            energy=EnergyBreakdown.from_dict(data["energy"]),
            counters=EnergyCounters.from_dict(data["counters"]),
            num_tiles=data["num_tiles"],
            frequency_hz=data["frequency_hz"],
            notes=dict(data["notes"]),
        )

    def speedup_over(self, other: "SimulationResult") -> float:
        """How much faster *this* result is than ``other`` (>1 = faster)."""
        if self.total_seconds == 0:
            return float("inf")
        return other.total_seconds / self.total_seconds

    @staticmethod
    def combine(results: list["SimulationResult"]) -> "SimulationResult":
        """Sum per-layer results into a whole-model result."""
        if not results:
            raise ValueError("need at least one result to combine")
        first = results[0]
        counters = EnergyCounters()
        for r in results:
            counters = counters.merge(r.counters)
        from ..arch.energy import EnergyModel  # local import to avoid cycle

        energy = EnergyModel().evaluate(counters)
        return SimulationResult(
            accelerator=first.accelerator,
            model_name=first.model_name,
            graph_name=first.graph_name,
            total_seconds=sum(r.total_seconds for r in results),
            breakdown=PhaseBreakdown(
                compute_seconds=sum(r.breakdown.compute_seconds for r in results),
                noc_seconds=sum(r.breakdown.noc_seconds for r in results),
                dram_seconds=sum(r.breakdown.dram_seconds for r in results),
            ),
            dram_bytes=sum(r.dram_bytes for r in results),
            onchip_comm_cycles=sum(r.onchip_comm_cycles for r in results),
            energy=energy,
            counters=counters,
            num_tiles=sum(r.num_tiles for r in results),
            frequency_hz=first.frequency_hz,
            notes={"layers": len(results)},
        )
