"""E2 — regenerate Table II: required operations per execution phase."""

from conftest import emit

from repro.eval import run_experiment


def test_table2_operations(benchmark):
    result = benchmark(run_experiment, "E2")
    emit(result.text)
    data = result.data
    assert data["gcn"]["edge_update"] == ["SxV"]
    assert data["gin"]["edge_update"] == []  # Null row
    assert data["edgeconv-1"]["vertex_update"] == []  # Null row
    assert "MxV" in data["ggcn"]["edge_update"]
    assert data["graphsage-pool"]["aggregation"] == ["MaxV"]
    assert len(data) == 10  # every model of Table II present
