"""End-to-end telemetry through the serve stack.

One ``/simulate`` request must yield a single span tree
(``http → admission/batcher → batch → run_jobs → executor.job →
simulate_layer → {partition, tiling, mapping, noc}``), exposed over
``/trace``, renderable as valid Chrome-trace JSON, alongside a
parseable Prometheus ``/metrics`` endpoint and a telemetry section in
``/stats``.
"""

import threading
import time

import pytest

from repro.serve.client import ServeClient
from repro.serve.server import LatencyWindow, ServerThread, SimulationService
from repro.telemetry import TRACER
from repro.telemetry.export import (
    to_chrome_trace,
    trace_roots,
    validate_chrome_trace,
)
from repro.telemetry.trace import Span

SMALL = {"model": "gcn", "dataset": "cora", "scale": 0.2, "hidden": 16}


@pytest.fixture
def traced_server():
    with TRACER.session(enabled=True, sample_rate=1.0):
        service = SimulationService()
        with ServerThread(service) as thread:
            host, port = thread.address
            yield ServeClient(host, port, timeout=60.0), service


class TestRequestTree:
    def test_single_request_single_tree(self, traced_server):
        client, _ = traced_server
        payload = client.simulate(SMALL)
        trace_id = payload["trace_id"]
        assert trace_id
        doc = client.trace(trace_id)
        spans = [Span.from_dict(s) for s in doc["spans"]]
        assert doc["count"] == len(spans) > 0

        names = {s.name for s in spans}
        assert {
            "http",
            "admission",
            "batcher",
            "batch",
            "run_jobs",
            "cache.probe",
            "executor.job",
            "simulate_layer",
            "partition",
            "tiling",
            "mapping",
        } <= names

        roots = [s for s in spans if s.parent_id is None]
        assert [r.name for r in roots] == ["http"]
        ids = {s.span_id for s in spans}
        assert all(
            s.parent_id in ids for s in spans if s.parent_id is not None
        )

    def test_tree_exports_as_valid_chrome_trace(self, traced_server):
        client, _ = traced_server
        payload = client.simulate(SMALL)
        spans = [
            Span.from_dict(s)
            for s in client.trace(payload["trace_id"])["spans"]
        ]
        doc = to_chrome_trace(spans)
        assert validate_chrome_trace(doc) == []
        assert len(trace_roots(spans)) == 1

    def test_client_supplied_trace_id_adopted(self, traced_server):
        client, _ = traced_server
        payload = client.simulate(SMALL, trace_id="feedc0de")
        assert payload["trace_id"] == "feedc0de"
        assert client.trace("feedc0de")["count"] > 0

    def test_invalid_client_trace_id_replaced(self, traced_server):
        client, _ = traced_server
        payload = client.simulate(SMALL, trace_id=None)
        assert payload["trace_id"] != ""
        status, got = client.call(
            "POST",
            "/simulate",
            dict(SMALL),
            headers={"X-Repro-Trace-Id": "NOT HEX !!"},
        )
        assert status == 200
        assert got["trace_id"] != "NOT HEX !!"

    def test_response_header_echoes_trace_id(self, traced_server):
        client, _ = traced_server
        import http.client as httplib
        import json as json_mod

        conn = httplib.HTTPConnection(client.host, client.port, timeout=30.0)
        try:
            conn.request(
                "POST",
                "/simulate",
                body=json_mod.dumps(SMALL).encode(),
                headers={"X-Repro-Trace-Id": "abc123"},
            )
            response = conn.getresponse()
            body = json_mod.loads(response.read())
            assert response.getheader("X-Repro-Trace-Id") == "abc123"
            assert body["trace_id"] == "abc123"
        finally:
            conn.close()

    def test_bad_request_still_traced(self, traced_server):
        client, _ = traced_server
        status, payload = client.call(
            "POST", "/simulate", {"model": "gcn", "bogus_field": 1}
        )
        assert status == 400
        assert payload.get("trace_id")
        spans = client.trace(payload["trace_id"])["spans"]
        http_span = next(s for s in spans if s["name"] == "http")
        assert http_span["attributes"]["status"] == 400


class TestTraceEndpoint:
    def test_limit_parameter(self, traced_server):
        client, _ = traced_server
        client.simulate(SMALL)
        doc = client.trace(limit=2)
        assert doc["count"] == 2

    def test_unknown_trace_id_empty(self, traced_server):
        client, _ = traced_server
        client.simulate(SMALL)
        assert client.trace("deadbeef")["count"] == 0

    def test_get_only(self, traced_server):
        client, _ = traced_server
        status, _ = client.call("POST", "/trace", {})
        assert status == 405


class TestMetricsEndpoint:
    def test_prometheus_text_parseable(self, traced_server):
        import re

        client, _ = traced_server
        client.simulate(SMALL)
        text = client.metrics()
        assert "# TYPE repro_requests_total counter" in text
        assert 'repro_requests_total{status="200"}' in text
        assert "# TYPE repro_request_seconds histogram" in text
        assert "repro_request_seconds_count" in text
        line_re = re.compile(
            r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9.eE+-]+(inf)?$"
        )
        for line in text.splitlines():
            if line.startswith("#") or not line:
                continue
            assert line_re.match(line), line

    def test_perf_stages_surface_on_metrics(self, traced_server):
        client, _ = traced_server
        client.simulate(SMALL)
        text = client.metrics()
        assert 'repro_stage_seconds_count{stage="serve.request"}' in text

    def test_get_only(self, traced_server):
        client, _ = traced_server
        status, _ = client.call("POST", "/metrics", {})
        assert status == 405


class TestStatsTelemetry:
    def test_stats_carries_tracer_snapshot(self, traced_server):
        client, _ = traced_server
        client.simulate(SMALL)
        telemetry = client.stats()["telemetry"]
        assert telemetry["enabled"] is True
        assert telemetry["buffered"] > 0
        assert telemetry["total"] >= telemetry["buffered"]
        assert telemetry["dropped"] == 0

    def test_disabled_tracer_records_nothing(self):
        service = SimulationService()
        assert TRACER.enabled is False
        TRACER.buffer.clear()  # drop spans left over from other tests
        with ServerThread(service) as thread:
            host, port = thread.address
            client = ServeClient(host, port, timeout=60.0)
            payload = client.simulate(SMALL)
            assert "trace_id" not in payload
            assert client.trace()["count"] == 0
            assert client.stats()["telemetry"]["enabled"] is False


class TestLatencyWindowConcurrency:
    """Satellite: /stats p50/p95 stay sane under concurrent requests."""

    def test_no_lost_samples_and_bounded_window(self):
        window = LatencyWindow(size=256)
        n, workers = 2_000, 8

        def pump(w: int) -> None:
            for i in range(n):
                window.add((w * n + i) * 1e-6)

        threads = [
            threading.Thread(target=pump, args=(w,)) for w in range(workers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = window.snapshot()
        assert snap["count"] == n * workers  # no lost count updates
        assert snap["window"] == 256  # bounded

    def test_percentiles_monotone_under_concurrent_adds(self):
        window = LatencyWindow(size=128)
        stop = threading.Event()

        def writer() -> None:
            i = 0
            while not stop.is_set():
                window.add((i % 100) * 1e-3)
                i += 1

        threads = [threading.Thread(target=writer) for _ in range(4)]
        for t in threads:
            t.start()
        try:
            deadline = time.monotonic() + 0.5
            while time.monotonic() < deadline:
                snap = window.snapshot()
                if snap["window"] == 0:
                    continue
                assert 0 <= snap["p50_seconds"] <= snap["p95_seconds"]
                assert snap["window"] <= 128
                assert snap["count"] >= snap["window"]
        finally:
            stop.set()
            for t in threads:
                t.join()

    def test_live_stats_percentiles_under_concurrent_requests(self):
        from concurrent.futures import ThreadPoolExecutor

        service = SimulationService()
        with ServerThread(service) as thread:
            host, port = thread.address
            client = ServeClient(host, port, timeout=60.0)
            client.simulate(SMALL)  # warm the cache

            def fire(_):
                return client.simulate(SMALL)

            with ThreadPoolExecutor(8) as pool:
                list(pool.map(fire, range(32)))
            latency = client.stats()["latency"]
        assert latency["count"] == 33
        assert latency["window"] == 33
        assert latency["p50_seconds"] <= latency["p95_seconds"]
        assert latency["mean_seconds"] > 0


class TestCLITraceCommands:
    def test_request_trace_flag_prints_summary(self, traced_server, capsys):
        from repro.cli import main

        client, _ = traced_server
        rc = main(
            [
                "request",
                "--host",
                client.host,
                "--port",
                str(client.port),
                "--dataset",
                "cora",
                "--scale",
                "0.2",
                "--hidden",
                "16",
                "--trace",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "trace id" in out
        assert "simulate_layer" in out
        assert "http" in out

    def test_trace_export_and_summary(self, traced_server, tmp_path, capsys):
        import json as json_mod

        from repro.cli import main

        client, _ = traced_server
        client.simulate(SMALL)
        out_json = tmp_path / "trace.json"
        out_jsonl = tmp_path / "spans.jsonl"
        rc = main(
            [
                "trace",
                "export",
                "--host",
                client.host,
                "--port",
                str(client.port),
                "--output",
                str(out_json),
                "--jsonl",
                str(out_jsonl),
            ]
        )
        assert rc == 0
        doc = json_mod.loads(out_json.read_text())
        assert validate_chrome_trace(doc) == []
        assert out_jsonl.exists()

        capsys.readouterr()
        rc = main(["trace", "summary", "--input", str(out_jsonl)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "simulate_layer" in out

    def test_trace_summary_no_server_spans(self, tmp_path, capsys):
        from repro.cli import main

        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        rc = main(["trace", "summary", "--input", str(empty)])
        assert rc == 1
