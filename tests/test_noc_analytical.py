"""Tests for the analytical NoC model, incl. agreement with the flit sim."""

import numpy as np
import pytest

from repro.arch.noc import (
    AnalyticalNoCModel,
    BypassSegment,
    FlexibleMeshTopology,
    NoCSimulator,
    TrafficMatrix,
)
from repro.config import NoCConfig


def _traffic(flows, k, flit_bytes=16):
    return TrafficMatrix.from_flows(np.asarray(flows, dtype=np.int64), flit_bytes, k)


class TestTrafficMatrix:
    def test_from_flows_basic(self):
        tm = _traffic([[0, 3, 32], [0, 3, 32]], k=4)
        assert tm.num_flows == 1  # merged duplicates
        assert tm.flits[0] == 4  # 64 bytes / 16

    def test_drops_local_flows(self):
        tm = _traffic([[2, 2, 64]], k=4)
        assert tm.num_flows == 0

    def test_empty(self):
        tm = TrafficMatrix.from_flows(np.empty((0, 3)), 16, 4)
        assert tm.num_flows == 0
        assert tm.total_flits == 0

    def test_coordinates(self):
        tm = _traffic([[1, 14, 16]], k=4)
        assert (tm.src_x[0], tm.src_y[0]) == (1, 0)
        assert (tm.dst_x[0], tm.dst_y[0]) == (2, 3)

    def test_minimum_one_flit(self):
        tm = _traffic([[0, 1, 1]], k=4)
        assert tm.flits[0] == 1

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="src, dst, bytes"):
            TrafficMatrix.from_flows(np.zeros((2, 2), dtype=np.int64), 16, 4)


class TestEvaluate:
    def test_empty_traffic(self):
        model = AnalyticalNoCModel(FlexibleMeshTopology(4))
        res = model.evaluate(TrafficMatrix.from_flows(np.empty((0, 3)), 16, 4))
        assert res.drain_cycles == 0
        assert res.total_flits == 0

    def test_hops_match_manhattan(self):
        model = AnalyticalNoCModel(FlexibleMeshTopology(4))
        res = model.evaluate(_traffic([[0, 15, 16]], k=4))
        assert res.avg_hops == pytest.approx(6.0)

    def test_flit_hops(self):
        model = AnalyticalNoCModel(FlexibleMeshTopology(4))
        res = model.evaluate(_traffic([[0, 3, 64]], k=4))  # 4 flits, 3 hops
        assert res.total_flit_hops == 12

    def test_bypass_reduces_hops(self):
        topo = FlexibleMeshTopology(8)
        topo.add_bypass_segment(BypassSegment("row", 0, 0, 7))
        model = AnalyticalNoCModel(topo)
        res = model.evaluate(_traffic([[0, 7, 64]], k=8))
        assert res.avg_hops == pytest.approx(1.0)
        assert res.bypass_flit_hops == 4

    def test_drain_monotone_in_volume(self):
        model = AnalyticalNoCModel(FlexibleMeshTopology(4))
        small = model.evaluate(_traffic([[0, 15, 256]], k=4))
        large = model.evaluate(_traffic([[0, 15, 4096]], k=4))
        assert large.drain_cycles > small.drain_cycles

    def test_hotspot_dominates_drain(self):
        """Many sources converging on one node bound the drain by ejection."""
        model = AnalyticalNoCModel(FlexibleMeshTopology(4))
        flows = [[s, 5, 160] for s in range(16) if s != 5]
        res = model.evaluate(_traffic(flows, k=4))
        assert res.max_ejection_load == 150  # 15 sources x 10 flits
        assert res.drain_cycles >= 150

    def test_boost_nodes_relieve_ejection(self):
        topo = FlexibleMeshTopology(4)
        model = AnalyticalNoCModel(topo)
        flows = [[s, 5, 160] for s in range(16) if s != 5]
        plain = model.evaluate(_traffic(flows, k=4))
        boosted = model.evaluate(
            _traffic(flows, k=4), boost_nodes=(5,), boost_factor=3.0
        )
        assert boosted.max_ejection_load == pytest.approx(
            plain.max_ejection_load / 3, abs=1
        )

    def test_explicit_eject_loads(self):
        model = AnalyticalNoCModel(FlexibleMeshTopology(4))
        eject = np.zeros(16, dtype=np.int64)
        eject[5] = 999
        res = model.evaluate(_traffic([[0, 5, 16]], k=4), eject_flits=eject)
        assert res.max_ejection_load == 999
        assert res.drain_cycles >= 999

    def test_explicit_inject_loads(self):
        model = AnalyticalNoCModel(FlexibleMeshTopology(4))
        inject = np.zeros(16, dtype=np.int64)
        inject[0] = 500
        res = model.evaluate(_traffic([[0, 5, 16]], k=4), inject_flits=inject)
        assert res.drain_cycles >= 500


class TestAgreementWithFlitSim:
    """The counting model should track the cycle simulator within ~2x on
    matched traffic — it is the calibrated fast path of the same NoC."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_traffic_agreement(self, seed):
        rng = np.random.default_rng(seed)
        k = 4
        flows = []
        sim = NoCSimulator(FlexibleMeshTopology(k))
        for _ in range(30):
            src = int(rng.integers(0, k * k))
            dst = int(rng.integers(0, k * k))
            if src == dst:
                continue
            nbytes = int(rng.integers(16, 128))
            flows.append([src, dst, nbytes])
            sim.inject(src, dst, nbytes)
        measured = sim.run().cycles
        model = AnalyticalNoCModel(FlexibleMeshTopology(k))
        predicted = model.evaluate(_traffic(flows, k=k)).drain_cycles
        assert predicted == pytest.approx(measured, rel=1.0)
        assert predicted > measured / 4

    def test_single_flow_agreement(self):
        k = 8
        sim = NoCSimulator(FlexibleMeshTopology(k))
        sim.inject(0, k * k - 1, 256)
        measured = sim.run().cycles
        model = AnalyticalNoCModel(FlexibleMeshTopology(k))
        predicted = model.evaluate(_traffic([[0, k * k - 1, 256]], k=k)).drain_cycles
        assert predicted == pytest.approx(measured, rel=0.8)
