#!/usr/bin/env python3
"""Serve a mixed queue of GNN requests on one Aurora device.

The paper's versatility claim in action: one device serving GCN
(citation classification), GAT-style attention, G-GCN gating and
EdgeConv (point clouds) back to back, reconfiguring between models.
Prints the schedule and the reconfiguration share (paper §VI-E:
reconfiguration energy <3% — time behaves alike).

Run:  python examples/multi_model_serving.py
"""

from repro import LayerDims, get_model, load_dataset
from repro.core import BatchScheduler, GNNRequest
from repro.eval import format_table
from repro.graphs import power_law_graph


def main() -> None:
    cora = load_dataset("cora", scale=0.5)
    cloud = power_law_graph(
        480, 3800, locality=0.4, num_features=16, seed=0, name="pointcloud"
    )

    queue = [
        GNNRequest(get_model("gcn"), cora, LayerDims(cora.num_features, 64)),
        GNNRequest(get_model("agnn"), cora, LayerDims(cora.num_features, 64)),
        GNNRequest(get_model("gcn"), cora, LayerDims(cora.num_features, 64)),
        GNNRequest(get_model("edgeconv-1"), cloud, LayerDims(16, 32)),
        GNNRequest(get_model("ggcn"), cora, LayerDims(cora.num_features, 64)),
    ]
    out = BatchScheduler().run(queue)

    rows = []
    for s in out.scheduled:
        rows.append(
            [
                str(s.index),
                s.model_name,
                s.graph_name,
                f"{s.start_seconds * 1e6:.1f}",
                f"{s.reconfig_seconds * 1e9:.0f}",
                f"{s.result.total_seconds * 1e6:.1f}",
            ]
        )
    print(
        format_table(
            ["#", "model", "graph", "start us", "reconfig ns", "run us"],
            rows,
            title="Mixed-model request schedule on one Aurora device",
        )
    )
    print(
        f"\nmakespan: {out.makespan_seconds * 1e6:.1f} us, "
        f"reconfiguration share: {100 * out.reconfig_fraction:.2f}% "
        f"(paper: <3%), total energy: {out.total_energy_joules * 1e3:.2f} mJ"
    )


if __name__ == "__main__":
    main()
