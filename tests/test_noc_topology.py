"""Unit tests for the flexible NoC topology."""

import pytest

from repro.arch.noc import BypassSegment, FlexibleMeshTopology, RingConfig


@pytest.fixture
def mesh8():
    return FlexibleMeshTopology(8)


class TestCoordinates:
    def test_node_id_roundtrip(self, mesh8):
        for node in (0, 7, 8, 63):
            x, y = mesh8.coords(node)
            assert mesh8.node_id(x, y) == node

    def test_out_of_range(self, mesh8):
        with pytest.raises(ValueError):
            mesh8.node_id(8, 0)
        with pytest.raises(ValueError):
            mesh8.coords(64)

    def test_num_nodes(self, mesh8):
        assert mesh8.num_nodes == 64

    def test_min_dimension(self):
        with pytest.raises(ValueError):
            FlexibleMeshTopology(1)

    def test_manhattan(self, mesh8):
        assert mesh8.manhattan(0, 63) == 14
        assert mesh8.manhattan(5, 5) == 0


class TestMeshNeighbors:
    def test_corner_has_two(self, mesh8):
        assert len(mesh8.mesh_neighbors(0)) == 2

    def test_edge_has_three(self, mesh8):
        assert len(mesh8.mesh_neighbors(1)) == 3

    def test_interior_has_four(self, mesh8):
        assert len(mesh8.mesh_neighbors(9)) == 4

    def test_symmetry(self, mesh8):
        for node in range(mesh8.num_nodes):
            for nbr in mesh8.mesh_neighbors(node):
                assert node in mesh8.mesh_neighbors(nbr)


class TestBypassSegments:
    def test_add_row_segment(self, mesh8):
        mesh8.add_bypass_segment(BypassSegment("row", 2, 0, 7))
        assert len(mesh8.bypass_segments) == 1

    def test_segment_endpoints(self, mesh8):
        seg = BypassSegment("row", 2, 1, 6)
        mesh8.add_bypass_segment(seg)
        a, b = mesh8.segment_endpoints(seg)
        assert mesh8.coords(a) == (1, 2)
        assert mesh8.coords(b) == (6, 2)

    def test_column_segment_endpoints(self, mesh8):
        seg = BypassSegment("col", 3, 0, 5)
        mesh8.add_bypass_segment(seg)
        a, b = mesh8.segment_endpoints(seg)
        assert mesh8.coords(a) == (3, 0)
        assert mesh8.coords(b) == (3, 5)

    def test_overlap_rejected_same_wire(self, mesh8):
        mesh8.add_bypass_segment(BypassSegment("row", 2, 0, 4))
        with pytest.raises(ValueError, match="overlaps"):
            mesh8.add_bypass_segment(BypassSegment("row", 2, 3, 7))

    def test_disjoint_segments_same_wire_allowed(self, mesh8):
        mesh8.add_bypass_segment(BypassSegment("row", 2, 0, 3))
        mesh8.add_bypass_segment(BypassSegment("row", 2, 4, 7))
        assert len(mesh8.bypass_segments) == 2

    def test_different_rows_never_overlap(self, mesh8):
        mesh8.add_bypass_segment(BypassSegment("row", 1, 0, 7))
        mesh8.add_bypass_segment(BypassSegment("row", 2, 0, 7))

    def test_row_and_col_independent(self, mesh8):
        mesh8.add_bypass_segment(BypassSegment("row", 2, 0, 7))
        mesh8.add_bypass_segment(BypassSegment("col", 2, 0, 7))

    def test_out_of_mesh_rejected(self, mesh8):
        with pytest.raises(ValueError, match="outside"):
            mesh8.add_bypass_segment(BypassSegment("row", 9, 0, 3))
        with pytest.raises(ValueError, match="outside"):
            mesh8.add_bypass_segment(BypassSegment("row", 0, 0, 9))

    def test_invalid_segment(self):
        with pytest.raises(ValueError, match="axis"):
            BypassSegment("diag", 0, 0, 3)
        with pytest.raises(ValueError, match="span"):
            BypassSegment("row", 0, 3, 3)

    def test_links_from_includes_bypass(self, mesh8):
        mesh8.add_bypass_segment(BypassSegment("row", 0, 0, 7))
        links = mesh8.links_from(0)
        kinds = {kind for _, kind in links}
        assert "bypass" in kinds
        bypass_targets = [n for n, k in links if k == "bypass"]
        assert mesh8.node_id(7, 0) in bypass_targets

    def test_clear_configuration(self, mesh8):
        mesh8.add_bypass_segment(BypassSegment("row", 0, 0, 7))
        mesh8.clear_configuration()
        assert mesh8.bypass_segments == []


class TestRings:
    def test_add_ring(self, mesh8):
        mesh8.add_ring_region(RingConfig(0, 4, 8, 8))
        assert len(mesh8.ring_regions) == 1
        # Ring rows consumed their bypass wires as wrap-arounds.
        assert len(mesh8.bypass_segments) == 4

    def test_ring_lookup(self, mesh8):
        ring = RingConfig(0, 4, 8, 8)
        mesh8.add_ring_region(ring)
        assert mesh8.ring_for(mesh8.node_id(3, 5)) is not None
        assert mesh8.ring_for(mesh8.node_id(3, 2)) is None

    def test_overlapping_rings_rejected(self, mesh8):
        mesh8.add_ring_region(RingConfig(0, 0, 8, 4))
        with pytest.raises(ValueError, match="overlap"):
            mesh8.add_ring_region(RingConfig(0, 3, 8, 6))

    def test_ring_outside_mesh(self, mesh8):
        with pytest.raises(ValueError, match="outside"):
            mesh8.add_ring_region(RingConfig(0, 0, 9, 2))

    def test_ring_conflicts_with_used_bypass(self, mesh8):
        mesh8.add_bypass_segment(BypassSegment("row", 5, 2, 6))
        with pytest.raises(ValueError, match="overlaps"):
            mesh8.add_ring_region(RingConfig(0, 4, 8, 8))

    def test_invalid_ring(self):
        with pytest.raises(ValueError, match="non-empty"):
            RingConfig(2, 2, 2, 4)

    def test_ring_dimensions(self):
        ring = RingConfig(1, 2, 5, 6)
        assert ring.width == 4
        assert ring.height == 4
        assert ring.contains(1, 2)
        assert not ring.contains(5, 2)
