"""Tests for the resilient client: retries, backoff, deadlines."""

import random

import pytest

from repro.serve.client import (
    DeadlineExceeded,
    RequestFailed,
    ServeClient,
    ServiceUnavailable,
)


class ScriptedTransport:
    """Replays a list of responses / exceptions, recording every call."""

    def __init__(self, script):
        self.script = list(script)
        self.calls = []

    def __call__(self, method, path, body, headers, timeout):
        self.calls.append(
            {"method": method, "path": path, "headers": headers, "timeout": timeout}
        )
        step = self.script.pop(0)
        if isinstance(step, Exception):
            raise step
        return step


def make_client(script, **kwargs):
    transport = ScriptedTransport(script)
    sleeps = []
    client = ServeClient(
        transport=transport,
        sleep=sleeps.append,
        rng=random.Random(0),
        **kwargs,
    )
    return client, transport, sleeps


class TestRetries:
    def test_success_first_try_no_sleep(self):
        client, transport, sleeps = make_client([(200, {"cached": False})])
        assert client.simulate({"dataset": "cora"}) == {"cached": False}
        assert len(transport.calls) == 1
        assert sleeps == []

    def test_retries_shed_then_succeeds(self):
        client, transport, sleeps = make_client(
            [(429, {"error": "shed"}), (429, {"error": "shed"}), (200, {"ok": 1})]
        )
        assert client.simulate({"dataset": "cora"}) == {"ok": 1}
        assert len(transport.calls) == 3
        assert len(sleeps) == 2

    def test_retries_transport_errors(self):
        client, transport, sleeps = make_client(
            [ConnectionRefusedError("nope"), (200, {"ok": 1})]
        )
        assert client.simulate({"dataset": "cora"}) == {"ok": 1}
        assert len(sleeps) == 1

    def test_retries_503_during_drain(self):
        client, transport, _ = make_client(
            [(503, {"error": "draining"}), (200, {"ok": 1})]
        )
        assert client.simulate({"dataset": "cora"}) == {"ok": 1}

    def test_gives_up_after_budget(self):
        client, transport, sleeps = make_client(
            [(429, {"error": "shed"})] * 3, retries=2
        )
        with pytest.raises(ServiceUnavailable, match="HTTP 429"):
            client.simulate({"dataset": "cora"})
        assert len(transport.calls) == 3  # initial + 2 retries
        assert len(sleeps) == 2

    def test_400_never_retried(self):
        client, transport, sleeps = make_client([(400, {"error": "unknown field"})])
        with pytest.raises(RequestFailed, match="400"):
            client.simulate({"dataset": "cora"})
        assert len(transport.calls) == 1
        assert sleeps == []

    def test_500_never_retried(self):
        """A deterministic simulation failure repeats; retrying adds load."""
        client, transport, _ = make_client([(500, {"error": "KeyError: x"})])
        with pytest.raises(RequestFailed, match="500"):
            client.simulate({"dataset": "cora"})
        assert len(transport.calls) == 1

    def test_rejects_negative_retries(self):
        with pytest.raises(ValueError):
            ServeClient(retries=-1)


class TestBackoff:
    def test_exponential_growth_with_jitter(self):
        client, _, sleeps = make_client(
            [(429, {})] * 4 + [(200, {})],
            retries=4,
            backoff=0.1,
            backoff_cap=100.0,
            jitter=0.0,
        )
        client.simulate({"dataset": "cora"})
        assert sleeps == pytest.approx([0.1, 0.2, 0.4, 0.8])

    def test_backoff_is_capped(self):
        client, _, sleeps = make_client(
            [(429, {})] * 4 + [(200, {})],
            retries=4,
            backoff=0.1,
            backoff_cap=0.25,
            jitter=0.0,
        )
        client.simulate({"dataset": "cora"})
        assert max(sleeps) <= 0.25

    def test_jitter_inflates_within_bounds(self):
        client, _, sleeps = make_client(
            [(429, {}), (200, {})], backoff=0.1, jitter=0.5
        )
        client.simulate({"dataset": "cora"})
        assert 0.1 <= sleeps[0] <= 0.15


class TestRetryAfter:
    """The server's Retry-After hint overrides computed backoff."""

    def test_header_overrides_backoff(self):
        client, _, sleeps = make_client(
            [(429, {}, {"retry-after": "1.500"}), (200, {})],
            backoff=0.05,
            jitter=0.0,
        )
        client.simulate({"dataset": "cora"})
        assert sleeps == [1.5]

    def test_header_honored_on_503_too(self):
        client, _, sleeps = make_client(
            [(503, {"error": "draining"}, {"retry-after": "0.25"}), (200, {})],
            jitter=0.0,
        )
        client.simulate({"dataset": "cora"})
        assert sleeps == [0.25]

    def test_absent_header_falls_back_to_backoff(self):
        client, _, sleeps = make_client(
            [(429, {}, {}), (200, {})], backoff=0.1, jitter=0.0
        )
        client.simulate({"dataset": "cora"})
        assert sleeps == [0.1]

    def test_unparseable_header_falls_back_to_backoff(self):
        client, _, sleeps = make_client(
            [(429, {}, {"retry-after": "Fri, 07 Aug 2026 09:00:00 GMT"}),
             (200, {})],
            backoff=0.1,
            jitter=0.0,
        )
        client.simulate({"dataset": "cora"})
        assert sleeps == [0.1]

    def test_negative_header_falls_back_to_backoff(self):
        client, _, sleeps = make_client(
            [(429, {}, {"retry-after": "-3"}), (200, {})],
            backoff=0.1,
            jitter=0.0,
        )
        client.simulate({"dataset": "cora"})
        assert sleeps == [0.1]

    def test_two_tuple_transport_still_works(self):
        """Legacy fakes returning (status, payload) keep working."""
        client, _, sleeps = make_client(
            [(429, {}), (200, {})], backoff=0.1, jitter=0.0
        )
        client.simulate({"dataset": "cora"})
        assert sleeps == [0.1]

    def test_capped_at_remaining_deadline(self):
        """A hint longer than the budget is clamped, not obeyed."""
        client, _, sleeps = make_client(
            [(429, {}, {"retry-after": "3600"}), (200, {})],
            jitter=0.0,
        )
        client.call("POST", "/simulate", {"dataset": "cora"}, deadline=5.0)
        assert len(sleeps) == 1
        assert sleeps[0] <= 5.0


class TestDeadline:
    def test_deadline_header_propagates(self):
        client, transport, _ = make_client([(200, {})])
        client.simulate({"dataset": "cora"}, deadline=5.0)
        header = transport.calls[0]["headers"]["X-Repro-Deadline"]
        assert 0.0 < float(header) <= 5.0

    def test_no_header_without_deadline(self):
        client, transport, _ = make_client([(200, {})])
        client.simulate({"dataset": "cora"})
        assert "X-Repro-Deadline" not in transport.calls[0]["headers"]

    def test_exhausted_deadline_raises(self):
        client, transport, _ = make_client([(429, {})] * 100, retries=100)
        with pytest.raises(DeadlineExceeded):
            client.simulate({"dataset": "cora"}, deadline=0.0)

    def test_attempt_timeout_capped_by_deadline(self):
        client, transport, _ = make_client([(200, {})], timeout=30.0)
        client.simulate({"dataset": "cora"}, deadline=1.0)
        assert transport.calls[0]["timeout"] <= 1.0


class TestEndpoints:
    def test_healthz_and_stats(self):
        client, transport, _ = make_client(
            [(200, {"status": "ok"}), (200, {"latency": {}})]
        )
        assert client.healthz() == {"status": "ok"}
        assert client.stats() == {"latency": {}}
        assert [c["path"] for c in transport.calls] == ["/healthz", "/stats"]

    def test_simulate_posts_json(self):
        client, transport, _ = make_client([(200, {})])
        client.simulate({"dataset": "cora"})
        call = transport.calls[0]
        assert call["method"] == "POST"
        assert call["path"] == "/simulate"
        assert call["headers"]["Content-Type"] == "application/json"
