"""Tests for the minimal HTTP/1.1 wire layer."""

import asyncio
import json

import pytest

from repro.serve.http import (
    HTTPError,
    HTTPRequest,
    read_request,
    render_response,
)


def parse(raw: bytes) -> HTTPRequest | None:
    async def run():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(run())


class TestReadRequest:
    def test_get_without_body(self):
        req = parse(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
        assert req.method == "GET"
        assert req.path == "/healthz"
        assert req.headers["host"] == "x"
        assert req.body == b""

    def test_post_with_json_body(self):
        body = b'{"dataset": "cora"}'
        raw = (
            b"POST /simulate HTTP/1.1\r\n"
            b"Content-Type: application/json\r\n"
            + f"Content-Length: {len(body)}\r\n\r\n".encode()
            + body
        )
        req = parse(raw)
        assert req.method == "POST"
        assert req.json() == {"dataset": "cora"}

    def test_header_names_lowercased(self):
        req = parse(b"GET / HTTP/1.1\r\nX-Repro-Deadline: 1.5\r\n\r\n")
        assert req.headers["x-repro-deadline"] == "1.5"

    def test_eof_returns_none(self):
        assert parse(b"") is None

    def test_malformed_request_line(self):
        with pytest.raises(HTTPError):
            parse(b"GARBAGE\r\n\r\n")

    def test_unsupported_version(self):
        with pytest.raises(HTTPError):
            parse(b"GET / SPDY/3\r\n\r\n")

    def test_bad_content_length(self):
        with pytest.raises(HTTPError):
            parse(b"POST / HTTP/1.1\r\nContent-Length: banana\r\n\r\nx")

    def test_oversized_content_length(self):
        with pytest.raises(HTTPError):
            parse(b"POST / HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n")

    def test_truncated_body(self):
        with pytest.raises(HTTPError):
            parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc")

    def test_malformed_header_line(self):
        with pytest.raises(HTTPError):
            parse(b"GET / HTTP/1.1\r\nnocolonhere\r\n\r\n")

    def test_overlong_request_line_is_http_error(self):
        """A request line past the stream limit maps to 400, not a crash.

        Regression: ``StreamReader.readline`` reports a limit overrun as
        a bare ``ValueError``, which used to escape ``read_request`` and
        kill the connection without a response.
        """

        async def run():
            reader = asyncio.StreamReader(limit=256)
            reader.feed_data(b"GET /" + b"a" * 1024 + b" HTTP/1.1\r\n\r\n")
            reader.feed_eof()
            return await read_request(reader)

        with pytest.raises(HTTPError):
            asyncio.run(run())

    def test_overlong_header_line_is_http_error(self):
        async def run():
            reader = asyncio.StreamReader(limit=256)
            reader.feed_data(
                b"GET / HTTP/1.1\r\nX-Big: " + b"a" * 1024 + b"\r\n\r\n"
            )
            reader.feed_eof()
            return await read_request(reader)

        with pytest.raises(HTTPError):
            asyncio.run(run())


class TestBodyJson:
    def test_empty_body_rejected(self):
        req = HTTPRequest("POST", "/simulate")
        with pytest.raises(HTTPError):
            req.json()

    def test_non_object_rejected(self):
        req = HTTPRequest("POST", "/simulate", body=b"[1, 2]")
        with pytest.raises(HTTPError):
            req.json()

    def test_invalid_json_rejected(self):
        req = HTTPRequest("POST", "/simulate", body=b"{nope")
        with pytest.raises(HTTPError):
            req.json()


class TestRenderResponse:
    def test_roundtrip_shape(self):
        raw = render_response(200, {"ok": True})
        head, _, body = raw.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK\r\n")
        assert b"Content-Type: application/json" in head
        assert b"Connection: close" in head
        assert json.loads(body) == {"ok": True}

    def test_content_length_matches_body(self):
        raw = render_response(429, {"error": "shed"})
        head, _, body = raw.partition(b"\r\n\r\n")
        for line in head.split(b"\r\n"):
            if line.lower().startswith(b"content-length:"):
                assert int(line.split(b":")[1]) == len(body)
                break
        else:  # pragma: no cover
            raise AssertionError("no Content-Length header")

    def test_extra_headers(self):
        raw = render_response(200, {}, headers={"X-Extra": "1"})
        assert b"X-Extra: 1" in raw
