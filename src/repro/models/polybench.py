"""PolyBench kernel models used as the paper's phase workloads.

§VI-A maps each GNN execution phase onto PolyBench operators:

* Edge update — ``gramschmidt`` (orthogonalisation), ``mvt``
  (matrix-vector product), ``gemver`` (vector addition), ``gesummv``
  (vector-vector multiplication), plus ReLU;
* Aggregation — ``gemver`` (vector addition);
* Vertex update — ``mvt`` + ReLU.

Each kernel is provided twice: as an analytical op/traffic count (what the
simulator charges) and as an executable NumPy kernel (what tests validate
the counts against by instrumented element counting).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "KernelCost",
    "gramschmidt_cost",
    "mvt_cost",
    "gemver_cost",
    "gesummv_cost",
    "gramschmidt",
    "mvt",
    "gemver_add",
    "gesummv_mul",
    "PHASE_KERNELS",
]


@dataclass(frozen=True)
class KernelCost:
    """FLOPs and memory element-touches of one kernel invocation."""

    name: str
    flops: int
    reads: int
    writes: int

    @property
    def elements_touched(self) -> int:
        return self.reads + self.writes


def gramschmidt_cost(n: int, k: int) -> KernelCost:
    """Gram-Schmidt orthogonalisation of ``k`` vectors of length ``n``.

    For each vector j: project against the j previous vectors (dot 2n +
    axpy 2n each) and normalise (2n + n).  Total ≈ sum_j (4n·j + 3n).
    """
    if n < 1 or k < 1:
        raise ValueError("dimensions must be >= 1")
    flops = sum(4 * n * j + 3 * n for j in range(k))
    reads = sum(2 * n * j + n for j in range(k))
    writes = n * k
    return KernelCost("gramschmidt", flops, reads, writes)


def mvt_cost(rows: int, cols: int) -> KernelCost:
    """Matrix-vector product ``y = A x``: 2·rows·cols FLOPs."""
    if rows < 1 or cols < 1:
        raise ValueError("dimensions must be >= 1")
    return KernelCost("mvt", 2 * rows * cols, rows * cols + cols, rows)


def gemver_cost(n: int) -> KernelCost:
    """Vector addition ``z = x + y``: n FLOPs."""
    if n < 1:
        raise ValueError("n must be >= 1")
    return KernelCost("gemver", n, 2 * n, n)


def gesummv_cost(n: int) -> KernelCost:
    """Element-wise vector multiply ``z = x * y``: n FLOPs."""
    if n < 1:
        raise ValueError("n must be >= 1")
    return KernelCost("gesummv", n, 2 * n, n)


# ---------------------------------------------------------------------------
# Executable kernels (validation oracles for the costs above)
# ---------------------------------------------------------------------------

def gramschmidt(vectors: np.ndarray) -> np.ndarray:
    """Orthonormalise the rows of ``vectors`` (k, n) via modified G-S."""
    v = np.array(vectors, dtype=np.float64, copy=True)
    if v.ndim != 2:
        raise ValueError("vectors must be 2-D (k, n)")
    k = v.shape[0]
    for j in range(k):
        for i in range(j):
            v[j] -= (v[i] @ v[j]) * v[i]
        norm = np.linalg.norm(v[j])
        if norm > 1e-12:
            v[j] /= norm
    return v


def mvt(a: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Matrix-vector product."""
    return np.asarray(a) @ np.asarray(x)


def gemver_add(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Vector addition."""
    return np.asarray(x) + np.asarray(y)


def gesummv_mul(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Element-wise vector multiply."""
    return np.asarray(x) * np.asarray(y)


# Phase → kernel names, as listed in §VI-A.
PHASE_KERNELS: dict[str, tuple[str, ...]] = {
    "edge_update": ("gramschmidt", "mvt", "gemver", "gesummv", "relu"),
    "aggregation": ("gemver",),
    "vertex_update": ("mvt", "relu"),
}
