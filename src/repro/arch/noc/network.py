"""Cycle-level flit simulator for the flexible NoC.

Drives a grid of :class:`Router` nodes over a
:class:`FlexibleMeshTopology`.  Packets are injected with a byte size,
split into flits of ``flit_bytes``, routed deterministically at injection
(RC), and advanced one link hop per cycle under credit-based backpressure
and per-output round-robin arbitration.

The simulator reports the paper's on-chip communication metrics: total
cycles to drain the traffic, per-packet latency distribution, flit-hops
(mesh vs bypass), and stall counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...config import NoCConfig
from .packet import Flit, Packet
from .router import INJECT_PORT, Router
from .routing import compute_route
from .topology import FlexibleMeshTopology

__all__ = ["NoCStats", "NoCSimulator"]


@dataclass
class NoCStats:
    """Aggregated results of a simulation run."""

    cycles: int = 0
    packets_delivered: int = 0
    flits_delivered: int = 0
    total_packet_latency: int = 0
    max_packet_latency: int = 0
    mesh_flit_hops: int = 0
    bypass_flit_hops: int = 0
    stall_events: int = 0

    @property
    def avg_packet_latency(self) -> float:
        if self.packets_delivered == 0:
            return 0.0
        return self.total_packet_latency / self.packets_delivered

    @property
    def total_flit_hops(self) -> int:
        return self.mesh_flit_hops + self.bypass_flit_hops


class NoCSimulator:
    """Flit-level network simulator over a flexible mesh."""

    def __init__(
        self,
        topology: FlexibleMeshTopology,
        config: NoCConfig | None = None,
    ) -> None:
        self.topology = topology
        self.config = config or NoCConfig()
        self.routers = [
            Router(n, self.config) for n in range(topology.num_nodes)
        ]
        self.cycle = 0
        self.stats = NoCStats()
        self._pending: list[Packet] = []  # injected, not fully delivered
        self._next_pid = 0
        self._tails_remaining: dict[int, int] = {}  # pid -> flits not ejected
        self._bypass_pairs = self._collect_bypass_pairs()

    # ------------------------------------------------------------------
    def _collect_bypass_pairs(self) -> set[frozenset[int]]:
        pairs = set()
        for seg in self.topology.bypass_segments:
            a, b = self.topology.segment_endpoints(seg)
            pairs.add(frozenset((a, b)))
        return pairs

    def refresh_configuration(self) -> None:
        """Re-read the topology's bypass segments (after reconfiguration)."""
        self._bypass_pairs = self._collect_bypass_pairs()

    def _is_bypass_hop(self, a: int, b: int) -> bool:
        return frozenset((a, b)) in self._bypass_pairs

    # ------------------------------------------------------------------
    def inject(
        self,
        src: int,
        dst: int,
        size_bytes: int,
        *,
        cycle: int | None = None,
        allow_bypass: bool = True,
    ) -> Packet:
        """Inject one packet at ``src`` destined for ``dst``."""
        when = self.cycle if cycle is None else cycle
        if when < self.cycle:
            raise ValueError("cannot inject in the past")
        route = compute_route(self.topology, src, dst, allow_bypass=allow_bypass)
        packet = Packet(
            pid=self._next_pid,
            src=src,
            dst=dst,
            size_bytes=size_bytes,
            inject_cycle=when,
            route=route,
        )
        self._next_pid += 1
        packet.num_flits = max(1, -(-size_bytes // self.config.flit_bytes))
        self._tails_remaining[packet.pid] = packet.num_flits
        router = self.routers[src]
        for i in range(packet.num_flits):
            flit = Flit(packet=packet, index=i, hop=0, ready_cycle=when)
            router.input_port(INJECT_PORT).queue.append(flit)
        self._pending.append(packet)
        return packet

    # ------------------------------------------------------------------
    def step(self) -> None:
        """Advance the network by one cycle."""
        now = self.cycle
        # Collect all desired moves first so a flit moved this cycle is not
        # moved twice, then apply them. Moves are (router, upstream, flit).
        moves: list[tuple[Router, int, Flit, int]] = []
        ejections: list[tuple[Router, int]] = []
        for router in self.routers:
            wants = router.heads_by_output(now)
            for output, contenders in wants.items():
                upstream = router.arbitrate(output, contenders)
                if output == router.node_id:
                    ejections.append((router, upstream))
                else:
                    moves.append((router, upstream, router.inputs[upstream].queue[0], output))

        # Apply ejections (unbounded ejection ports: the PE's reuse FIFO
        # absorbs one flit per cycle, matching the single local port).
        for router, upstream in ejections:
            flit = router.pop_head(upstream)
            router.flits_ejected += 1
            self.stats.flits_delivered += 1
            pid = flit.packet.pid
            self._tails_remaining[pid] -= 1
            if self._tails_remaining[pid] == 0:
                flit.packet.done_cycle = now + 1
                latency = flit.packet.done_cycle - flit.packet.inject_cycle
                self.stats.packets_delivered += 1
                self.stats.total_packet_latency += latency
                self.stats.max_packet_latency = max(
                    self.stats.max_packet_latency, latency
                )

        # Apply forwards with backpressure.
        for router, upstream, flit, output in moves:
            target = self.routers[output]
            port = target.input_port(router.node_id)
            if not port.has_space:
                router.stall_cycles += 1
                self.stats.stall_events += 1
                continue
            router.pop_head(upstream)
            is_bypass = self._is_bypass_hop(router.node_id, output)
            hop_latency = (
                self.config.bypass_segment_latency
                if is_bypass
                else self.config.link_latency
            )
            flit.hop += 1
            flit.ready_cycle = now + self.config.router_pipeline_stages + hop_latency
            port.queue.append(flit)
            router.flits_forwarded += 1
            if is_bypass:
                self.stats.bypass_flit_hops += 1
            else:
                self.stats.mesh_flit_hops += 1

        self.cycle += 1
        self.stats.cycles = self.cycle

        # Drop finished packets from the pending list lazily.
        if len(self._pending) > 256:
            self._pending = [p for p in self._pending if p.done_cycle is None]

    def run(self, *, max_cycles: int = 1_000_000) -> NoCStats:
        """Run until every injected packet is delivered (or the limit)."""
        while not self.all_delivered():
            if self.cycle >= max_cycles:
                raise RuntimeError(
                    f"NoC did not drain within {max_cycles} cycles "
                    f"({self.undelivered()} packets outstanding)"
                )
            self.step()
        return self.stats

    # ------------------------------------------------------------------
    def all_delivered(self) -> bool:
        return all(v == 0 for v in self._tails_remaining.values())

    def undelivered(self) -> int:
        return sum(1 for v in self._tails_remaining.values() if v > 0)
