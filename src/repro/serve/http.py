"""Minimal HTTP/1.1 on asyncio streams — just enough for the service.

The service speaks a deliberately tiny dialect (one JSON request, one
JSON response, ``Connection: close``) so the whole wire layer stays
stdlib-only and auditable: no routing framework, no chunked encoding,
no keep-alive state machine.  Anything the parser does not understand
raises :class:`HTTPError`, which the server maps to a 400.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field

__all__ = [
    "HTTPError",
    "HTTPRequest",
    "RawResponse",
    "read_request",
    "render_bytes",
    "render_response",
    "render_text",
    "STATUS_REASONS",
]

#: Upper bound on a request body; a simulation spec is a few hundred
#: bytes, so anything near this is hostile or broken.
MAX_BODY_BYTES = 1 << 20
MAX_HEADER_BYTES = 16 << 10

STATUS_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class HTTPError(ValueError):
    """A request the wire layer refuses to parse (maps to 400)."""


@dataclass
class HTTPRequest:
    """One parsed request: line, lower-cased headers, raw body."""

    method: str
    path: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> dict:
        """Decode the body as a JSON object (:class:`HTTPError` if not)."""
        if not self.body:
            raise HTTPError("request body is empty (expected a JSON object)")
        try:
            data = json.loads(self.body)
        except json.JSONDecodeError as exc:
            raise HTTPError(f"request body is not valid JSON: {exc}") from None
        if not isinstance(data, dict):
            raise HTTPError("request body must be a JSON object")
        return data


async def _readline(reader: asyncio.StreamReader) -> bytes:
    """``readline`` with over-long lines mapped to :class:`HTTPError`.

    ``StreamReader.readline`` reports a line exceeding the stream limit
    as a bare ``ValueError`` (it swallows the ``LimitOverrunError``), so
    without this wrapper a hostile request line escapes the 400 path.
    """
    try:
        return await reader.readline()
    except asyncio.LimitOverrunError:
        raise HTTPError("line exceeds the size limit") from None
    except HTTPError:
        raise
    except ValueError:
        raise HTTPError("line exceeds the size limit") from None


async def read_request(reader: asyncio.StreamReader) -> HTTPRequest | None:
    """Parse one request off ``reader``; ``None`` on a clean EOF."""
    try:
        raw_line = await _readline(reader)
    except ConnectionError:
        return None
    if not raw_line:
        return None
    parts = raw_line.decode("latin-1").strip().split()
    if len(parts) != 3:
        raise HTTPError(f"malformed request line: {raw_line!r}")
    method, path, version = parts
    if not version.startswith("HTTP/1."):
        raise HTTPError(f"unsupported protocol version: {version}")

    headers: dict[str, str] = {}
    header_bytes = 0
    while True:
        raw = await _readline(reader)
        if raw in (b"\r\n", b"\n"):
            break
        if not raw:
            raise HTTPError("connection closed mid-headers")
        header_bytes += len(raw)
        if header_bytes > MAX_HEADER_BYTES:
            raise HTTPError("headers exceed the size limit")
        name, sep, value = raw.decode("latin-1").partition(":")
        if not sep:
            raise HTTPError(f"malformed header line: {raw!r}")
        headers[name.strip().lower()] = value.strip()

    length_text = headers.get("content-length", "0") or "0"
    try:
        length = int(length_text)
    except ValueError:
        raise HTTPError(f"bad Content-Length: {length_text!r}") from None
    if length < 0 or length > MAX_BODY_BYTES:
        raise HTTPError(f"Content-Length out of range: {length}")
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise HTTPError("connection closed mid-body") from None
    return HTTPRequest(method.upper(), path, headers, body)


def _render(
    status: int,
    body: bytes,
    content_type: str,
    headers: dict[str, str] | None,
) -> bytes:
    reason = STATUS_REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


def render_response(
    status: int, payload: dict, *, headers: dict[str, str] | None = None
) -> bytes:
    """One complete ``Connection: close`` JSON response as bytes."""
    body = (json.dumps(payload) + "\n").encode()
    return _render(status, body, "application/json", headers)


def render_text(
    status: int,
    text: str,
    *,
    content_type: str = "text/plain; version=0.0.4; charset=utf-8",
    headers: dict[str, str] | None = None,
) -> bytes:
    """A plaintext response (the Prometheus ``/metrics`` exposition)."""
    return _render(status, text.encode("utf-8"), content_type, headers)


@dataclass
class RawResponse:
    """A handler payload served byte-for-byte with its content type.

    The dispatch convention maps dict payloads to JSON and str payloads
    to plaintext; static assets (the observer dashboard) need neither,
    so handlers wrap them in this instead.
    """

    body: bytes
    content_type: str = "application/octet-stream"


def render_bytes(
    status: int,
    body: bytes,
    content_type: str,
    *,
    headers: dict[str, str] | None = None,
) -> bytes:
    """A complete response around an opaque body (static assets)."""
    return _render(status, body, content_type, headers)
