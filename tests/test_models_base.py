"""Unit tests for the GNN model abstractions."""

import pytest

from repro.models import GNNModel, ModelCategory, OpKind, Phase, PhaseOp, PhaseSpec


class TestOpKind:
    def test_ppu_ops(self):
        assert OpKind.ACTIVATION.is_ppu
        assert OpKind.CONCAT.is_ppu
        assert not OpKind.MATRIX_VECTOR.is_ppu

    def test_reductions(self):
        assert OpKind.ACCUMULATE.is_reduction
        assert OpKind.MAX_REDUCE.is_reduction
        assert not OpKind.DOT.is_reduction

    def test_values_match_table_notation(self):
        assert OpKind.MATRIX_VECTOR.value == "MxV"
        assert OpKind.SCALAR_VECTOR.value == "SxV"
        assert OpKind.ACCUMULATE.value == "SumV"


class TestPhaseOp:
    def test_defaults(self):
        op = PhaseOp(OpKind.DOT)
        assert op.per == "edge"
        assert op.repeat == 1

    def test_rejects_bad_domain(self):
        with pytest.raises(ValueError, match="per"):
            PhaseOp(OpKind.DOT, per="graph")

    def test_rejects_bad_repeat(self):
        with pytest.raises(ValueError, match="repeat"):
            PhaseOp(OpKind.DOT, repeat=0)


class TestPhaseSpec:
    def test_null_phase(self):
        spec = PhaseSpec(Phase.EDGE_UPDATE)
        assert spec.is_null
        assert spec.op_kinds() == ()

    def test_op_kinds_order(self):
        spec = PhaseSpec(
            Phase.VERTEX_UPDATE,
            (PhaseOp(OpKind.MATRIX_VECTOR, per="vertex"), PhaseOp(OpKind.ACTIVATION, per="vertex")),
        )
        assert spec.op_kinds() == (OpKind.MATRIX_VECTOR, OpKind.ACTIVATION)


class TestGNNModel:
    def _mk(self, edge_ops=(), agg_ops=None, vert_ops=()):
        if agg_ops is None:
            agg_ops = (PhaseOp(OpKind.ACCUMULATE),)
        return GNNModel(
            name="test",
            category=ModelCategory.C_GNN,
            edge_update=PhaseSpec(Phase.EDGE_UPDATE, tuple(edge_ops)),
            aggregation=PhaseSpec(Phase.AGGREGATION, tuple(agg_ops)),
            vertex_update=PhaseSpec(Phase.VERTEX_UPDATE, tuple(vert_ops)),
        )

    def test_phase_tags_enforced(self):
        with pytest.raises(ValueError, match="edge_update"):
            GNNModel(
                name="bad",
                category=ModelCategory.C_GNN,
                edge_update=PhaseSpec(Phase.AGGREGATION),
                aggregation=PhaseSpec(Phase.AGGREGATION, (PhaseOp(OpKind.ACCUMULATE),)),
                vertex_update=PhaseSpec(Phase.VERTEX_UPDATE),
            )

    def test_aggregation_required(self):
        with pytest.raises(ValueError, match="aggregates"):
            self._mk(agg_ops=())

    def test_active_phases_all(self):
        m = self._mk(
            edge_ops=(PhaseOp(OpKind.SCALAR_VECTOR),),
            vert_ops=(PhaseOp(OpKind.MATRIX_VECTOR, per="vertex"),),
        )
        assert m.active_phases() == (
            Phase.EDGE_UPDATE,
            Phase.AGGREGATION,
            Phase.VERTEX_UPDATE,
        )

    def test_active_phases_aggregation_only(self):
        m = self._mk()
        assert m.active_phases() == (Phase.AGGREGATION,)
        assert not m.has_edge_update
        assert not m.has_vertex_update

    def test_required_op_kinds_union(self):
        m = self._mk(
            edge_ops=(PhaseOp(OpKind.DOT),),
            vert_ops=(PhaseOp(OpKind.MATRIX_VECTOR, per="vertex"),),
        )
        kinds = m.required_op_kinds()
        assert OpKind.DOT in kinds
        assert OpKind.ACCUMULATE in kinds
        assert OpKind.MATRIX_VECTOR in kinds

    def test_phase_spec_lookup(self):
        m = self._mk()
        assert m.phase_spec(Phase.AGGREGATION) is m.aggregation
