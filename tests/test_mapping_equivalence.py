"""Vectorized mapping ≡ reference implementation, bit for bit.

The PR-2 perf work rewrote :func:`repro.mapping.degree_aware_map`'s
per-vertex placement loops (and the bit-serial Morton interleave) as
whole-array NumPy operations.  The contract is *bit identity*: every
field of the returned :class:`MappingResult` must match what the original
loop-based algorithm produced, for every input.  The original
implementation is preserved below as ``_reference_degree_aware_map`` /
``_reference_hashing_map`` (verbatim from the pre-refactor module, minus
imports) and compared against the shipped versions across random graphs,
degenerate regions, and empty graphs.
"""

import numpy as np
import pytest

from repro.arch.noc.topology import BypassSegment
from repro.graphs.csr import CSRGraph
from repro.graphs.generators import (
    grid_graph,
    power_law_graph,
    star_graph,
    uniform_random_graph,
)
from repro.mapping.base import MappingResult, PERegion
from repro.mapping.degree_aware import degree_aware_map
from repro.mapping.hashing import hashing_map
from repro.mapping.nqueen import fixed_pattern, solve_n_queens

# ---------------------------------------------------------------------------
# Reference implementations: the pre-vectorization originals, kept verbatim.
# ---------------------------------------------------------------------------


def _reference_morton(x, y, bits=8):
    code = np.zeros(x.shape, dtype=np.int64)
    for b in range(bits):
        code |= ((x >> b) & 1) << (2 * b)
        code |= ((y >> b) & 1) << (2 * b + 1)
    return code


def _reference_zorder_nodes(region):
    nodes = region.node_ids()
    k = region.array_k
    x = nodes % k - region.x0
    y = nodes // k - region.y0
    order = np.argsort(_reference_morton(x, y), kind="stable")
    return nodes[order].tolist()


def _reference_select_s_pes(region, use_backtracking):
    k = min(region.width, region.height)
    pattern = solve_n_queens(k) if use_backtracking else fixed_pattern(k)
    nodes = []
    for row, col in pattern:
        if row < region.height and col < region.width:
            nodes.append(region.local_to_node(row * region.width + col))
    return nodes


def _reference_degree_aware_map(
    graph, region, *, pe_vertex_capacity, use_backtracking=False
):
    if pe_vertex_capacity < 1:
        raise ValueError("pe_vertex_capacity must be >= 1")
    n = graph.num_vertices
    if n == 0:
        return MappingResult(
            policy="degree-aware",
            region=region,
            vertex_to_pe=np.empty(0, dtype=np.int64),
        )
    total_capacity = region.num_pes * pe_vertex_capacity
    if n > total_capacity:
        raise ValueError("tile exceeds region capacity")

    s_pe_nodes = _reference_select_s_pes(region, use_backtracking)

    k_eff = min(region.width, region.height)
    n_hn = min(
        (k_eff - 1) * pe_vertex_capacity, n, len(s_pe_nodes) * pe_vertex_capacity
    )
    degrees = graph.degrees + graph.in_degrees
    order = np.lexsort((np.arange(n), -degrees))
    high = order[:n_hn]
    low = np.setdiff1d(np.arange(n, dtype=np.int64), high, assume_unique=False)

    vertex_to_pe = np.empty(n, dtype=np.int64)

    remaining = np.full(region.array_k * region.array_k, 0, dtype=np.int64)
    for node in region.node_ids():
        remaining[node] = pe_vertex_capacity
    if len(s_pe_nodes):
        for i, v in enumerate(high):
            node = s_pe_nodes[i % len(s_pe_nodes)]
            vertex_to_pe[v] = node
            remaining[node] -= 1
    else:  # pragma: no cover
        low = order

    fill_nodes = _reference_zorder_nodes(region)
    cursor = 0
    for v in low:
        while remaining[fill_nodes[cursor]] <= 0:
            cursor = (cursor + 1) % len(fill_nodes)
        node = fill_nodes[cursor]
        vertex_to_pe[v] = node
        remaining[node] -= 1

    segments = []
    k = region.array_k
    used_rows = set()
    used_cols = set()
    for node in s_pe_nodes:
        x, y = node % k, node // k
        if y not in used_rows and region.width > 1:
            segments.append(BypassSegment("row", y, region.x0, region.x1 - 1))
            used_rows.add(y)
        if x not in used_cols and region.height > 1:
            segments.append(BypassSegment("col", x, region.y0, region.y1 - 1))
            used_cols.add(x)

    return MappingResult(
        policy="degree-aware",
        region=region,
        vertex_to_pe=vertex_to_pe,
        s_pe_nodes=tuple(s_pe_nodes),
        high_degree_vertices=tuple(int(v) for v in high),
        bypass_segments=tuple(segments),
        algorithm_cycles=100,
    )


def _reference_hashing_map(graph, region, *, pe_vertex_capacity=None, stride=1):
    if stride < 1:
        raise ValueError("stride must be >= 1")
    n = graph.num_vertices
    if pe_vertex_capacity is not None and n > region.num_pes * pe_vertex_capacity:
        raise ValueError("tile exceeds region capacity")
    nodes = region.node_ids()
    if n == 0:
        v2p = np.empty(0, dtype=np.int64)
    else:
        v2p = nodes[(np.arange(n, dtype=np.int64) * stride) % region.num_pes]
    return MappingResult(
        policy="hashing",
        region=region,
        vertex_to_pe=v2p,
        algorithm_cycles=0,
    )


# ---------------------------------------------------------------------------
# Equality helper
# ---------------------------------------------------------------------------


def assert_mappings_identical(got: MappingResult, want: MappingResult) -> None:
    assert got.policy == want.policy
    assert got.region == want.region
    assert got.vertex_to_pe.dtype == want.vertex_to_pe.dtype
    np.testing.assert_array_equal(got.vertex_to_pe, want.vertex_to_pe)
    assert got.s_pe_nodes == want.s_pe_nodes
    assert got.high_degree_vertices == want.high_degree_vertices
    assert got.bypass_segments == want.bypass_segments
    assert got.algorithm_cycles == want.algorithm_cycles


def empty_graph(num_features: int = 8) -> CSRGraph:
    return CSRGraph(
        np.zeros(1, dtype=np.int64),
        np.empty(0, dtype=np.int64),
        num_features=num_features,
        name="empty",
    )


def all_equal_degree_graph(n: int = 24) -> CSRGraph:
    """A ring: every vertex has identical in/out degree (tie-break stress)."""
    indptr = np.arange(n + 1, dtype=np.int64)
    indices = (np.arange(n, dtype=np.int64) + 1) % n
    return CSRGraph(indptr, indices, num_features=4, name="ring")


REGIONS = [
    PERegion(0, 0, 8, 8, 8),  # full 8x8 array
    PERegion(0, 0, 8, 4, 8),  # top half (the A region shape)
    PERegion(0, 4, 8, 8, 8),  # bottom half (offset origin)
    PERegion(2, 1, 7, 6, 8),  # non-square interior window
    PERegion(0, 0, 1, 1, 8),  # degenerate 1x1
    PERegion(3, 0, 4, 8, 8),  # single column
]

GRAPHS = [
    uniform_random_graph(60, 400, seed=1),
    uniform_random_graph(200, 1500, seed=2),
    power_law_graph(150, 1200, seed=3),
    power_law_graph(64, 600, seed=4),
    star_graph(40),
    grid_graph(8, 8),
    all_equal_degree_graph(),
]


@pytest.mark.parametrize("region", REGIONS, ids=lambda r: f"{r.width}x{r.height}@{r.x0},{r.y0}")
@pytest.mark.parametrize("graph", GRAPHS, ids=lambda g: g.name)
def test_degree_aware_matches_reference(graph, region):
    cap = max(1, -(-graph.num_vertices // region.num_pes))
    got = degree_aware_map(graph, region, pe_vertex_capacity=cap)
    want = _reference_degree_aware_map(graph, region, pe_vertex_capacity=cap)
    assert_mappings_identical(got, want)


@pytest.mark.parametrize("region", REGIONS, ids=lambda r: f"{r.width}x{r.height}@{r.x0},{r.y0}")
@pytest.mark.parametrize("graph", GRAPHS, ids=lambda g: g.name)
def test_hashing_matches_reference(graph, region):
    cap = max(1, -(-graph.num_vertices // region.num_pes))
    got = hashing_map(graph, region, pe_vertex_capacity=cap)
    want = _reference_hashing_map(graph, region, pe_vertex_capacity=cap)
    assert_mappings_identical(got, want)


@pytest.mark.parametrize("use_backtracking", [False, True])
def test_degree_aware_backtracking_matches_reference(use_backtracking):
    graph = power_law_graph(100, 800, seed=7)
    region = PERegion(0, 0, 8, 8, 8)
    cap = max(1, -(-graph.num_vertices // region.num_pes))
    got = degree_aware_map(
        graph, region, pe_vertex_capacity=cap, use_backtracking=use_backtracking
    )
    want = _reference_degree_aware_map(
        graph, region, pe_vertex_capacity=cap, use_backtracking=use_backtracking
    )
    assert_mappings_identical(got, want)


@pytest.mark.parametrize("region", REGIONS, ids=lambda r: f"{r.width}x{r.height}@{r.x0},{r.y0}")
def test_empty_graph_matches_reference(region):
    graph = empty_graph()
    got = degree_aware_map(graph, region, pe_vertex_capacity=1)
    want = _reference_degree_aware_map(graph, region, pe_vertex_capacity=1)
    assert_mappings_identical(got, want)
    got_h = hashing_map(graph, region, pe_vertex_capacity=1)
    want_h = _reference_hashing_map(graph, region, pe_vertex_capacity=1)
    assert_mappings_identical(got_h, want_h)


def test_tight_capacity_matches_reference():
    """Capacity exactly |V| / num_pes: every PE fills to the brim."""
    region = PERegion(0, 0, 4, 4, 8)
    graph = uniform_random_graph(64, 300, seed=9)  # 64 vertices / 16 PEs
    got = degree_aware_map(graph, region, pe_vertex_capacity=4)
    want = _reference_degree_aware_map(graph, region, pe_vertex_capacity=4)
    assert_mappings_identical(got, want)


def test_random_sweep_matches_reference():
    """Fuzz: random graphs x random subregions, seeds fixed for replay."""
    rng = np.random.default_rng(123)
    for trial in range(20):
        n = int(rng.integers(1, 120))
        m = int(rng.integers(0, max(1, min(4 * n, n * n))))
        graph = uniform_random_graph(n, m, seed=int(rng.integers(1 << 30)))
        k = 8
        x0 = int(rng.integers(0, k - 1))
        y0 = int(rng.integers(0, k - 1))
        x1 = int(rng.integers(x0 + 1, k + 1))
        y1 = int(rng.integers(y0 + 1, k + 1))
        region = PERegion(x0, y0, x1, y1, k)
        cap = max(1, -(-n // region.num_pes))
        got = degree_aware_map(graph, region, pe_vertex_capacity=cap)
        want = _reference_degree_aware_map(graph, region, pe_vertex_capacity=cap)
        assert_mappings_identical(got, want)
