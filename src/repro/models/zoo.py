"""The GNN model zoo — every row of the paper's Table II.

Each model is expressed as the primitive ops its three phases perform, so
the adaptive workflow generator can derive its workflow and the workload
extractor its op counts.  Models and their Table-II rows:

==================  ========  =====================================  ===========  ==================
Model               Category  Edge Update                            Aggregation  Vertex Update
==================  ========  =====================================  ===========  ==================
GCN                 C-GNN     Scalar×V                               ΣV           M×V, α
GraphSAGE-Mean      C-GNN     Null                                   ΣV           M×V
GIN                 C-GNN     Null                                   ΣV           M×V
CommNet             C-GNN     Null                                   ΣV           M×V
Vanilla-Attention   A-GNN     Scalar×V, V·V                          ΣV           M×V, α
AGNN                A-GNN     Scalar×V, V·V                          ΣV           M×V, α
G-GCN               MP-GNN    M×V, V⊙V, α                            ΣV           M×V, α
GraphSAGE-Pool      MP-GNN    M×V, α                                 MaxV         M×V, ||, α
EdgeConv-1          MP-GNN    M×V                                    MaxV         Null
EdgeConv-5          MP-GNN    M×V, α                                 MaxV         Null
==================  ========  =====================================  ===========  ==================
"""

from __future__ import annotations

from .base import (
    GNNModel,
    ModelCategory,
    OpKind,
    Phase,
    PhaseOp,
    PhaseSpec,
)

__all__ = [
    "GCN",
    "GRAPHSAGE_MEAN",
    "GIN",
    "COMMNET",
    "VANILLA_ATTENTION",
    "AGNN",
    "GGCN",
    "GRAPHSAGE_POOL",
    "EDGECONV_1",
    "EDGECONV_5",
    "MODEL_ZOO",
    "get_model",
    "list_models",
]


def _edge(*ops: PhaseOp) -> PhaseSpec:
    return PhaseSpec(Phase.EDGE_UPDATE, tuple(ops))


def _agg(*ops: PhaseOp) -> PhaseSpec:
    return PhaseSpec(Phase.AGGREGATION, tuple(ops))


def _vert(*ops: PhaseOp) -> PhaseSpec:
    return PhaseSpec(Phase.VERTEX_UPDATE, tuple(ops))


GCN = GNNModel(
    name="gcn",
    category=ModelCategory.C_GNN,
    edge_update=_edge(PhaseOp(OpKind.SCALAR_VECTOR, per="edge")),
    aggregation=_agg(PhaseOp(OpKind.ACCUMULATE, per="edge")),
    vertex_update=_vert(
        PhaseOp(OpKind.MATRIX_VECTOR, per="vertex"),
        PhaseOp(OpKind.ACTIVATION, per="vertex", uses_output_dim=True),
    ),
    description="Kipf & Welling GCN: degree-normalised sum + dense update + ReLU (Eq. 1).",
)

GRAPHSAGE_MEAN = GNNModel(
    name="graphsage-mean",
    category=ModelCategory.C_GNN,
    edge_update=_edge(),
    aggregation=_agg(PhaseOp(OpKind.ACCUMULATE, per="edge")),
    vertex_update=_vert(PhaseOp(OpKind.MATRIX_VECTOR, per="vertex")),
    description="GraphSAGE with mean aggregator: plain neighborhood mean + dense update.",
)

GIN = GNNModel(
    name="gin",
    category=ModelCategory.C_GNN,
    edge_update=_edge(),
    aggregation=_agg(PhaseOp(OpKind.ACCUMULATE, per="edge")),
    vertex_update=_vert(
        # MLP = two chained dense layers (Eq. 2); modelled as repeat=2.
        PhaseOp(OpKind.MATRIX_VECTOR, per="vertex", repeat=2),
    ),
    description="Graph Isomorphism Network: (1+eps)x + sum, then a 2-layer MLP (Eq. 2).",
)

COMMNET = GNNModel(
    name="commnet",
    category=ModelCategory.C_GNN,
    edge_update=_edge(),
    aggregation=_agg(PhaseOp(OpKind.ACCUMULATE, per="edge")),
    vertex_update=_vert(PhaseOp(OpKind.MATRIX_VECTOR, per="vertex")),
    description="CommNet-style mean-field communication: sum + dense update.",
)

VANILLA_ATTENTION = GNNModel(
    name="vanilla-attention",
    category=ModelCategory.A_GNN,
    edge_update=_edge(
        PhaseOp(OpKind.DOT, per="edge"),  # (x_v^T . x_u) attention score
        PhaseOp(OpKind.SCALAR_VECTOR, per="edge"),  # score * x_u
    ),
    aggregation=_agg(PhaseOp(OpKind.ACCUMULATE, per="edge")),
    vertex_update=_vert(
        PhaseOp(OpKind.MATRIX_VECTOR, per="vertex"),
        PhaseOp(OpKind.ACTIVATION, per="vertex", uses_output_dim=True),  # SoftMax
    ),
    uses_edge_embeddings=True,
    description="Dot-product attention aggregation + dense update + SoftMax (Eq. 3).",
)

AGNN = GNNModel(
    name="agnn",
    category=ModelCategory.A_GNN,
    edge_update=_edge(
        PhaseOp(OpKind.DOT, per="edge"),
        PhaseOp(OpKind.SCALAR_VECTOR, per="edge"),
    ),
    aggregation=_agg(PhaseOp(OpKind.ACCUMULATE, per="edge")),
    vertex_update=_vert(
        PhaseOp(OpKind.MATRIX_VECTOR, per="vertex"),
        PhaseOp(OpKind.ACTIVATION, per="vertex", uses_output_dim=True),
    ),
    uses_edge_embeddings=True,
    description="Attention-based GNN (Thekumparampil et al.): learned-scalar attention.",
)

GGCN = GNNModel(
    name="ggcn",
    category=ModelCategory.MP_GNN,
    edge_update=_edge(
        # sigma(W_u x_u + W_v x_v): two weight transforms per edge endpoint
        PhaseOp(OpKind.MATRIX_VECTOR, per="edge", repeat=2),
        PhaseOp(OpKind.ACTIVATION, per="edge"),
        PhaseOp(OpKind.ELEMENTWISE, per="edge"),  # gate ⊙ x_u
    ),
    aggregation=_agg(PhaseOp(OpKind.ACCUMULATE, per="edge")),
    vertex_update=_vert(
        PhaseOp(OpKind.MATRIX_VECTOR, per="vertex"),
        PhaseOp(OpKind.ACTIVATION, per="vertex", uses_output_dim=True),
    ),
    uses_edge_embeddings=True,
    description="Gated GCN: per-edge gating sigma(Wu xu + Wv xv) ⊙ xu (Eq. 4).",
)

GRAPHSAGE_POOL = GNNModel(
    name="graphsage-pool",
    category=ModelCategory.MP_GNN,
    edge_update=_edge(
        PhaseOp(OpKind.MATRIX_VECTOR, per="edge"),  # W_pl x_u per neighbor
        PhaseOp(OpKind.ACTIVATION, per="edge"),
    ),
    aggregation=_agg(PhaseOp(OpKind.MAX_REDUCE, per="edge")),
    vertex_update=_vert(
        PhaseOp(OpKind.CONCAT, per="vertex"),  # Concat(max-pool, x_v)
        PhaseOp(OpKind.MATRIX_VECTOR, per="vertex"),
        PhaseOp(OpKind.ACTIVATION, per="vertex", uses_output_dim=True),
    ),
    uses_edge_embeddings=True,
    description="GraphSAGE with max-pool aggregator (Eq. 5).",
)

EDGECONV_1 = GNNModel(
    name="edgeconv-1",
    category=ModelCategory.MP_GNN,
    edge_update=_edge(PhaseOp(OpKind.MATRIX_VECTOR, per="edge")),
    aggregation=_agg(PhaseOp(OpKind.MAX_REDUCE, per="edge")),
    vertex_update=_vert(),
    uses_edge_embeddings=True,
    description="EdgeConv (single transform): per-edge MLP + max aggregation, no vertex update.",
)

EDGECONV_5 = GNNModel(
    name="edgeconv-5",
    category=ModelCategory.MP_GNN,
    edge_update=_edge(
        PhaseOp(OpKind.MATRIX_VECTOR, per="edge", repeat=5),
        PhaseOp(OpKind.ACTIVATION, per="edge"),
    ),
    aggregation=_agg(PhaseOp(OpKind.MAX_REDUCE, per="edge")),
    vertex_update=_vert(),
    uses_edge_embeddings=True,
    description="EdgeConv with a 5-layer per-edge MLP, no vertex update.",
)


MODEL_ZOO: dict[str, GNNModel] = {
    m.name: m
    for m in (
        GCN,
        GRAPHSAGE_MEAN,
        GIN,
        COMMNET,
        VANILLA_ATTENTION,
        AGNN,
        GGCN,
        GRAPHSAGE_POOL,
        EDGECONV_1,
        EDGECONV_5,
    )
}


def list_models() -> list[str]:
    """Names of every registered model, in Table II order."""
    return list(MODEL_ZOO)


def get_model(name: str) -> GNNModel:
    """Look up a model by name (case-insensitive)."""
    key = name.lower()
    if key not in MODEL_ZOO:
        raise KeyError(f"unknown model {name!r}; available: {', '.join(MODEL_ZOO)}")
    return MODEL_ZOO[key]
