"""Tests for the cycle-tier calibration sweep (repro.eval.calibration)."""

import pytest

from repro.eval.calibration import (
    CalibrationJob,
    run_calibration_job,
    run_calibration_sweep,
)
from repro.runtime.cache import ResultCache


@pytest.fixture
def small_job():
    # Tiny tile so each execution stays fast.
    return CalibrationJob(num_vertices=40, num_edges=120, seed=1)


class TestCalibrationJob:
    def test_key_is_content_addressed(self, small_job):
        same = CalibrationJob(num_vertices=40, num_edges=120, seed=1)
        other = CalibrationJob(num_vertices=40, num_edges=120, seed=2)
        assert small_job.key == same.key
        assert small_job.key != other.key
        assert len(small_job.key) == 64  # hex sha256

    def test_key_covers_engine_choice(self, small_job):
        ref = CalibrationJob(
            num_vertices=40, num_edges=120, seed=1, noc_engine="reference"
        )
        assert small_job.key != ref.key

    def test_as_dict_round_trips_to_json(self, small_job):
        import json

        blob = json.dumps(small_job.as_dict(), sort_keys=True)
        assert json.loads(blob)["num_vertices"] == 40

    def test_validation(self):
        with pytest.raises(ValueError, match="array_k"):
            CalibrationJob(array_k=32)


class TestRunCalibrationJob:
    def test_payload_shape(self, small_job):
        payload = run_calibration_job(small_job)
        assert payload["measured"] > 0
        assert payload["predicted"] > 0
        assert payload["ratio"] == payload["predicted"] / payload["measured"]
        assert payload["packets"] > 0

    def test_engines_agree(self, small_job):
        """Event and reference engines measure the same tile identically."""
        ref_job = CalibrationJob(
            num_vertices=40, num_edges=120, seed=1, noc_engine="reference"
        )
        a = run_calibration_job(small_job)
        b = run_calibration_job(ref_job)
        for field in ("measured", "predicted", "packets", "flits", "stall_events"):
            assert a[field] == b[field]


class TestRunCalibrationSweep:
    def test_dedupes_identical_points(self, small_job):
        report = run_calibration_sweep([small_job, small_job], cache=None)
        assert report.executed == 1
        assert len(report.outcomes) == 2
        assert report.outcomes[0].result == report.outcomes[1].result
        report.raise_on_error()

    def test_cache_reuse_across_sweeps(self, small_job, tmp_path):
        cache = ResultCache(root=tmp_path)
        first = run_calibration_sweep([small_job], cache=cache)
        assert first.executed == 1 and first.cache_hits == 0
        second = run_calibration_sweep([small_job], cache=cache)
        assert second.executed == 0 and second.cache_hits == 1
        assert second.outcomes[0].cached
        assert second.outcomes[0].result == first.outcomes[0].result

    def test_errors_are_isolated(self, small_job, monkeypatch):
        """One failing point cannot kill the sweep."""
        bad = CalibrationJob(num_vertices=40, num_edges=120, seed=99)
        import repro.eval.calibration as cal

        real = cal.run_calibration_job

        def flaky(job):
            if job.seed == 99:
                raise RuntimeError("boom")
            return real(job)

        from repro.runtime.executor import SerialExecutor

        class Flaky(SerialExecutor):
            def run(self, jobs, fn=None):
                return super().run(jobs, fn=flaky)

        report = run_calibration_sweep(
            [small_job, bad], executor=Flaky(), cache=None
        )
        assert report.outcomes[0].ok
        assert not report.outcomes[1].ok
        assert "boom" in report.outcomes[1].error
        with pytest.raises(RuntimeError, match="calibration job"):
            report.raise_on_error()

    def test_summary_line(self, small_job):
        report = run_calibration_sweep([small_job], cache=None)
        assert "1 points" in report.summary()
        assert "1 executed" in report.summary()
