"""Tests for the two-stage pipeline timing helpers."""

import pytest

from repro.core import overlapped_time, pipeline_time


class TestPipelineTime:
    def test_single_tile(self):
        assert pipeline_time([3.0], [2.0]) == 5.0

    def test_perfect_overlap(self):
        """Equal stages: makespan = fill + n * interval."""
        assert pipeline_time([2.0] * 4, [2.0] * 4) == 2.0 + 4 * 2.0

    def test_bottleneck_stage_dominates(self):
        # B is the bottleneck at 5s per tile.
        t = pipeline_time([1.0] * 3, [5.0] * 3)
        assert t == 1.0 + 3 * 5.0

    def test_flow_shop_dependency(self):
        """B cannot start a tile before A finishes it.

        A finishes tile 1 at t=10, B at 11; A finishes tile 2 at 11, so B
        runs it 11→12.
        """
        assert pipeline_time([10.0, 1.0], [1.0, 1.0]) == 12.0

    def test_empty(self):
        assert pipeline_time([], []) == 0.0

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            pipeline_time([1.0], [])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            pipeline_time([-1.0], [1.0])

    def test_at_least_serial_of_slowest_chain(self):
        a = [2.0, 3.0, 1.0]
        b = [1.0, 4.0, 2.0]
        t = pipeline_time(a, b)
        assert t >= max(sum(a) + b[-1], a[0] + sum(b))
        assert t <= sum(a) + sum(b)


class TestOverlappedTime:
    def test_max_semantics(self):
        assert overlapped_time(3.0, 5.0) == 5.0
        assert overlapped_time(5.0, 3.0) == 5.0

    def test_zero(self):
        assert overlapped_time(0.0, 0.0) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            overlapped_time(-1.0, 1.0)
