"""Tests for harness configuration options."""

import pytest

from repro.config import AcceleratorConfig
from repro.eval import DEFAULT_SCALES, run_comparison


class TestOptions:
    def test_dataset_subset(self):
        comp = run_comparison(
            model="gcn", datasets=("citeseer",), scales={"citeseer": 0.3}
        )
        assert comp.datasets == ("citeseer",)
        assert len(comp.results) == 6

    def test_scale_override_merges_with_defaults(self):
        assert DEFAULT_SCALES["cora"] == 1.0
        comp = run_comparison(
            model="gcn", datasets=("cora",), scales={"cora": 0.25}
        )
        g = comp.get("cora", "aurora")
        assert "0.25" in g.graph_name

    def test_custom_config_threads_through(self):
        small = run_comparison(
            model="gcn",
            datasets=("cora",),
            scales={"cora": 0.3},
            config=AcceleratorConfig(array_k=16),
        )
        big = run_comparison(
            model="gcn",
            datasets=("cora",),
            scales={"cora": 0.3},
            config=AcceleratorConfig(array_k=32),
        )
        assert (
            small.get("cora", "aurora").total_seconds
            > big.get("cora", "aurora").total_seconds
        )

    def test_other_models_run_non_strict(self):
        """The harness forces non-strict baselines so e.g. GIN sweeps work
        even though half the baselines only support GCN natively."""
        comp = run_comparison(
            model="gin", datasets=("cora",), scales={"cora": 0.3}
        )
        grid = comp.normalized_grid("execution_time")["cora"]
        assert all(v > 0 for v in grid.values())

    def test_hidden_and_layers(self):
        shallow = run_comparison(
            model="gcn", datasets=("cora",), scales={"cora": 0.3}, num_layers=1
        )
        deep = run_comparison(
            model="gcn", datasets=("cora",), scales={"cora": 0.3}, num_layers=3
        )
        assert (
            deep.get("cora", "aurora").total_seconds
            > shallow.get("cora", "aurora").total_seconds
        )

    def test_seed_changes_graph_not_shape(self):
        a = run_comparison(
            model="gcn", datasets=("cora",), scales={"cora": 0.3}, seed=1
        )
        b = run_comparison(
            model="gcn", datasets=("cora",), scales={"cora": 0.3}, seed=2
        )
        ga = a.normalized_grid("execution_time")["cora"]
        gb = b.normalized_grid("execution_time")["cora"]
        # Different graphs, same qualitative ordering extremes.
        assert max(ga, key=ga.get) == max(gb, key=gb.get) == "hygcn"
