"""Tests for the evaluation harness, metrics, and reports."""

import pytest

from repro.eval import (
    ACCELERATOR_ORDER,
    average_reduction,
    format_table,
    geometric_mean,
    list_experiments,
    metric_value,
    normalize_to,
    reduction_percent,
    render_headline_summary,
    render_normalized_figure,
    render_table1_coverage,
    render_table2_operations,
    run_comparison,
    run_experiment,
)


class TestMetrics:
    def test_reduction_percent(self):
        assert reduction_percent(15, 100) == pytest.approx(85.0)
        assert reduction_percent(100, 100) == pytest.approx(0.0)

    def test_reduction_rejects_zero_baseline(self):
        with pytest.raises(ValueError):
            reduction_percent(1.0, 0.0)

    def test_average_reduction(self):
        assert average_reduction([50, 25], [100, 100]) == pytest.approx(62.5)

    def test_average_reduction_validation(self):
        with pytest.raises(ValueError):
            average_reduction([1.0], [1.0, 2.0])

    def test_normalize(self):
        assert normalize_to(4.0, 2.0) == 2.0
        with pytest.raises(ValueError):
            normalize_to(1.0, 0.0)

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, -1.0])

    def test_unknown_metric(self):
        with pytest.raises(KeyError):
            metric_value(None, "latency_of_dreams")


class TestFormatting:
    def test_format_table_aligns(self):
        out = format_table(["a", "bbb"], [["1", "2"], ["333", "4"]])
        lines = out.splitlines()
        assert len({len(line) for line in lines}) == 1  # rectangular

    def test_title(self):
        out = format_table(["x"], [["1"]], title="T")
        assert out.startswith("T\n")

    def test_table1_contains_all(self):
        out = render_table1_coverage()
        for name in ("hygcn", "awb-gcn", "gcnax", "regnn", "flowgnn", "aurora"):
            assert name in out

    def test_table2_contains_all_models(self):
        out = render_table2_operations()
        for name in ("gcn", "gin", "ggcn", "edgeconv-5"):
            assert name in out
        assert "Null" in out  # GIN's empty edge update


class TestHarness:
    @pytest.fixture(scope="class")
    def comparison(self):
        return run_comparison(
            model="gcn",
            datasets=("cora", "citeseer"),
            scales={"cora": 0.4, "citeseer": 0.4},
        )

    def test_grid_complete(self, comparison):
        assert set(comparison.accelerators) == set(ACCELERATOR_ORDER)
        for ds in comparison.datasets:
            for acc in comparison.accelerators:
                assert (ds, acc) in comparison.results

    def test_normalized_grid_aurora_unity(self, comparison):
        grid = comparison.normalized_grid("execution_time")
        for ds in comparison.datasets:
            assert grid[ds]["aurora"] == pytest.approx(1.0)

    def test_metric_grid_positive(self, comparison):
        for metric in ("execution_time", "dram_accesses", "onchip_latency", "energy"):
            grid = comparison.metric_grid(metric)
            for row in grid.values():
                assert all(v > 0 for v in row.values())

    def test_renders(self, comparison):
        out = render_normalized_figure(comparison, "execution_time", title="T")
        assert "aurora" in out
        out2 = render_headline_summary(comparison)
        assert "speedup range" in out2

    def test_speedup_range(self, comparison):
        lo, hi = comparison.speedup_range_vs("execution_time", "hygcn")
        assert 0 < lo <= hi


class TestExperimentRegistry:
    def test_registry_complete(self):
        # Twelve paper artifacts + two extension experiments (E13, E14).
        assert len(list_experiments()) == 14
        assert list_experiments()[0] == "E1"
        assert "E13" in list_experiments() and "E14" in list_experiments()

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("E99")

    @pytest.mark.parametrize("eid", ["E1", "E2", "E7", "E8"])
    def test_fast_experiments_run(self, eid):
        res = run_experiment(eid)
        assert res.experiment_id == eid
        assert res.text
        assert res.data

    def test_case_insensitive(self):
        assert run_experiment("e1").experiment_id == "E1"
