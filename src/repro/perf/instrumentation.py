"""Lightweight perf instrumentation: stage timers + event counters.

The analytical tier's value proposition is wall-clock speed (the paper
sweeps five datasets × five baselines × ablations through it), so the
hot path carries permanent, near-zero-cost instrumentation:

* **stage timers** — monotonic (``time.perf_counter``) accumulators per
  named stage (``mapping``, ``traffic``, ``noc``, ``compute_count``,
  ``tiling``, ``dram`` …), threaded through the simulator, the mapping
  layer, the NoC model, and the job runtime;
* **counters** — integer event counts, used for the memoization layers'
  hit/miss bookkeeping (``mapping.tile_cache_hit``,
  ``noc.model_cache_hit``, ``config.plan_cache_hit`` …).

Everything funnels into one process-global :data:`PERF` registry so a
bench run (``repro bench``) can ``reset()``, execute a workload, and
``snapshot()`` the per-stage breakdown into a ``BENCH_*.json`` artifact.
The registry is intentionally simple — plain dict accumulation, no
locks — matching the simulator's single-threaded hot path (process-pool
workers each get their own registry).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = ["PerfRegistry", "StageStat", "PERF"]


@dataclass
class StageStat:
    """Accumulated wall time of one named stage."""

    calls: int = 0
    seconds: float = 0.0

    def as_dict(self) -> dict:
        return {"calls": self.calls, "seconds": self.seconds}


@dataclass
class PerfRegistry:
    """Process-global accumulator for stage timings and event counters."""

    enabled: bool = True
    stages: dict[str, StageStat] = field(default_factory=dict)
    counters: dict[str, int] = field(default_factory=dict)

    # -- timers --------------------------------------------------------
    @contextmanager
    def timer(self, name: str):
        """Time a ``with`` block and accumulate it under ``name``."""
        if not self.enabled:
            yield
            return
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.add_time(name, time.perf_counter() - t0)

    def add_time(self, name: str, seconds: float) -> None:
        if not self.enabled:
            return
        stat = self.stages.get(name)
        if stat is None:
            stat = self.stages[name] = StageStat()
        stat.calls += 1
        stat.seconds += seconds

    # -- counters ------------------------------------------------------
    def incr(self, name: str, n: int = 1) -> None:
        if not self.enabled:
            return
        self.counters[name] = self.counters.get(name, 0) + n

    # -- lifecycle -----------------------------------------------------
    def reset(self) -> None:
        self.stages.clear()
        self.counters.clear()

    def snapshot(self) -> dict:
        """JSON-ready view: stage timings plus counters."""
        return {
            "stages": {
                name: stat.as_dict() for name, stat in sorted(self.stages.items())
            },
            "counters": dict(sorted(self.counters.items())),
        }


#: The process-global registry every instrumented module reports into.
PERF = PerfRegistry()
