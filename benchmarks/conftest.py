"""Benchmark fixtures: share the expensive five-dataset sweep per session."""

from __future__ import annotations

import pytest

from repro.eval import run_comparison


@pytest.fixture(scope="session")
def sweep():
    """The paper's full accelerator × dataset comparison grid (GCN)."""
    return run_comparison(model="gcn")


def emit(result_text: str) -> None:
    """Print a regenerated paper artifact so the bench log shows it."""
    print()
    print(result_text)
