"""Content-addressed, on-disk result cache for simulation jobs.

Blobs are JSON files keyed by the job's content hash and guarded by a
*fingerprint* of the simulator source tree: editing any ``repro`` module
invalidates every cached result, because an analytical model change can
shift any number.  Layout::

    <root>/<key[:2]>/<key>.json    # {"fingerprint", "key", "job", "result"}

The root comes from (in priority order) the constructor argument, the
``REPRO_CACHE_DIR`` environment variable, or ``.repro_cache`` under the
current directory.  Corrupt or stale blobs are deleted and reported as
misses — the runner then simply re-simulates.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path

from .jobs import SimJob

__all__ = ["ResultCache", "CacheStats", "code_fingerprint", "as_cache"]

ENV_CACHE_DIR = "REPRO_CACHE_DIR"
DEFAULT_CACHE_DIR = ".repro_cache"

_FINGERPRINT: str | None = None


def code_fingerprint() -> str:
    """Digest of every ``.py`` file in the ``repro`` package (memoized).

    Cheap enough to compute once per process (~100 small files) and
    exactly as strong as needed: any source edit — model constants,
    simulator logic, the job schema itself — yields a new fingerprint
    and therefore a cold cache.
    """
    global _FINGERPRINT
    if _FINGERPRINT is None:
        pkg = Path(__file__).resolve().parents[1]
        digest = hashlib.sha256()
        for path in sorted(pkg.rglob("*.py")):
            digest.update(path.relative_to(pkg).as_posix().encode())
            digest.update(path.read_bytes())
        _FINGERPRINT = digest.hexdigest()[:16]
    return _FINGERPRINT


@dataclass
class CacheStats:
    """Hit/miss/invalidation accounting for one cache instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    invalidations: int = 0  # fingerprint mismatches evicted
    corrupt: int = 0  # undecodable blobs evicted

    def as_dict(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "invalidations": self.invalidations,
            "corrupt": self.corrupt,
        }


@dataclass
class ResultCache:
    """Content-addressed store of ``SimulationResult.to_dict()`` blobs."""

    root: Path = field(default_factory=lambda: Path(
        os.environ.get(ENV_CACHE_DIR) or DEFAULT_CACHE_DIR
    ))
    fingerprint: str = field(default_factory=code_fingerprint)
    stats: CacheStats = field(default_factory=CacheStats)

    def __post_init__(self) -> None:
        self.root = Path(self.root)

    # ------------------------------------------------------------------
    def path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def load(self, key: str) -> dict | None:
        """The cached result dict for ``key``, or ``None`` on miss.

        Every failure mode — absent, unreadable, undecodable, stale
        fingerprint — degrades to a miss so a damaged cache can never
        break a sweep, only slow it down.
        """
        path = self.path_for(key)
        try:
            raw = path.read_text()
        except OSError:
            self.stats.misses += 1
            return None
        except UnicodeDecodeError:
            self.stats.corrupt += 1
            self.stats.misses += 1
            self._evict(path)
            return None
        try:
            blob = json.loads(raw)
            if blob["fingerprint"] != self.fingerprint:
                self.stats.invalidations += 1
                self.stats.misses += 1
                self._evict(path)
                return None
            result = blob["result"]
            if not isinstance(result, dict):
                raise TypeError("result blob is not a dict")
        except (json.JSONDecodeError, KeyError, TypeError):
            self.stats.corrupt += 1
            self.stats.misses += 1
            self._evict(path)
            return None
        self.stats.hits += 1
        return result

    def store(self, key: str, result: dict, job: SimJob | None = None) -> None:
        """Atomically write one result blob (tempfile + rename)."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        blob = {
            "fingerprint": self.fingerprint,
            "key": key,
            "job": job.as_dict() if job is not None else None,
            "result": result,
        }
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(blob, handle)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stats.stores += 1

    # ------------------------------------------------------------------
    def entries(self) -> list[Path]:
        """Every blob path under the root, sorted (stable for tests)."""
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("*/*.json"))

    def __len__(self) -> int:
        return len(self.entries())

    def disk_stats(self) -> dict:
        """On-disk footprint summary for ``repro cache stats``."""
        entries = self.entries()
        total_bytes = 0
        oldest: float | None = None
        newest: float | None = None
        for path in entries:
            try:
                stat = path.stat()
            except OSError:
                continue
            total_bytes += stat.st_size
            mtime = stat.st_mtime
            oldest = mtime if oldest is None else min(oldest, mtime)
            newest = mtime if newest is None else max(newest, mtime)
        return {
            "root": str(self.root),
            "fingerprint": self.fingerprint,
            "entries": len(entries),
            "bytes": total_bytes,
            "oldest_mtime": oldest,
            "newest_mtime": newest,
        }

    def clear(self) -> int:
        """Delete all blobs; returns how many were removed."""
        removed = 0
        for blob in self.entries():
            self._evict(blob)
            removed += 1
        return removed

    def prune(self, max_age_seconds: float, *, now: float | None = None) -> int:
        """Delete blobs last written more than ``max_age_seconds`` ago.

        Age is judged by mtime (the store time — blobs are immutable
        once written).  Returns the number of blobs removed.
        """
        if max_age_seconds < 0:
            raise ValueError("max_age_seconds must be >= 0")
        cutoff = (now if now is not None else time.time()) - max_age_seconds
        removed = 0
        for path in self.entries():
            try:
                mtime = path.stat().st_mtime
            except OSError:
                continue
            if mtime < cutoff:
                self._evict(path)
                removed += 1
        return removed

    def prune_bytes(self, max_bytes: int) -> int:
        """Evict oldest blobs until the cache fits in ``max_bytes``.

        The complement of :meth:`prune`: age-based pruning bounds
        staleness, this bounds the on-disk footprint — which is what a
        long-lived cluster replica's cache shard needs.  Eviction is
        oldest-first by mtime, so the warm working set survives.
        Returns the number of blobs removed.
        """
        if max_bytes < 0:
            raise ValueError("max_bytes must be >= 0")
        entries = []
        total = 0
        for path in self.entries():
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, path, stat.st_size))
            total += stat.st_size
        entries.sort()  # oldest first
        removed = 0
        for _, path, size in entries:
            if total <= max_bytes:
                break
            self._evict(path)
            total -= size
            removed += 1
        return removed

    @staticmethod
    def _evict(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass


def as_cache(cache: "ResultCache | bool | None") -> ResultCache | None:
    """Normalise the user-facing ``cache`` argument.

    ``True`` means "the default cache location", ``None``/``False`` mean
    "no caching", and an explicit :class:`ResultCache` passes through.
    """
    if cache is None or cache is False:
        return None
    if cache is True:
        return ResultCache()
    return cache
