"""PerfRegistry under concurrency: no lost updates, no torn snapshots.

Serve drives the simulator from executor threads, so ``PERF.add_time``
and ``PERF.incr`` race with each other and with ``snapshot()`` reads
from the stats endpoint.  These tests hammer a private registry from
many threads and assert (a) every update lands and (b) a concurrent
reader never observes a ``calls``/``seconds`` pair that is internally
inconsistent.
"""

import threading

from repro.perf.instrumentation import PerfRegistry

WORKERS = 8
N = 5_000


class TestConcurrentWrites:
    def test_add_time_loses_no_updates(self):
        perf = PerfRegistry()

        def pump(w: int) -> None:
            stage = f"stage{w % 2}"
            for _ in range(N):
                perf.add_time(stage, 1e-6)

        threads = [
            threading.Thread(target=pump, args=(w,)) for w in range(WORKERS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        total_calls = sum(s.calls for s in perf.stages.values())
        total_seconds = sum(s.seconds for s in perf.stages.values())
        assert total_calls == WORKERS * N
        assert abs(total_seconds - WORKERS * N * 1e-6) < 1e-9 * WORKERS * N

    def test_incr_loses_no_updates(self):
        perf = PerfRegistry()

        def pump(w: int) -> None:
            event = f"event{w % 3}"
            for _ in range(N):
                perf.incr(event)

        threads = [
            threading.Thread(target=pump, args=(w,)) for w in range(WORKERS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sum(perf.counters.values()) == WORKERS * N

    def test_timer_contextmanager_concurrent(self):
        perf = PerfRegistry()
        rounds = 500

        def pump() -> None:
            for _ in range(rounds):
                with perf.timer("stage"):
                    pass

        threads = [threading.Thread(target=pump) for _ in range(WORKERS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert perf.stages["stage"].calls == WORKERS * rounds


class TestConcurrentReads:
    def test_snapshot_never_torn(self):
        """A reader sees calls/seconds advance together: each observation
        adds exactly one call and exactly 1µs, so at any instant
        ``seconds ≈ calls × 1µs``.  A torn read (count updated, sum not)
        would break the equality beyond float noise."""
        perf = PerfRegistry()
        stop = threading.Event()
        failures: list[str] = []

        def writer() -> None:
            while not stop.is_set():
                perf.add_time("s", 1e-6)
                perf.incr("e")

        def reader() -> None:
            while not stop.is_set():
                snap = perf.snapshot()
                stage = snap["stages"].get("s")
                if stage is None:
                    continue
                expected = stage["calls"] * 1e-6
                if abs(stage["seconds"] - expected) > 1e-6 + 1e-9 * stage["calls"]:
                    failures.append(
                        f"torn pair: calls={stage['calls']} "
                        f"seconds={stage['seconds']}"
                    )
                    return

        writers = [threading.Thread(target=writer) for _ in range(4)]
        readers = [threading.Thread(target=reader) for _ in range(2)]
        for t in writers + readers:
            t.start()
        timer = threading.Timer(0.5, stop.set)
        timer.start()
        for t in readers:
            t.join()
        stop.set()
        timer.cancel()
        for t in writers:
            t.join()
        assert failures == []

    def test_reset_during_writes_keeps_invariants(self):
        perf = PerfRegistry()
        stop = threading.Event()

        def writer() -> None:
            while not stop.is_set():
                perf.add_time("s", 1e-6)

        threads = [threading.Thread(target=writer) for _ in range(4)]
        for t in threads:
            t.start()
        try:
            for _ in range(50):
                perf.reset()
                snap = perf.snapshot()["stages"].get("s")
                if snap is not None:
                    assert snap["calls"] >= 0
                    assert snap["seconds"] >= 0.0
        finally:
            stop.set()
            for t in threads:
                t.join()
