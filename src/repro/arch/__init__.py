"""Hardware architecture models: PEs, NoC, memory hierarchy, energy, area."""

from .area import AreaModel, AreaParameters, ChipAreaBreakdown, PEAreaBreakdown
from .dram import AccessPattern, DRAMModel, DRAMStats
from .energy import EnergyBreakdown, EnergyCounters, EnergyModel, EnergyTable
from .memory import BankBuffer, BufferStats, GlobalBuffer, ReuseFIFO
from .pe import PE, PEConfig, PECycleModel, PEDatapath, datapath_for_op
from .power import PowerModel, PowerReport

__all__ = [
    "PE",
    "PEConfig",
    "PECycleModel",
    "PEDatapath",
    "datapath_for_op",
    "BankBuffer",
    "GlobalBuffer",
    "ReuseFIFO",
    "BufferStats",
    "DRAMModel",
    "DRAMStats",
    "AccessPattern",
    "EnergyModel",
    "EnergyTable",
    "EnergyCounters",
    "EnergyBreakdown",
    "PowerModel",
    "PowerReport",
    "AreaModel",
    "AreaParameters",
    "PEAreaBreakdown",
    "ChipAreaBreakdown",
]
