"""Tests for the content-addressed on-disk result cache."""

import json

import pytest

from repro.runtime import ResultCache, SimJob, as_cache, code_fingerprint, job_key

PAYLOAD = {"accelerator": "aurora", "total_seconds": 1.25}
KEY = "ab" + "0" * 62


class TestAccounting:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.load(KEY) is None
        cache.store(KEY, PAYLOAD)
        assert cache.load(KEY) == PAYLOAD
        assert cache.stats.as_dict() == {
            "hits": 1,
            "misses": 1,
            "stores": 1,
            "invalidations": 0,
            "corrupt": 0,
        }

    def test_store_records_the_job(self, tmp_path):
        cache = ResultCache(tmp_path)
        job = SimJob(dataset="pubmed", scale=0.5)
        cache.store(job_key(job), PAYLOAD, job=job)
        blob = json.loads(cache.path_for(job_key(job)).read_text())
        assert blob["job"]["dataset"] == "pubmed"
        assert blob["fingerprint"] == cache.fingerprint

    def test_len_and_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store(KEY, PAYLOAD)
        cache.store("cd" + "0" * 62, PAYLOAD)
        assert len(cache) == 2
        assert cache.clear() == 2
        assert len(cache) == 0


class TestInvalidation:
    def test_fingerprint_change_invalidates(self, tmp_path):
        old = ResultCache(tmp_path, fingerprint="aaaa")
        old.store(KEY, PAYLOAD)
        new = ResultCache(tmp_path, fingerprint="bbbb")
        assert new.load(KEY) is None
        assert new.stats.invalidations == 1
        assert new.stats.misses == 1
        # The stale blob is evicted, so a matching store can replace it.
        assert not new.path_for(KEY).exists()

    def test_same_fingerprint_survives(self, tmp_path):
        a = ResultCache(tmp_path, fingerprint="aaaa")
        a.store(KEY, PAYLOAD)
        b = ResultCache(tmp_path, fingerprint="aaaa")
        assert b.load(KEY) == PAYLOAD

    def test_code_fingerprint_is_stable_in_process(self):
        assert code_fingerprint() == code_fingerprint()
        assert len(code_fingerprint()) == 16


class TestCorruption:
    def test_undecodable_blob_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store(KEY, PAYLOAD)
        cache.path_for(KEY).write_text("{not json")
        assert cache.load(KEY) is None
        assert cache.stats.corrupt == 1
        assert not cache.path_for(KEY).exists()

    def test_wrong_shape_blob_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.path_for(KEY).parent.mkdir(parents=True)
        cache.path_for(KEY).write_text(json.dumps({"fingerprint": cache.fingerprint}))
        assert cache.load(KEY) is None
        assert cache.stats.corrupt == 1

    def test_recovers_after_eviction(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store(KEY, PAYLOAD)
        cache.path_for(KEY).write_text("garbage")
        assert cache.load(KEY) is None
        cache.store(KEY, PAYLOAD)
        assert cache.load(KEY) == PAYLOAD

    def test_truncated_blob_is_a_miss_and_evicts(self, tmp_path):
        """A blob cut off mid-write (crash, full disk) must not raise."""
        cache = ResultCache(tmp_path)
        cache.store(KEY, PAYLOAD)
        raw = cache.path_for(KEY).read_text()
        cache.path_for(KEY).write_text(raw[: len(raw) // 2])
        assert cache.load(KEY) is None
        assert cache.stats.corrupt == 1
        assert cache.stats.misses == 1
        assert not cache.path_for(KEY).exists()

    def test_result_with_wrong_type_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.path_for(KEY).parent.mkdir(parents=True)
        cache.path_for(KEY).write_text(
            json.dumps({"fingerprint": cache.fingerprint, "result": [1, 2]})
        )
        assert cache.load(KEY) is None
        assert cache.stats.corrupt == 1
        assert not cache.path_for(KEY).exists()

    def test_empty_blob_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.path_for(KEY).parent.mkdir(parents=True)
        cache.path_for(KEY).write_text("")
        assert cache.load(KEY) is None
        assert cache.stats.corrupt == 1

    def test_binary_garbage_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.path_for(KEY).parent.mkdir(parents=True)
        cache.path_for(KEY).write_bytes(b"\x00\xff\xfe garbage \x01")
        assert cache.load(KEY) is None
        assert cache.stats.corrupt == 1


class TestPruneAndStats:
    def test_prune_removes_only_old_blobs(self, tmp_path):
        import os
        import time

        cache = ResultCache(tmp_path)
        old_key, new_key = KEY, "cd" + "0" * 62
        cache.store(old_key, PAYLOAD)
        cache.store(new_key, PAYLOAD)
        now = time.time()
        two_days_ago = now - 2 * 86400
        os.utime(cache.path_for(old_key), (two_days_ago, two_days_ago))
        removed = cache.prune(86400, now=now)
        assert removed == 1
        assert not cache.path_for(old_key).exists()
        assert cache.path_for(new_key).exists()

    def test_prune_zero_age_removes_everything_past(self, tmp_path):
        import time

        cache = ResultCache(tmp_path)
        cache.store(KEY, PAYLOAD)
        assert cache.prune(0, now=time.time() + 10) == 1
        assert len(cache) == 0

    def test_prune_rejects_negative_age(self, tmp_path):
        with pytest.raises(ValueError):
            ResultCache(tmp_path).prune(-1)

    def test_prune_bytes_evicts_oldest_first(self, tmp_path):
        import os
        import time

        cache = ResultCache(tmp_path)
        keys = [f"{i:02d}" + "0" * 62 for i in range(4)]
        now = time.time()
        for i, key in enumerate(keys):
            cache.store(key, PAYLOAD)
            stamp = now - (100 - i)  # keys[0] is oldest
            os.utime(cache.path_for(key), (stamp, stamp))
        blob_size = cache.path_for(keys[0]).stat().st_size
        removed = cache.prune_bytes(2 * blob_size)
        assert removed == 2
        assert not cache.path_for(keys[0]).exists()
        assert not cache.path_for(keys[1]).exists()
        assert cache.path_for(keys[2]).exists()
        assert cache.path_for(keys[3]).exists()

    def test_prune_bytes_noop_when_under_budget(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store(KEY, PAYLOAD)
        assert cache.prune_bytes(1 << 30) == 0
        assert len(cache) == 1

    def test_prune_bytes_zero_removes_everything(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store(KEY, PAYLOAD)
        cache.store("cd" + "0" * 62, PAYLOAD)
        assert cache.prune_bytes(0) == 2
        assert len(cache) == 0

    def test_prune_bytes_rejects_negative(self, tmp_path):
        with pytest.raises(ValueError):
            ResultCache(tmp_path).prune_bytes(-1)

    def test_disk_stats(self, tmp_path):
        cache = ResultCache(tmp_path)
        stats = cache.disk_stats()
        assert stats["entries"] == 0
        assert stats["bytes"] == 0
        assert stats["oldest_mtime"] is None
        cache.store(KEY, PAYLOAD)
        stats = cache.disk_stats()
        assert stats["entries"] == 1
        assert stats["bytes"] > 0
        assert stats["fingerprint"] == cache.fingerprint
        assert stats["oldest_mtime"] is not None

    def test_entries_sorted(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store("cd" + "0" * 62, PAYLOAD)
        cache.store(KEY, PAYLOAD)
        names = [p.name for p in cache.entries()]
        assert names == sorted(names)


class TestConfiguration:
    def test_env_var_sets_default_root(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "envcache"))
        cache = ResultCache()
        cache.store(KEY, PAYLOAD)
        assert (tmp_path / "envcache").is_dir()

    def test_default_root_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        assert ResultCache().root.name == ".repro_cache"

    def test_as_cache_normalisation(self, tmp_path):
        assert as_cache(None) is None
        assert as_cache(False) is None
        explicit = ResultCache(tmp_path)
        assert as_cache(explicit) is explicit
        assert isinstance(as_cache(True), ResultCache)
