"""Unit tests for the NumPy reference layer implementations."""

import numpy as np
import pytest

from repro.graphs import from_edge_list, star_graph
from repro.models import (
    adjacency,
    attention_layer,
    commnet_layer,
    edgeconv_layer,
    gcn_layer,
    ggcn_layer,
    gin_layer,
    list_models,
    relu,
    run_layer,
    sage_mean_layer,
    sage_pool_layer,
    sigmoid,
    softmax,
)


@pytest.fixture
def g4():
    return from_edge_list(
        4, [(0, 1), (0, 2), (1, 2), (2, 3), (3, 0)], num_features=6
    )


@pytest.fixture
def x4(rng):
    return rng.normal(size=(4, 6))


class TestActivations:
    def test_relu(self):
        x = np.array([-1.0, 0.0, 2.0])
        assert relu(x).tolist() == [0.0, 0.0, 2.0]

    def test_sigmoid_range_and_symmetry(self, rng):
        x = rng.normal(scale=10, size=100)
        s = sigmoid(x)
        assert np.all((s > 0) & (s < 1))
        assert np.allclose(sigmoid(-x), 1 - s)

    def test_sigmoid_extreme_stability(self):
        assert sigmoid(np.array([1000.0]))[0] == pytest.approx(1.0)
        assert sigmoid(np.array([-1000.0]))[0] == pytest.approx(0.0)

    def test_softmax_rows_sum_to_one(self, rng):
        x = rng.normal(size=(5, 7))
        assert np.allclose(softmax(x, axis=1).sum(axis=1), 1.0)

    def test_softmax_shift_invariant(self, rng):
        x = rng.normal(size=(3, 4))
        assert np.allclose(softmax(x), softmax(x + 100.0))


class TestAdjacency:
    def test_shape_and_count(self, g4):
        a = adjacency(g4)
        assert a.shape == (4, 4)
        assert a.nnz == 5

    def test_gather_direction(self, g4):
        """A @ x sums out-neighbor features per source vertex."""
        x = np.eye(4)
        gathered = adjacency(g4) @ x
        # Vertex 0's out-neighbors are 1 and 2.
        assert gathered[0].tolist() == [0, 1, 1, 0]


class TestGCN:
    def test_output_shape(self, g4, x4, rng):
        w = rng.normal(size=(6, 3))
        out = gcn_layer(g4, x4, w)
        assert out.shape == (4, 3)

    def test_nonnegative(self, g4, x4, rng):
        out = gcn_layer(g4, x4, rng.normal(size=(6, 3)))
        assert np.all(out >= 0)

    def test_self_loop_included(self, rng):
        """An isolated vertex still keeps its own (normalised) feature."""
        g = from_edge_list(2, [(0, 1)], num_features=3)
        x = np.array([[1.0, 0.0, 0.0], [0.0, 2.0, 0.0]])
        out = gcn_layer(g, x, np.eye(3))
        assert out[1, 1] > 0  # vertex 1 has no out-edges but has itself

    def test_bias(self, g4, x4):
        w = np.zeros((6, 2))
        out = gcn_layer(g4, x4, w, bias=np.array([3.0, -1.0]))
        assert np.allclose(out[:, 0], 3.0)
        assert np.allclose(out[:, 1], 0.0)  # ReLU clips the negative bias

    def test_shape_mismatch(self, g4, rng):
        with pytest.raises(ValueError, match="features"):
            gcn_layer(g4, rng.normal(size=(3, 6)), np.eye(6))


class TestGIN:
    def test_eps_scales_self(self, g4, x4):
        w = np.eye(6)
        base = gin_layer(g4, x4, w, w, eps=0.0)
        scaled = gin_layer(g4, x4, w, w, eps=1.0)
        assert not np.allclose(base, scaled)

    def test_output_shape(self, g4, x4, rng):
        out = gin_layer(g4, x4, rng.normal(size=(6, 5)), rng.normal(size=(5, 2)))
        assert out.shape == (4, 2)


class TestAggregators:
    def test_sage_mean_averages(self):
        g = star_graph(3, num_features=1)  # hub 0 -> leaves 1..3
        x = np.array([[0.0], [3.0], [6.0], [9.0]])
        out = sage_mean_layer(g, x, np.eye(1))
        assert out[0, 0] == pytest.approx(6.0)  # mean of 3, 6, 9

    def test_commnet_sums(self):
        g = star_graph(3, num_features=1)
        x = np.array([[0.0], [3.0], [6.0], [9.0]])
        out = commnet_layer(g, x, np.eye(1))
        assert out[0, 0] == pytest.approx(18.0)

    def test_attention_weights_by_similarity(self):
        g = from_edge_list(3, [(0, 1), (0, 2)], num_features=2)
        x = np.array([[1.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        out = attention_layer(g, x, np.eye(2))
        # Neighbor 1 aligns with vertex 0 (dot=1), neighbor 2 doesn't (dot=0):
        # message = 1·x1 + 0·x2 = [1, 0] -> softmax favours lane 0.
        assert out[0, 0] > out[0, 1]


class TestGGCN:
    def test_shape(self, g4, x4, rng):
        out = ggcn_layer(
            g4,
            x4,
            rng.normal(size=(6, 6)),
            rng.normal(size=(6, 6)),
            rng.normal(size=(6, 3)),
        )
        assert out.shape == (4, 3)
        assert np.all(out >= 0)

    def test_gate_bounds_contribution(self, g4, x4):
        """With huge negative gate weights the gate shuts messages off."""
        wu = np.full((6, 6), -100.0)
        wv = np.full((6, 6), -100.0)
        out = ggcn_layer(g4, np.abs(x4), wu, wv, np.eye(6))
        assert np.allclose(out, 0.0, atol=1e-6)


class TestSagePoolAndEdgeConv:
    def test_sage_pool_shape(self, g4, x4, rng):
        out = sage_pool_layer(
            g4,
            x4,
            rng.normal(size=(6, 5)),
            rng.normal(size=5),
            rng.normal(size=(11, 3)),
        )
        assert out.shape == (4, 3)

    def test_sage_pool_isolated_vertex(self, rng):
        g = from_edge_list(2, [(0, 1)], num_features=3)
        x = rng.normal(size=(2, 3))
        out = sage_pool_layer(
            g, x, rng.normal(size=(3, 2)), np.zeros(2), rng.normal(size=(5, 2))
        )
        assert np.all(np.isfinite(out))

    def test_edgeconv_max_pools(self):
        g = star_graph(2, num_features=1)
        x = np.array([[0.0], [5.0], [2.0]])
        out = edgeconv_layer(g, x, [np.eye(1)])
        assert out[0, 0] == pytest.approx(5.0)

    def test_edgeconv_needs_weights(self, g4, x4):
        with pytest.raises(ValueError, match="weight"):
            edgeconv_layer(g4, x4, [])

    def test_edgeconv_chain(self, g4, x4, rng):
        chain = [rng.normal(size=(6, 6)) for _ in range(3)]
        out = edgeconv_layer(g4, x4, chain, activation=True)
        assert out.shape == (4, 6)
        assert np.all(out >= 0)


class TestRunLayer:
    @pytest.mark.parametrize("name", list_models())
    def test_every_model_runs(self, name, g4, rng):
        x = rng.normal(size=(4, 6))
        out = run_layer(name, g4, x, rng=np.random.default_rng(0), out_features=5)
        assert out.shape[0] == 4
        assert np.all(np.isfinite(out))

    def test_deterministic(self, g4, rng):
        x = rng.normal(size=(4, 6))
        a = run_layer("gcn", g4, x, rng=np.random.default_rng(1))
        b = run_layer("gcn", g4, x, rng=np.random.default_rng(1))
        assert np.array_equal(a, b)

    def test_unknown_model(self, g4, x4):
        with pytest.raises(KeyError):
            run_layer("mlp", g4, x4)
