"""Shared-memory graph plane: publish/resolve round trips, content
dedup, parent-owned lifecycle, and crash safety (a dying worker must
neither leak nor destroy the parent's segments).
"""

import dataclasses
import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.graphs.generators import power_law_graph
from repro.runtime.graphplane import (
    GraphHandle,
    GraphPlane,
    clear_resolve_cache,
    plane_available,
    resolve_handle,
)

pytestmark = pytest.mark.skipif(
    not plane_available(), reason="multiprocessing.shared_memory unavailable"
)

SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")


def _graph(seed=0, n=64, m=256):
    return power_law_graph(
        n, m, exponent=2.1, num_features=8, feature_density=0.5, seed=seed
    )


def _segment_exists(shm_name: str) -> bool:
    return os.path.exists(os.path.join("/dev/shm", shm_name))


@pytest.fixture(autouse=True)
def _fresh_resolve_cache():
    clear_resolve_cache()
    yield
    clear_resolve_cache()


class TestPublishResolve:
    def test_round_trip_preserves_graph(self):
        g = _graph()
        with GraphPlane() as plane:
            handle = plane.publish(g)
            out = resolve_handle(handle)
            assert np.array_equal(out.indptr, g.indptr)
            assert np.array_equal(out.indices, g.indices)
            assert out.name == g.name
            assert out.num_features == g.num_features
            assert out.feature_density == g.feature_density
            # content key is trusted from the handle, not re-hashed
            assert out.content_key == g.content_key

    def test_publish_dedups_by_content(self):
        g = _graph()
        with GraphPlane() as plane:
            first = plane.publish(g)
            again = plane.publish(g)
            alias = plane.publish(g.renamed("other-name"))
            assert plane.num_segments == 1
            assert first == again == alias
            assert plane.stats["published"] == 1
            assert plane.stats["reused"] == 2

    def test_distinct_graphs_get_distinct_segments(self):
        with GraphPlane() as plane:
            a = plane.publish(_graph(seed=0))
            b = plane.publish(_graph(seed=1))
            assert a.shm_name != b.shm_name
            assert plane.num_segments == 2

    def test_resolve_cache_returns_same_object(self):
        g = _graph()
        with GraphPlane() as plane:
            handle = plane.publish(g)
            first = resolve_handle(handle)
            assert resolve_handle(handle) is first
            clear_resolve_cache()
            fresh = resolve_handle(handle)
            assert fresh is not first
            assert np.array_equal(fresh.indices, first.indices)


class TestLifecycle:
    def test_close_unlinks_segments(self):
        plane = GraphPlane()
        handle = plane.publish(_graph())
        assert _segment_exists(handle.shm_name)
        plane.close()
        assert not _segment_exists(handle.shm_name)
        plane.close()  # idempotent

    def test_closed_plane_rejects_publish(self):
        plane = GraphPlane()
        plane.close()
        with pytest.raises(RuntimeError, match="closed"):
            plane.publish(_graph())

    def test_context_manager_closes(self):
        with GraphPlane() as plane:
            handle = plane.publish(_graph())
            assert _segment_exists(handle.shm_name)
        assert not _segment_exists(handle.shm_name)


class TestCrashSafety:
    """A worker killed mid-flight must not leak or destroy segments."""

    def test_crashed_worker_neither_leaks_nor_destroys(self):
        g = _graph()
        plane = GraphPlane()
        try:
            handle = plane.publish(g)
            payload = json.dumps(dataclasses.asdict(handle))
            # A fresh process resolves the handle then hard-exits without
            # any cleanup — the worst-case worker crash.  resolve_handle's
            # resource-tracker unregistration is what keeps the dying
            # process's tracker from unlinking the parent's segment
            # (CPython bpo-38119).
            code = (
                "import json, os, sys\n"
                "from repro.runtime.graphplane import GraphHandle, "
                "resolve_handle\n"
                "h = GraphHandle(**json.loads(sys.argv[1]))\n"
                "g = resolve_handle(h)\n"
                "assert g.num_edges == h.num_edges\n"
                "os._exit(1)\n"
            )
            env = dict(os.environ, PYTHONPATH=SRC)
            proc = subprocess.run(
                [sys.executable, "-c", code, payload],
                env=env,
                timeout=60,
            )
            assert proc.returncode == 1
            # The crash destroyed nothing: the parent's segment survives
            # and still resolves correctly.
            assert _segment_exists(handle.shm_name)
            clear_resolve_cache()
            out = resolve_handle(handle)
            assert np.array_equal(out.indices, g.indices)
        finally:
            plane.close()
        # ...and nothing leaked: close() removed the segment.
        assert not _segment_exists(handle.shm_name)
