"""Unit tests for the CSR graph substrate."""

import numpy as np
import pytest

from repro.graphs import CSRGraph, from_dense_adjacency, from_edge_list


class TestConstruction:
    def test_from_edge_list_basic(self, tiny_graph):
        assert tiny_graph.num_vertices == 5
        assert tiny_graph.num_edges == 5

    def test_indptr_monotone(self, tiny_graph):
        assert np.all(np.diff(tiny_graph.indptr) >= 0)

    def test_indices_dtype(self, tiny_graph):
        assert tiny_graph.indptr.dtype == np.int64
        assert tiny_graph.indices.dtype == np.int64

    def test_empty_graph(self):
        g = from_edge_list(3, [])
        assert g.num_edges == 0
        assert g.num_vertices == 3
        assert g.degrees.tolist() == [0, 0, 0]

    def test_dedup(self):
        g = from_edge_list(3, [(0, 1), (0, 1), (1, 2)])
        assert g.num_edges == 2

    def test_no_dedup_keeps_duplicates(self):
        g = from_edge_list(3, [(0, 1), (0, 1)], dedup=False)
        assert g.num_edges == 2

    def test_self_loops_kept(self):
        g = from_edge_list(2, [(0, 0), (0, 1)])
        assert g.num_edges == 2
        assert 0 in g.neighbors(0)

    def test_rejects_out_of_range_edges(self):
        with pytest.raises(ValueError, match="out of range"):
            from_edge_list(2, [(0, 5)])

    def test_rejects_bad_indptr_start(self):
        with pytest.raises(ValueError, match="start at 0"):
            CSRGraph(np.array([1, 2]), np.array([0, 1]))

    def test_rejects_indptr_indices_mismatch(self):
        with pytest.raises(ValueError, match="does not match"):
            CSRGraph(np.array([0, 3]), np.array([0]))

    def test_rejects_decreasing_indptr(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            CSRGraph(np.array([0, 2, 1, 3]), np.array([0, 1, 2]))

    def test_rejects_bad_feature_density(self):
        with pytest.raises(ValueError, match="feature_density"):
            from_edge_list(2, [(0, 1)], feature_density=0.0)

    def test_rejects_bad_num_features(self):
        with pytest.raises(ValueError, match="num_features"):
            from_edge_list(2, [(0, 1)], num_features=0)

    def test_from_dense_adjacency(self):
        adj = np.array([[0, 1, 1], [0, 0, 1], [1, 0, 0]])
        g = from_dense_adjacency(adj)
        assert g.num_edges == 4
        assert g.neighbors(0).tolist() == [1, 2]

    def test_from_dense_rejects_nonsquare(self):
        with pytest.raises(ValueError, match="square"):
            from_dense_adjacency(np.zeros((2, 3)))


class TestAccessors:
    def test_degrees(self, tiny_graph):
        assert tiny_graph.degrees.tolist() == [2, 1, 1, 1, 0]

    def test_in_degrees(self, tiny_graph):
        # in: 0<-2; 1<-0; 2<-0,1; 4<-3
        assert tiny_graph.in_degrees.tolist() == [1, 1, 2, 0, 1]

    def test_degree_scalar(self, tiny_graph):
        assert tiny_graph.degree(0) == 2
        assert tiny_graph.degree(4) == 0

    def test_degree_out_of_range(self, tiny_graph):
        with pytest.raises(IndexError):
            tiny_graph.degree(99)

    def test_neighbors_sorted(self, tiny_graph):
        assert tiny_graph.neighbors(0).tolist() == [1, 2]

    def test_neighbors_is_view(self, tiny_graph):
        nbrs = tiny_graph.neighbors(0)
        assert nbrs.base is tiny_graph.indices

    def test_neighbors_out_of_range(self, tiny_graph):
        with pytest.raises(IndexError):
            tiny_graph.neighbors(-1)

    def test_edges_iteration(self, tiny_graph):
        assert sorted(tiny_graph.edges()) == [
            (0, 1),
            (0, 2),
            (1, 2),
            (2, 0),
            (3, 4),
        ]

    def test_edge_array(self, tiny_graph):
        arr = tiny_graph.edge_array()
        assert arr.shape == (5, 2)
        assert arr[0].tolist() == [0, 1]


class TestDerived:
    def test_csc_roundtrip(self, tiny_graph):
        indptr, indices = tiny_graph.csc()
        # In-neighbors of 2 are {0, 1}.
        assert sorted(indices[indptr[2] : indptr[3]].tolist()) == [0, 1]

    def test_reverse_degrees(self, tiny_graph):
        rev = tiny_graph.reverse()
        assert rev.degrees.tolist() == tiny_graph.in_degrees.tolist()

    def test_reverse_twice_is_identity(self, medium_graph):
        back = medium_graph.reverse().reverse()
        assert np.array_equal(back.indptr, medium_graph.indptr)
        got = {tuple(e) for e in back.edge_array().tolist()}
        want = {tuple(e) for e in medium_graph.edge_array().tolist()}
        assert got == want

    def test_meta(self, tiny_graph):
        meta = tiny_graph.meta()
        assert meta.num_vertices == 5
        assert meta.num_edges == 5
        assert meta.max_degree == 2
        assert meta.min_degree == 0
        assert meta.mean_degree == pytest.approx(1.0)

    def test_meta_cached(self, tiny_graph):
        assert tiny_graph.meta() is tiny_graph.meta()

    def test_power_law_like_flag(self, hub_graph):
        # Star graph: hub degree 12, mean ~1 -> heavy tailed.
        assert hub_graph.meta().is_power_law_like


class TestInducedSubgraph:
    def test_subset_keeps_internal_edges(self, tiny_graph):
        sub = tiny_graph.induced_subgraph([0, 1, 2])
        assert sub.num_vertices == 3
        assert sub.num_edges == 4  # 0->1, 0->2, 1->2, 2->0

    def test_drops_external_edges(self, tiny_graph):
        sub = tiny_graph.induced_subgraph([3, 4])
        assert sub.num_edges == 1  # 3->4 survives

    def test_relabels_vertices(self, tiny_graph):
        sub = tiny_graph.induced_subgraph([2, 3, 4])
        # 3->4 becomes 1->2 under the new labels.
        assert (1, 2) in set(sub.edges())

    def test_rejects_duplicates(self, tiny_graph):
        with pytest.raises(ValueError, match="duplicates"):
            tiny_graph.induced_subgraph([0, 0])

    def test_rejects_out_of_range(self, tiny_graph):
        with pytest.raises(ValueError, match="out of range"):
            tiny_graph.induced_subgraph([0, 9])

    def test_whole_graph_subset(self, tiny_graph):
        sub = tiny_graph.induced_subgraph(range(5))
        assert sub.num_edges == tiny_graph.num_edges

    def test_preserves_attributes(self, tiny_graph):
        sub = tiny_graph.induced_subgraph([0, 1])
        assert sub.num_features == tiny_graph.num_features
        assert sub.feature_density == tiny_graph.feature_density
