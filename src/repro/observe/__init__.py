"""Push-channel observability: live events, recording, and replay.

Where :mod:`repro.telemetry` answers *pull* questions (``/trace``,
``/metrics``, ``/stats``), this package is the *push* side — watch a
request move through admission → batcher → executor → NoC as it
happens:

* :mod:`.events` — the schema-versioned :class:`Event` model, the
  :class:`EventSink` interface, and the process-global :data:`HUB`
  producers publish into;
* :mod:`.websocket` — a hand-rolled, stdlib-only RFC 6455 layer
  (handshake, frame codec, fragmentation/masking enforcement);
* :mod:`.broadcaster` — bounded fan-out to ``GET /observe`` clients
  with slow-consumer drop-and-evict;
* :mod:`.recorder` / :mod:`.replay` — rotating JSONL session logs and
  a pacing replayer that re-drives any consumer at recorded or
  accelerated speed;
* :mod:`.service` — the :class:`ObserveState` bundle ``repro serve
  --observe`` flips on, plus the static dashboard under ``ui/``.

See ``docs/observability.md`` ("Live observability") for the event
schema, the wire protocol notes, and the replay runbook.
"""

from .broadcaster import WebSocketBroadcaster
from .client import ObserveClient, stream_events
from .events import (
    HUB,
    SCHEMA_VERSION,
    Event,
    EventHub,
    EventSink,
    install_tracer_hook,
    validate_events,
)
from .recorder import SessionRecorder, read_session
from .replay import replay_events, replay_session
from .service import ObserveState

__all__ = [
    "HUB",
    "SCHEMA_VERSION",
    "Event",
    "EventHub",
    "EventSink",
    "ObserveClient",
    "ObserveState",
    "SessionRecorder",
    "WebSocketBroadcaster",
    "install_tracer_hook",
    "read_session",
    "replay_events",
    "replay_session",
    "stream_events",
    "validate_events",
]
