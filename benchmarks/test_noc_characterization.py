"""NoC characterization bench: latency-load curve + hub-burst drain.

Two standard interconnect views behind the paper's flexible-NoC claims:

1. the latency-load curve of the mesh under uniform and hotspot traffic
   (hotspot saturates earlier — the high-degree-vertex problem);
2. a flit-level hub-convergence burst drained with and without the hub's
   bypass segments — the configuration the degree-aware mapper installs.
"""

from conftest import emit

from repro.arch.noc import BypassSegment, FlexibleMeshTopology, NoCSimulator
from repro.eval.noc_characterization import latency_load_curve
from repro.eval.report import format_table

RATES = (0.01, 0.02, 0.05, 0.1)
K = 8
HOT = 36  # node (4, 4)


def _curves():
    uni = latency_load_curve(
        FlexibleMeshTopology(K), pattern="uniform", rates=RATES, warm_cycles=200
    )
    hot = latency_load_curve(
        FlexibleMeshTopology(K), pattern="hotspot", rates=RATES, warm_cycles=200
    )
    return uni, hot


def _hub_burst(with_bypass: bool) -> int:
    """Every node sends one 4-flit packet to the hub; return drain cycles."""
    topo = FlexibleMeshTopology(K)
    if with_bypass:
        topo.add_bypass_segment(BypassSegment("row", 4, 0, K - 1))
        topo.add_bypass_segment(BypassSegment("col", 4, 0, K - 1))
    sim = NoCSimulator(topo)
    for src in range(K * K):
        if src != HOT:
            sim.inject(src, HOT, 64)
    return sim.run().cycles


def test_latency_load_curves(benchmark):
    uni, hot = benchmark.pedantic(_curves, rounds=1, iterations=1)
    rows = [
        [f"{p.injection_rate:.2f}", f"{p.avg_latency:.1f}", f"{q.avg_latency:.1f}"]
        for p, q in zip(uni.points, hot.points)
    ]
    emit(
        format_table(
            ["inj rate", "uniform latency", "hotspot latency"],
            rows,
            title="Latency-load curves (8x8 mesh)",
        )
    )
    # Latency grows with load, and hotspot traffic is never cheaper at
    # high load than uniform.
    assert uni.points[-1].avg_latency >= uni.points[0].avg_latency
    assert hot.points[-1].avg_latency >= uni.points[-1].avg_latency


def test_hub_burst_drain(benchmark):
    plain = benchmark.pedantic(
        _hub_burst, args=(False,), rounds=1, iterations=1
    )
    fast = _hub_burst(with_bypass=True)
    emit(
        format_table(
            ["configuration", "drain cycles"],
            [["plain mesh", str(plain)], ["mesh + hub bypass", str(fast)]],
            title="Hub-convergence burst (63 senders x 4 flits)",
        )
    )
    # The hub's row/column segments must not hurt, and the analytical
    # model's E11 finding (bypass relieves hub drain) shows at flit level
    # as at-least-parity here; the ejection port is the hard floor.
    assert fast <= plain * 1.02
