"""Aggregated statistics for the flit-level NoC simulators."""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["NoCStats"]


@dataclass
class NoCStats:
    """Aggregated results of a simulation run."""

    cycles: int = 0
    packets_delivered: int = 0
    flits_delivered: int = 0
    total_packet_latency: int = 0
    max_packet_latency: int = 0
    mesh_flit_hops: int = 0
    bypass_flit_hops: int = 0
    stall_events: int = 0

    @property
    def avg_packet_latency(self) -> float:
        if self.packets_delivered == 0:
            return 0.0
        return self.total_packet_latency / self.packets_delivered

    @property
    def total_flit_hops(self) -> int:
        return self.mesh_flit_hops + self.bypass_flit_hops
