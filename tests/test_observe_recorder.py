"""Recorder and replay tests: rotation, tolerant reads, pacing."""

import asyncio
import json

import pytest

from repro.observe.events import SCHEMA_VERSION, Event
from repro.observe.recorder import SessionRecorder, read_session
from repro.observe.replay import iter_session, replay_events, replay_session


def make_events(n, *, start=1, gap=0.0):
    return [
        Event(seq=start + i, ts=100.0 + i * gap, type="stats.tick", data={"i": i})
        for i in range(n)
    ]


class TestSessionRecorder:
    def test_roundtrip_with_meta_header(self, tmp_path):
        path = tmp_path / "session.jsonl"
        recorder = SessionRecorder(path, source="unit")
        events = make_events(5)
        for event in events:
            recorder.emit(event)
        recorder.close()

        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        assert header["type"] == "session.meta"
        assert header["data"]["schema"] == SCHEMA_VERSION
        assert header["data"]["source"] == "unit"

        read, info = read_session(path)
        assert read == events
        assert info == {
            "schema": SCHEMA_VERSION,
            "segments": 1,
            "events": 5,
            "skipped": 0,
        }

    def test_rotation_keeps_newest_segments_in_order(self, tmp_path):
        path = tmp_path / "session.jsonl"
        recorder = SessionRecorder(path, max_bytes=1024, max_segments=2)
        events = make_events(60)  # ~80 bytes/line → several rotations
        for event in events:
            recorder.emit(event)
        recorder.close()

        assert recorder.rotations > 2
        segments = recorder.segments()
        assert segments[-1] == path
        assert len(segments) <= 3  # 2 historical + active
        read, info = read_session(path)
        # Oldest segments fell off, but what's left reads back oldest
        # first with contiguous, strictly increasing seq.
        seqs = [e.seq for e in read]
        assert seqs == list(range(seqs[0], seqs[0] + len(seqs)))
        assert seqs[-1] == 60
        assert info["segments"] == len(segments)

    def test_truncated_tail_is_skipped_not_fatal(self, tmp_path):
        path = tmp_path / "session.jsonl"
        recorder = SessionRecorder(path)
        for event in make_events(3):
            recorder.emit(event)
        recorder.close()
        with open(path, "ab") as handle:  # a SIGKILL mid-line
            handle.write(b'{"seq":4,"ts":103.0,"ty')

        read, info = read_session(path)
        assert [e.seq for e in read] == [1, 2, 3]
        assert info["skipped"] == 1

    def test_newer_schema_is_refused(self, tmp_path):
        path = tmp_path / "future.jsonl"
        meta = {
            "seq": 0,
            "ts": 0.0,
            "type": "session.meta",
            "data": {"schema": SCHEMA_VERSION + 1, "source": "future"},
        }
        path.write_text(json.dumps(meta) + "\n")
        with pytest.raises(ValueError, match="newer than this reader"):
            read_session(path)

    def test_missing_recording_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_session(tmp_path / "absent.jsonl")

    def test_garbage_lines_count_as_skipped(self, tmp_path):
        path = tmp_path / "session.jsonl"
        recorder = SessionRecorder(path)
        recorder.emit(make_events(1)[0])
        recorder.close()
        with open(path, "ab") as handle:
            handle.write(b"not json at all\n")
            handle.write(b'["a","list","line"]\n')
        read, info = read_session(path)
        assert len(read) == 1
        assert info["skipped"] == 2

    def test_snapshot_counts(self, tmp_path):
        recorder = SessionRecorder(tmp_path / "s.jsonl", source="unit")
        for event in make_events(4):
            recorder.emit(event)
        snap = recorder.snapshot()
        recorder.close()
        assert snap["events_recorded"] == 4
        assert snap["rotations"] == 0
        assert snap["segments"] == 1
        assert snap["bytes_written"] > 0


class TestReplay:
    def record(self, tmp_path, events):
        path = tmp_path / "session.jsonl"
        recorder = SessionRecorder(path)
        for event in events:
            recorder.emit(event)
        recorder.close()
        return path

    def test_replay_preserves_events_byte_for_byte(self, tmp_path):
        events = make_events(4, gap=0.5)
        path = self.record(tmp_path, events)
        assert iter_session(path) == events

        received = []
        count = asyncio.run(replay_events(events, received.append, speed=0))
        assert count == 4
        assert received == events

    def test_pacing_honours_recorded_gaps_and_speed(self, tmp_path):
        events = make_events(3, gap=1.0)
        sleeps = []

        async def fake_sleep(delay):
            sleeps.append(delay)

        asyncio.run(
            replay_events(events, lambda e: None, speed=2.0, sleep=fake_sleep)
        )
        assert sleeps == [0.5, 0.5]  # 1s recorded gaps at double speed

    def test_long_gaps_are_capped(self):
        events = [
            Event(seq=1, ts=0.0, type="stats.tick"),
            Event(seq=2, ts=3600.0, type="stats.tick"),
        ]
        sleeps = []

        async def fake_sleep(delay):
            sleeps.append(delay)

        asyncio.run(
            replay_events(events, lambda e: None, speed=1.0, sleep=fake_sleep)
        )
        assert sleeps == [30.0]  # an overnight idle must not stall replay

    def test_replay_session_reads_from_disk(self, tmp_path):
        events = make_events(5)
        path = self.record(tmp_path, events)
        received = []
        total = asyncio.run(replay_session(path, received.append, speed=0))
        assert total == 5
        assert received == events
