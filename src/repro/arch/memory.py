"""On-chip memory models: distributed bank buffers and reuse FIFOs.

Each Aurora PE owns a distributed bank buffer (100 KB at defaults) plus a
small reuse FIFO that double-buffers intermediate feature vectors received
from neighboring PEs (paper §III-D).  Baselines use a monolithic global
buffer instead; both are modelled here so the simulators charge accesses
consistently.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["BufferStats", "BankBuffer", "ReuseFIFO", "GlobalBuffer"]


@dataclass
class BufferStats:
    """Access accounting for one buffer instance."""

    reads_bytes: int = 0
    writes_bytes: int = 0
    overflow_bytes: int = 0  # bytes that did not fit (spilled to DRAM)

    @property
    def total_bytes(self) -> int:
        return self.reads_bytes + self.writes_bytes


class BankBuffer:
    """A PE's distributed bank buffer with explicit allocation tracking.

    Allocation is a simple bump allocator over named regions (weights,
    features, edge data); ``allocate`` fails over to reporting spill bytes
    rather than raising, because the simulator's response to overflow is
    extra DRAM traffic, not an error.
    """

    def __init__(self, capacity_bytes: int, *, banks: int = 4) -> None:
        if capacity_bytes < 1:
            raise ValueError("capacity must be positive")
        if banks < 1:
            raise ValueError("banks must be >= 1")
        self.capacity_bytes = capacity_bytes
        self.banks = banks
        self.stats = BufferStats()
        self._regions: dict[str, int] = {}

    # ------------------------------------------------------------------
    @property
    def used_bytes(self) -> int:
        return sum(self._regions.values())

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.used_bytes

    def allocate(self, region: str, num_bytes: int) -> int:
        """Reserve ``num_bytes`` for ``region``; returns spilled bytes.

        Re-allocating an existing region replaces its reservation.
        """
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        self._regions.pop(region, None)
        grant = min(num_bytes, self.free_bytes)
        self._regions[region] = grant
        spill = num_bytes - grant
        self.stats.overflow_bytes += spill
        return spill

    def release(self, region: str) -> None:
        self._regions.pop(region, None)

    def region_bytes(self, region: str) -> int:
        return self._regions.get(region, 0)

    def read(self, num_bytes: int) -> None:
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        self.stats.reads_bytes += num_bytes

    def write(self, num_bytes: int) -> None:
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        self.stats.writes_bytes += num_bytes

    def bank_conflict_factor(self, concurrent_streams: int) -> float:
        """Serialisation multiplier when streams exceed bank count."""
        if concurrent_streams < 1:
            return 1.0
        return max(1.0, concurrent_streams / self.banks)


class ReuseFIFO:
    """Double-buffered inter-PE reuse FIFO (paper Fig. 5).

    Stores intermediate feature vectors received from neighbors at the
    vertex-update phase and updated edge features at aggregation.  Acts as
    a double buffer: one half fills while the other drains, so a transfer
    is hidden as long as it fits in half the capacity.
    """

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes < 2:
            raise ValueError("capacity must be >= 2 bytes")
        self.capacity_bytes = capacity_bytes
        self.stats = BufferStats()

    @property
    def half_capacity(self) -> int:
        return self.capacity_bytes // 2

    def push(self, num_bytes: int) -> bool:
        """Record an incoming transfer; True if it fits in one half
        (i.e. fully overlapped), False if the producer must stall."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        self.stats.writes_bytes += num_bytes
        return num_bytes <= self.half_capacity

    def pop(self, num_bytes: int) -> None:
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        self.stats.reads_bytes += num_bytes


class GlobalBuffer:
    """Monolithic on-chip buffer used by the baseline accelerators.

    Same capacity as Aurora's aggregate distributed buffers (the paper
    sizes all baselines to 100 MB), but accesses are charged at the
    higher global-buffer energy and it cannot forward data between
    pipeline phases without a round trip.
    """

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes < 1:
            raise ValueError("capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self.stats = BufferStats()

    def fits(self, num_bytes: int) -> bool:
        return num_bytes <= self.capacity_bytes

    def read(self, num_bytes: int) -> None:
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        self.stats.reads_bytes += num_bytes

    def write(self, num_bytes: int) -> None:
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        self.stats.writes_bytes += num_bytes
