"""Sweep orchestration: cache lookup → executor fan-out → accounting.

:func:`run_jobs` is the single entry point every sweep in the repo goes
through (accelerator comparisons, the experiment registry, sensitivity
analysis, the ``repro sweep`` CLI).  It deduplicates identical jobs,
serves warm results from the cache, hands the cold remainder to the
executor, writes fresh results back, and reports hit/miss/error/wall-time
metrics for the sweep summary.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable

from ..core.results import SimulationResult
from ..perf import PERF
from ..telemetry import TRACER
from .cache import ResultCache, as_cache
from .executor import CANCELLED, SerialExecutor, get_executor
from .jobs import SimJob, job_key

__all__ = [
    "JobOutcome",
    "SweepMetrics",
    "SweepReport",
    "run_jobs",
    "run_jobs_async",
]


@dataclass
class JobOutcome:
    """One job's result (or error) plus where it came from."""

    job: SimJob
    key: str
    result: SimulationResult | None
    error: str | None = None
    seconds: float = 0.0  # simulation wall time; 0.0 for cache hits
    cached: bool = False
    exec_meta: dict | None = None  # tile-reuse counters, when tiles cached

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class SweepMetrics:
    """Counters for one ``run_jobs`` invocation."""

    total_jobs: int = 0
    unique_jobs: int = 0
    executed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    errors: int = 0
    cancelled: int = 0
    wall_seconds: float = 0.0
    sim_seconds: float = 0.0  # summed per-job execution time
    job_seconds: dict[str, float] = field(default_factory=dict)  # key → s

    def summary(self) -> str:
        """One-line sweep summary for CLI output."""
        parts = [
            f"{self.total_jobs} jobs"
            + (
                f" ({self.unique_jobs} unique)"
                if self.unique_jobs != self.total_jobs
                else ""
            ),
            f"{self.executed} executed",
            f"cache {self.cache_hits} hit / {self.cache_misses} miss",
        ]
        if self.errors:
            parts.append(f"{self.errors} errors")
        if self.cancelled:
            parts.append(f"{self.cancelled} cancelled")
        parts.append(f"wall {self.wall_seconds:.2f}s")
        if self.executed:
            parts.append(f"sim {self.sim_seconds:.2f}s")
        return "sweep: " + " | ".join(parts)


@dataclass
class SweepReport:
    """Outcomes in request order plus the sweep metrics."""

    outcomes: list[JobOutcome]
    metrics: SweepMetrics

    def results(self) -> list[SimulationResult | None]:
        return [o.result for o in self.outcomes]

    def errors(self) -> list[JobOutcome]:
        return [o for o in self.outcomes if not o.ok]

    def raise_on_error(self) -> None:
        """Fail loudly when a sweep needs its full grid."""
        failed = self.errors()
        if failed:
            lines = ", ".join(
                f"{o.job.label()}: {o.error}" for o in failed[:5]
            )
            more = f" (+{len(failed) - 5} more)" if len(failed) > 5 else ""
            raise RuntimeError(f"{len(failed)} job(s) failed — {lines}{more}")


def run_jobs(
    jobs: Iterable[SimJob],
    *,
    executor=None,
    cache: ResultCache | bool | None = None,
    jobs_n: int | None = None,
    progress: Callable[[JobOutcome], None] | None = None,
    cancel=None,
) -> SweepReport:
    """Run a batch of simulation jobs through cache + executor.

    Identical jobs (same content hash) are simulated once and fanned back
    out to every requesting position.  With a cache, warm jobs skip
    execution entirely; fresh results are written back so the next sweep
    starts warm.  ``jobs_n`` is a convenience that builds a default
    executor (serial for 1, a process pool otherwise) when ``executor``
    is not given.

    ``cancel`` is an optional :class:`threading.Event`; once it is set,
    not-yet-executed jobs come back as ``error="cancelled"`` outcomes
    (counted in ``metrics.cancelled``, not ``metrics.errors``) instead of
    being simulated — the mechanism budgeted searches use to stop a
    losing batch mid-flight.
    """
    start = time.perf_counter()
    job_list = list(jobs)
    if executor is None:
        executor = get_executor(jobs_n) if jobs_n else SerialExecutor()
    store = as_cache(cache)

    keys = [job_key(job) for job in job_list]
    unique: dict[str, SimJob] = {}
    for key, job in zip(keys, job_list):
        unique.setdefault(key, job)

    sweep_span = TRACER.span(
        "run_jobs",
        {"jobs": len(job_list), "unique": len(unique), "executor": getattr(executor, "name", type(executor).__name__)},
    )
    with sweep_span as span:
        outcomes: dict[str, JobOutcome] = {}
        pending: list[tuple[str, SimJob]] = []
        with TRACER.span("cache.probe", {"jobs": len(unique)}) as probe:
            for key, job in unique.items():
                payload = store.load(key) if store is not None else None
                if payload is not None:
                    outcome = JobOutcome(
                        job,
                        key,
                        SimulationResult.from_dict(payload),
                        cached=True,
                        exec_meta=payload.get("_exec"),
                    )
                    outcomes[key] = outcome
                    if progress is not None:
                        progress(outcome)
                else:
                    pending.append((key, job))
            probe.set(
                hits=len(unique) - len(pending),
                misses=len(pending) if store is not None else 0,
            )

        # Propagate this span's context into the executor (possibly a
        # process pool) and merge the child spans the records bring back
        # — one request, one tree, across the process boundary.
        trace_ctx = TRACER.current_context()
        run_kwargs: dict = {}
        if cancel is not None and getattr(executor, "supports_cancel", False):
            run_kwargs["cancel"] = cancel
        if trace_ctx is not None and getattr(
            executor, "supports_trace_ctx", False
        ):
            records = executor.run(
                [job for _, job in pending], trace_ctx=trace_ctx, **run_kwargs
            )
            for record in records:
                TRACER.merge(record.spans)
        else:
            records = executor.run([job for _, job in pending], **run_kwargs)
        span.set(executed=len(records))
    metrics = SweepMetrics(
        total_jobs=len(job_list),
        unique_jobs=len(unique),
        executed=len(records),
        cache_hits=len(unique) - len(pending),
        cache_misses=len(pending) if store is not None else 0,
    )
    PERF.incr("runtime.cache_hit", metrics.cache_hits)
    PERF.incr("runtime.cache_miss", metrics.cache_misses)
    for (key, job), record in zip(pending, records):
        if record.ok:
            if store is not None:
                store.store(key, record.payload, job=job)
            outcome = JobOutcome(
                job,
                key,
                SimulationResult.from_dict(record.payload),
                seconds=record.seconds,
                exec_meta=record.payload.get("_exec"),
            )
        else:
            if record.error == CANCELLED:
                metrics.cancelled += 1
            else:
                metrics.errors += 1
            outcome = JobOutcome(
                job, key, None, error=record.error, seconds=record.seconds
            )
        metrics.job_seconds[key] = record.seconds
        metrics.sim_seconds += record.seconds
        outcomes[key] = outcome
        if progress is not None:
            progress(outcome)

    # Cancelled jobs were abandoned, not run.
    metrics.executed -= metrics.cancelled
    metrics.wall_seconds = time.perf_counter() - start
    return SweepReport([outcomes[key] for key in keys], metrics)


async def run_jobs_async(
    jobs: Iterable[SimJob],
    *,
    executor=None,
    cache: ResultCache | bool | None = None,
    jobs_n: int | None = None,
    progress: Callable[[JobOutcome], None] | None = None,
    cancel=None,
) -> SweepReport:
    """:func:`run_jobs` for asyncio callers (the ``repro.serve`` batcher).

    The sweep itself is blocking (cache I/O, serial simulation or
    process-pool collection), so it runs on a worker thread; the event
    loop stays free to accept and shed requests while a batch executes.
    """
    import asyncio
    import functools

    return await asyncio.to_thread(
        functools.partial(
            run_jobs,
            jobs,
            executor=executor,
            cache=cache,
            jobs_n=jobs_n,
            progress=progress,
            cancel=cancel,
        )
    )
