"""E3 — regenerate Fig. 7: normalized DRAM accesses per dataset.

Expected shape (paper §VI-B): Aurora has the lowest DRAM volume on every
dataset; the weakest baselines (HyGCN, and the weight-duplicating /
spilling designs on sparse-feature datasets) sit several-fold higher;
dense-feature Reddit compresses everyone toward parity.
"""

from conftest import emit

from repro.eval import render_normalized_figure


def test_fig7_dram_accesses(benchmark, sweep):
    text = benchmark(
        render_normalized_figure,
        sweep,
        "dram_accesses",
        title="Fig. 7: normalized DRAM accesses (baseline / Aurora)",
    )
    emit(text)
    grid = sweep.normalized_grid("dram_accesses")
    for ds in sweep.datasets:
        for acc in sweep.accelerators:
            if acc == "aurora":
                continue
            # Aurora never loses on DRAM volume (>= within rounding).
            assert grid[ds][acc] > 0.9, (ds, acc)
    # Reductions land in the paper's overall band (15%-86% per dataset).
    for ds in sweep.datasets:
        red = sweep.per_dataset_reduction("dram_accesses", ds)
        assert 5.0 < red < 95.0, (ds, red)
