"""Fitness-trajectory artifacts: JSONL writer/reader and renderers.

One search produces one JSONL file: a header record followed by one
record per evaluation.  Records carry only *deterministic* fields —
evaluation index, rung, job key, decoded point, fitness, running best —
never wall times or cache flags, so the same seeded search produces a
bit-identical file whether it ran serially, on a process pool, warm or
cold, straight through or resumed from a checkpoint.  That invariant is
what the determinism tests diff.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO, Iterable

__all__ = [
    "TRAJECTORY_SCHEMA_VERSION",
    "TrajectoryWriter",
    "read_trajectory",
    "summarize_trajectory",
    "render_best",
    "render_trajectory",
]

TRAJECTORY_SCHEMA_VERSION = 1


def _dumps(record: dict) -> str:
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


class TrajectoryWriter:
    """Append-only JSONL sink for one search's evaluations."""

    def __init__(self, path: str | Path, *, append: bool = False) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh: IO[str] = open(self.path, "a" if append else "w")

    def header(
        self,
        *,
        space: str,
        signature: str,
        optimizer: str,
        objective: str,
        seed: int,
    ) -> None:
        """Identity record.  Deliberately excludes run metadata such as
        the evaluation budget: a search resumed with a larger budget
        must produce a byte-identical file to one run straight through."""
        self._fh.write(
            _dumps(
                {
                    "kind": "header",
                    "schema_version": TRAJECTORY_SCHEMA_VERSION,
                    "space": space,
                    "signature": signature,
                    "optimizer": optimizer,
                    "objective": objective,
                    "seed": seed,
                }
            )
            + "\n"
        )
        self._fh.flush()

    def evaluation(
        self,
        *,
        index: int,
        key: str,
        point: dict,
        rung: int,
        fidelity: float,
        fitness: float | None,
        best_fitness: float | None,
        ok: bool,
    ) -> None:
        self._fh.write(
            _dumps(
                {
                    "kind": "evaluation",
                    "i": index,
                    "key": key,
                    "point": point,
                    "rung": rung,
                    "fidelity": fidelity,
                    "fitness": fitness,
                    "best_fitness": best_fitness,
                    "ok": ok,
                }
            )
            + "\n"
        )

    def flush(self) -> None:
        self._fh.flush()

    def close(self) -> None:
        self._fh.close()

    def __enter__(self) -> "TrajectoryWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_trajectory(path: str | Path) -> tuple[dict | None, list[dict]]:
    """Parse a trajectory file into ``(header, evaluation records)``."""
    header: dict | None = None
    records: list[dict] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if record.get("kind") == "header":
                header = record
            else:
                records.append(record)
    return header, records


def summarize_trajectory(records: Iterable[dict]) -> dict:
    """Best fitness, evaluation counts and the improvement points."""
    records = list(records)
    best = None
    best_record = None
    improvements: list[dict] = []
    failures = 0
    for record in records:
        if not record.get("ok", False):
            failures += 1
            continue
        fitness = record.get("fitness")
        if fitness is None:
            continue
        if best is None or fitness < best:
            best = fitness
            best_record = record
            improvements.append(record)
    return {
        "evaluations": len(records),
        "failures": failures,
        "best_fitness": best,
        "best_point": (best_record or {}).get("point"),
        "best_key": (best_record or {}).get("key"),
        "improvements": improvements,
    }


def render_best(summary: dict, *, objective: str = "fitness") -> str:
    """One-paragraph result block for CLI output."""
    lines = [
        f"evaluations: {summary['evaluations']}"
        + (f" ({summary['failures']} failed)" if summary["failures"] else "")
    ]
    if summary["best_fitness"] is None:
        lines.append("no successful evaluations")
        return "\n".join(lines)
    lines.append(f"best {objective}: {summary['best_fitness']:.6g}")
    if summary.get("best_key"):
        lines.append(f"best job key: {summary['best_key']}")
    point = summary.get("best_point") or {}
    for name in sorted(point):
        lines.append(f"  {name} = {point[name]}")
    return "\n".join(lines)


def render_trajectory(records: Iterable[dict], *, width: int = 48) -> str:
    """ASCII sparkline table of the running best over evaluations."""
    summary = summarize_trajectory(records)
    improvements = summary["improvements"]
    if not improvements:
        return "trajectory: no successful evaluations"
    lines = ["trajectory (running best):"]
    first = improvements[0]["fitness"]
    last = summary["best_fitness"]
    span = first - last
    for record in improvements:
        gain = (first - record["fitness"]) / span if span > 0 else 1.0
        bar = "#" * max(1, int(round(gain * width)))
        lines.append(
            f"  eval {record['i']:>5}  {record['fitness']:.6g}  {bar}"
        )
    return "\n".join(lines)
