"""Result export: comparison grids to CSV/JSON for external tooling."""

from __future__ import annotations

import csv
import json
from pathlib import Path

from .harness import ComparisonResults
from .metrics import METRICS

__all__ = ["grid_to_csv", "results_to_json", "write_csv", "write_json"]


def grid_to_csv(comparison: ComparisonResults, metric: str) -> str:
    """One metric's grid as CSV text (datasets × accelerators)."""
    grid = comparison.metric_grid(metric)
    import io

    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(["dataset", *comparison.accelerators])
    for ds in comparison.datasets:
        writer.writerow(
            [ds, *(repr(grid[ds][acc]) for acc in comparison.accelerators)]
        )
    return buf.getvalue()


def results_to_json(comparison: ComparisonResults) -> dict:
    """Every metric (raw + normalized) as a JSON-serialisable dict."""
    out: dict = {
        "model": comparison.model_name,
        "datasets": list(comparison.datasets),
        "accelerators": list(comparison.accelerators),
        "metrics": {},
        "normalized": {},
    }
    for metric in METRICS:
        out["metrics"][metric] = comparison.metric_grid(metric)
        out["normalized"][metric] = comparison.normalized_grid(metric)
    return out


def write_csv(
    comparison: ComparisonResults, metric: str, path: str | Path
) -> None:
    Path(path).write_text(grid_to_csv(comparison, metric))


def write_json(comparison: ComparisonResults, path: str | Path) -> None:
    Path(path).write_text(json.dumps(results_to_json(comparison), indent=1))
