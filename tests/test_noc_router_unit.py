"""Unit tests for the lumped router primitives (arch/noc/router.py)."""

import pytest

from repro.arch.noc import INJECT_PORT, FlexibleMeshTopology, Router
from repro.arch.noc.packet import Flit, Packet
from repro.config import NoCConfig


def _flit(src=0, dst=3, hop=0, index=0, num_flits=1, route=(0, 1, 2, 3)):
    pkt = Packet(
        pid=0, src=src, dst=dst, size_bytes=16, inject_cycle=0, route=route
    )
    pkt.num_flits = num_flits
    return Flit(packet=pkt, index=index, hop=hop, ready_cycle=0)


class TestPacketFlit:
    def test_packet_validation(self):
        with pytest.raises(ValueError, match="byte"):
            Packet(pid=0, src=0, dst=1, size_bytes=0, inject_cycle=0, route=(0, 1))
        with pytest.raises(ValueError, match="endpoints"):
            Packet(pid=0, src=0, dst=1, size_bytes=4, inject_cycle=0, route=(1, 0))

    def test_latency_none_until_done(self):
        pkt = Packet(pid=0, src=0, dst=1, size_bytes=4, inject_cycle=5, route=(0, 1))
        assert pkt.latency is None
        pkt.done_cycle = 9
        assert pkt.latency == 4

    def test_hops(self):
        pkt = Packet(pid=0, src=0, dst=2, size_bytes=4, inject_cycle=0, route=(0, 1, 2))
        assert pkt.hops == 2

    def test_flit_roles(self):
        head = _flit(index=0, num_flits=3)
        tail = _flit(index=2, num_flits=3)
        assert head.is_head and not head.is_tail
        assert tail.is_tail and not tail.is_head

    def test_at_destination(self):
        f = _flit(hop=3)
        assert f.at_destination
        assert not _flit(hop=1).at_destination


class TestRouter:
    def test_injection_port_is_deep(self):
        r = Router(0, NoCConfig(vcs_per_port=1, vc_depth=2))
        inject = r.input_port(INJECT_PORT)
        network = r.input_port(5)
        assert inject.capacity > network.capacity
        assert network.capacity == 2

    def test_accept_respects_capacity(self):
        r = Router(0, NoCConfig(vcs_per_port=1, vc_depth=1))
        assert r.accept(5, _flit())
        assert not r.accept(5, _flit())  # VC full

    def test_heads_by_output_groups(self):
        r = Router(1, NoCConfig())
        f = _flit(hop=1)  # at node 1, next hop 2
        r.accept(0, f)
        wants = r.heads_by_output(now=0)
        assert wants == {2: [0]}

    def test_heads_respect_ready_cycle(self):
        r = Router(1, NoCConfig())
        f = _flit(hop=1)
        f.ready_cycle = 10
        r.accept(0, f)
        assert r.heads_by_output(now=0) == {}
        assert r.heads_by_output(now=10) == {2: [0]}

    def test_ejection_target_is_self(self):
        r = Router(3, NoCConfig())
        f = _flit(hop=3)  # arrived
        r.accept(2, f)
        assert r.heads_by_output(now=0) == {3: [2]}

    def test_round_robin_rotates(self):
        r = Router(1, NoCConfig())
        first = r.arbitrate(2, [0, 5])
        second = r.arbitrate(2, [0, 5])
        assert {first, second} == {0, 5}

    def test_single_contender_fast_path(self):
        r = Router(1, NoCConfig())
        assert r.arbitrate(2, [7]) == 7

    def test_occupancy(self):
        r = Router(0, NoCConfig())
        r.accept(5, _flit())
        r.accept(6, _flit())
        assert r.total_occupancy == 2
        r.pop_head(5)
        assert r.total_occupancy == 1
