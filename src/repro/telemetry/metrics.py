"""Metrics: counters, gauges, and fixed-bucket histograms.

A :class:`MetricsRegistry` holds named metric *families*; a family with
label names fans out into one child series per label-value tuple (the
Prometheus data model, minus the pull protocol).  Everything is
thread-safe: serve's executor threads, the event loop, and process-pool
collection all report into one process-global :data:`METRICS`.

The legacy :class:`repro.perf.instrumentation.PerfRegistry` is a thin
adapter over two families in this registry (``repro_stage_seconds`` and
``repro_events_total``), so every existing ``PERF`` call site feeds the
same store that ``/metrics`` renders.

Histogram quantiles are *bucket-resolution estimates*: ``quantile(q)``
returns the upper bound of the bucket containing the q-th sample, which
is exactly the fidelity Prometheus' ``histogram_quantile`` offers.
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left
from math import inf

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "METRICS",
    "DEFAULT_BUCKETS",
]

_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
_LABEL_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*")

#: Log-spaced seconds buckets covering 10µs … 60s — wide enough for both
#: per-tile stage timers and end-to-end request latencies.
DEFAULT_BUCKETS: tuple[float, ...] = (
    1e-5, 1e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
    10.0, 30.0, 60.0,
)


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("_lock", "value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value = 0.0

    def inc(self, n: float = 1.0) -> None:
        if n < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self.value += n

    def get(self) -> float:
        with self._lock:
            return self.value

    def as_dict(self) -> dict:
        return {"value": self.get()}


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("_lock", "value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, n: float = 1.0) -> None:
        with self._lock:
            self.value += n

    def dec(self, n: float = 1.0) -> None:
        with self._lock:
            self.value -= n

    def get(self) -> float:
        with self._lock:
            return self.value

    def as_dict(self) -> dict:
        return {"value": self.get()}


class Histogram:
    """Fixed-bucket histogram with count, sum, and quantile estimates."""

    __slots__ = ("_lock", "buckets", "counts", "sum", "count")

    def __init__(self, buckets: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("buckets must be a non-empty ascending sequence")
        self._lock = threading.Lock()
        self.buckets = tuple(float(b) for b in buckets)
        self.counts = [0] * (len(self.buckets) + 1)  # trailing +Inf bucket
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        idx = bisect_left(self.buckets, value)
        with self._lock:
            self.counts[idx] += 1
            self.sum += value
            self.count += 1

    def quantile(self, q: float) -> float | None:
        """Bucket-upper-bound estimate of the q-th quantile."""
        if not (0.0 <= q <= 1.0):
            raise ValueError("q must be in [0, 1]")
        with self._lock:
            total = self.count
            counts = list(self.counts)
        if total == 0:
            return None
        target = q * total
        cumulative = 0
        for i, n in enumerate(counts):
            cumulative += n
            if cumulative >= target and n:
                return self.buckets[i] if i < len(self.buckets) else inf
        return inf

    def as_dict(self) -> dict:
        with self._lock:
            return {
                "count": self.count,
                "sum": self.sum,
                "buckets": dict(zip(self.buckets, self.counts)),
                "overflow": self.counts[-1],
            }


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """One named metric, fanned out by label values."""

    def __init__(
        self,
        name: str,
        kind: str,
        help: str = "",
        labelnames: tuple[str, ...] = (),
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        if not _NAME_RE.fullmatch(name):
            raise ValueError(f"invalid metric name: {name!r}")
        for label in labelnames:
            if not _LABEL_RE.fullmatch(label):
                raise ValueError(f"invalid label name: {label!r}")
        if kind not in _KINDS:
            raise ValueError(f"kind must be one of {sorted(_KINDS)}")
        self.name = name
        self.kind = kind
        self.help = help
        self.labelnames = tuple(labelnames)
        self._buckets = tuple(buckets)
        self._lock = threading.Lock()
        self._children: dict[tuple[str, ...], Counter | Gauge | Histogram] = {}
        if not self.labelnames:  # an unlabelled family is its one child
            self._children[()] = self._make()

    def _make(self):
        if self.kind == "histogram":
            return Histogram(self._buckets)
        return _KINDS[self.kind]()

    def labels(self, **labelvalues):
        """The child series for one label-value assignment."""
        if set(labelvalues) != set(self.labelnames):
            raise ValueError(
                f"{self.name} expects labels {self.labelnames}, "
                f"got {tuple(sorted(labelvalues))}"
            )
        key = tuple(str(labelvalues[name]) for name in self.labelnames)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.setdefault(key, self._make())
        return child

    # Unlabelled convenience pass-throughs -----------------------------
    def inc(self, n: float = 1.0) -> None:
        self._children[()].inc(n)

    def set(self, value: float) -> None:
        self._children[()].set(value)

    def dec(self, n: float = 1.0) -> None:
        self._children[()].dec(n)

    def observe(self, value: float) -> None:
        self._children[()].observe(value)

    def get(self):
        return self._children[()].get()

    def quantile(self, q: float):
        return self._children[()].quantile(q)

    # ------------------------------------------------------------------
    def series(self) -> dict[tuple[str, ...], "Counter | Gauge | Histogram"]:
        with self._lock:
            return dict(self._children)

    def clear(self) -> None:
        """Drop every child series (and re-seed the unlabelled one)."""
        with self._lock:
            self._children.clear()
            if not self.labelnames:
                self._children[()] = self._make()


def _escape(value: str) -> str:
    return value.replace("\\", r"\\").replace("\n", r"\n").replace('"', r'\"')


def _labels_text(names: tuple[str, ...], values: tuple[str, ...], extra: str = "") -> str:
    parts = [f'{n}="{_escape(v)}"' for n, v in zip(names, values)]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


class MetricsRegistry:
    """Process-wide collection of metric families."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, MetricFamily] = {}

    def _get_or_create(self, name: str, kind: str, **kwargs) -> MetricFamily:
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = MetricFamily(name, kind, **kwargs)
                self._families[name] = family
                return family
        if family.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as {family.kind}"
            )
        return family

    def counter(
        self, name: str, help: str = "", labelnames: tuple[str, ...] = ()
    ) -> MetricFamily:
        return self._get_or_create(
            name, "counter", help=help, labelnames=labelnames
        )

    def gauge(
        self, name: str, help: str = "", labelnames: tuple[str, ...] = ()
    ) -> MetricFamily:
        return self._get_or_create(
            name, "gauge", help=help, labelnames=labelnames
        )

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: tuple[str, ...] = (),
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> MetricFamily:
        return self._get_or_create(
            name, "histogram", help=help, labelnames=labelnames, buckets=buckets
        )

    def families(self) -> list[MetricFamily]:
        with self._lock:
            return list(self._families.values())

    def reset(self) -> None:
        """Clear every series (families stay registered)."""
        for family in self.families():
            family.clear()

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-ready view of every family and series."""
        out: dict = {}
        for family in self.families():
            series = {}
            for key, child in sorted(family.series().items()):
                label = ",".join(key) if key else ""
                series[label] = child.as_dict()
            out[family.name] = {
                "type": family.kind,
                "help": family.help,
                "labels": list(family.labelnames),
                "series": series,
            }
        return out

    def render_prometheus(self) -> str:
        """The Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []
        for family in sorted(self.families(), key=lambda f: f.name):
            if family.help:
                lines.append(f"# HELP {family.name} {_escape(family.help)}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for key, child in sorted(family.series().items()):
                labels = _labels_text(family.labelnames, key)
                if isinstance(child, Histogram):
                    state = child.as_dict()
                    cumulative = 0
                    for bound, count in state["buckets"].items():
                        cumulative += count
                        le = _labels_text(
                            family.labelnames, key, extra=f'le="{bound:g}"'
                        )
                        lines.append(f"{family.name}_bucket{le} {cumulative}")
                    le = _labels_text(
                        family.labelnames, key, extra='le="+Inf"'
                    )
                    lines.append(
                        f"{family.name}_bucket{le} {state['count']}"
                    )
                    lines.append(
                        f"{family.name}_sum{labels} {state['sum']:g}"
                    )
                    lines.append(
                        f"{family.name}_count{labels} {state['count']}"
                    )
                else:
                    lines.append(f"{family.name}{labels} {child.get():g}")
        return "\n".join(lines) + "\n"


#: The process-global registry ``/metrics`` renders and ``PERF`` feeds.
METRICS = MetricsRegistry()
