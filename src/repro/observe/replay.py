"""Re-drive a recorded session through any event consumer.

Replay preserves the recorded events byte-for-byte — same ``seq``,
same ``ts``, same data — and only controls *when* each one is
delivered: at the recorded inter-event gaps (``speed=1``), faster
(``speed=4``), or flat-out (``speed=0``).  Consumers are plain
callables, so the same loop feeds the WebSocket broadcaster for a
live-again dashboard, stdout for ``repro observe replay``, or a test's
list.
"""

from __future__ import annotations

import asyncio

from .events import Event
from .recorder import read_session

__all__ = ["iter_session", "replay_events", "replay_session"]

#: Gaps above this are capped during paced replay: a recording that sat
#: idle overnight should not make the replay sit idle overnight.
MAX_GAP_SECONDS = 30.0


def iter_session(path) -> list[Event]:
    """The recorded events of a session, oldest first (meta excluded)."""
    events, _info = read_session(path)
    return events


async def replay_events(
    events,
    emit,
    *,
    speed: float = 1.0,
    max_gap: float = MAX_GAP_SECONDS,
    sleep=asyncio.sleep,
) -> int:
    """Deliver ``events`` to ``emit`` paced by their recorded timestamps.

    ``speed`` scales time: 1.0 replays in real time, 2.0 twice as fast,
    0 (or negative) with no pacing at all.  Returns the event count.
    """
    delivered = 0
    previous_ts = None
    for event in events:
        if speed > 0 and previous_ts is not None:
            gap = (event.ts - previous_ts) / speed
            if gap > 0:
                await sleep(min(gap, max_gap))
        previous_ts = event.ts
        emit(event)
        delivered += 1
    return delivered


async def replay_session(
    path, emit, *, speed: float = 1.0, loop_forever: bool = False
) -> int:
    """Replay a recording file into ``emit``; optionally loop it."""
    events = iter_session(path)
    total = 0
    while True:
        total += await replay_events(events, emit, speed=speed)
        if not loop_forever:
            return total
