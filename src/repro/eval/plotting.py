"""ASCII chart rendering for terminal-native figures.

The benches print tables; these helpers additionally render the grouped
horizontal bar charts the paper's figures use, so a terminal session can
eyeball shapes without matplotlib.
"""

from __future__ import annotations

from .harness import ComparisonResults

__all__ = ["bar_chart", "render_figure_bars"]


def bar_chart(
    labels: list[str],
    values: list[float],
    *,
    width: int = 48,
    unit: str = "",
    title: str | None = None,
) -> str:
    """Horizontal ASCII bar chart, scaled to the maximum value."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have equal length")
    if not labels:
        return title or ""
    if any(v < 0 for v in values):
        raise ValueError("bar values must be non-negative")
    peak = max(values) or 1.0
    label_w = max(len(s) for s in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        bar = "█" * max(1, int(round(width * value / peak))) if value else ""
        lines.append(f"{label.ljust(label_w)} | {bar} {value:.2f}{unit}")
    return "\n".join(lines)


def render_figure_bars(
    comparison: ComparisonResults,
    metric: str,
    *,
    title: str,
    width: int = 40,
) -> str:
    """Grouped bars (per dataset) of a metric normalised to Aurora —
    the paper's figure layout rendered for a terminal."""
    grid = comparison.normalized_grid(metric)
    chunks = [title]
    for ds in comparison.datasets:
        labels = list(comparison.accelerators)
        values = [grid[ds][acc] for acc in labels]
        chunks.append(
            bar_chart(labels, values, width=width, unit="x", title=f"[{ds}]")
        )
    return "\n\n".join(chunks)
