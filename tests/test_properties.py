"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arch.noc import FlexibleMeshTopology, compute_route, xy_route
from repro.graphs import from_edge_list, gini_coefficient, tile_graph
from repro.mapping import PERegion, degree_aware_map, hashing_map
from repro.mapping.nqueen import fixed_pattern
from repro.models import LayerDims, extract_workload, get_model, list_models
from repro.partition import partition


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

@st.composite
def edge_lists(draw, max_n=40, max_m=120):
    n = draw(st.integers(min_value=2, max_value=max_n))
    m = draw(st.integers(min_value=0, max_value=max_m))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=n - 1),
                st.integers(min_value=0, max_value=n - 1),
            ),
            min_size=m,
            max_size=m,
        )
    )
    return n, edges


class TestCSRProperties:
    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_degrees_sum_to_edges(self, ne):
        n, edges = ne
        g = from_edge_list(n, edges)
        assert int(g.degrees.sum()) == g.num_edges
        assert int(g.in_degrees.sum()) == g.num_edges

    @given(edge_lists())
    @settings(max_examples=60, deadline=None)
    def test_reverse_preserves_edge_count(self, ne):
        n, edges = ne
        g = from_edge_list(n, edges)
        assert g.reverse().num_edges == g.num_edges

    @given(edge_lists())
    @settings(max_examples=40, deadline=None)
    def test_csc_is_consistent_transpose(self, ne):
        n, edges = ne
        g = from_edge_list(n, edges)
        indptr, indices = g.csc()
        assert indptr[-1] == g.num_edges
        # Rebuilding (dst, src) pairs from CSC matches the edge set.
        dst = np.repeat(np.arange(n), np.diff(indptr))
        got = {(int(s), int(d)) for s, d in zip(indices, dst)}
        want = {tuple(e) for e in g.edge_array().tolist()}
        assert got == want

    @given(edge_lists(), st.integers(min_value=1, max_value=6))
    @settings(max_examples=40, deadline=None)
    def test_induced_subgraph_edge_subset(self, ne, take):
        n, edges = ne
        g = from_edge_list(n, edges)
        verts = list(range(min(take, n)))
        sub = g.induced_subgraph(verts)
        assert sub.num_edges <= g.num_edges
        assert sub.num_vertices == len(verts)


class TestTilingProperties:
    @given(edge_lists(max_n=60, max_m=200), st.integers(min_value=200, max_value=5000))
    @settings(max_examples=40, deadline=None)
    def test_tiles_partition_vertices_and_edges(self, ne, capacity):
        n, edges = ne
        g = from_edge_list(n, edges, num_features=4)
        plan = tile_graph(g, capacity)
        covered = np.concatenate([t.vertices for t in plan])
        assert np.array_equal(covered, np.arange(n))
        internal = sum(t.num_edges for t in plan)
        assert internal + plan.total_boundary_edges == g.num_edges


class TestGiniProperties:
    @given(st.lists(st.floats(min_value=0, max_value=1e6), min_size=1, max_size=60))
    @settings(max_examples=80, deadline=None)
    def test_bounds(self, values):
        gini = gini_coefficient(np.array(values))
        assert -1e-9 <= gini <= 1.0

    @given(
        st.lists(st.floats(min_value=0.01, max_value=1e4), min_size=2, max_size=40),
        st.floats(min_value=0.1, max_value=100),
    )
    @settings(max_examples=60, deadline=None)
    def test_scale_invariance(self, values, scale):
        v = np.array(values)
        assert gini_coefficient(v) == pytest.approx(
            gini_coefficient(scale * v), abs=1e-9
        )


class TestRoutingProperties:
    @given(
        st.integers(min_value=2, max_value=12),
        st.integers(min_value=0, max_value=143),
        st.integers(min_value=0, max_value=143),
    )
    @settings(max_examples=100, deadline=None)
    def test_xy_route_valid(self, k, src, dst):
        src %= k * k
        dst %= k * k
        topo = FlexibleMeshTopology(k)
        route = xy_route(topo, src, dst)
        assert route[0] == src and route[-1] == dst
        assert len(route) - 1 == topo.manhattan(src, dst)
        for a, b in zip(route, route[1:]):
            assert b in topo.mesh_neighbors(a)

    @given(
        st.integers(min_value=2, max_value=10),
        st.integers(min_value=0, max_value=99),
        st.integers(min_value=0, max_value=99),
    )
    @settings(max_examples=60, deadline=None)
    def test_compute_route_never_longer_than_xy(self, k, src, dst):
        src %= k * k
        dst %= k * k
        topo = FlexibleMeshTopology(k)
        from repro.arch.noc import BypassSegment

        topo.add_bypass_segment(BypassSegment("row", 0, 0, k - 1))
        route = compute_route(topo, src, dst)
        assert len(route) - 1 <= topo.manhattan(src, dst)


class TestNQueenProperties:
    @given(st.integers(min_value=1, max_value=64))
    @settings(max_examples=40, deadline=None)
    def test_fixed_pattern_is_permutation(self, k):
        positions = fixed_pattern(k)
        rows = [r for r, _ in positions]
        cols = [c for _, c in positions]
        assert sorted(rows) == list(range(k))
        assert sorted(cols) == list(range(k))


class TestMappingProperties:
    @given(edge_lists(max_n=50, max_m=150), st.integers(min_value=2, max_value=4))
    @settings(max_examples=30, deadline=None)
    def test_degree_aware_total_function(self, ne, rows):
        n, edges = ne
        g = from_edge_list(n, edges)
        region = PERegion(0, 0, 8, rows, 8)
        cap = max(1, -(-n // region.num_pes))
        m = degree_aware_map(g, region, pe_vertex_capacity=cap)
        assert m.vertex_to_pe.size == n
        assert m.pe_loads().sum() == n
        assert m.pe_loads().max() <= cap

    @given(edge_lists(max_n=50, max_m=150))
    @settings(max_examples=30, deadline=None)
    def test_hashing_covers_region(self, ne):
        n, edges = ne
        g = from_edge_list(n, edges)
        region = PERegion(0, 0, 8, 4, 8)
        m = hashing_map(g, region)
        nodes = set(region.node_ids().tolist())
        if n:
            assert set(np.unique(m.vertex_to_pe).tolist()) <= nodes


class TestWorkloadProperties:
    @given(
        edge_lists(max_n=30, max_m=80),
        st.sampled_from(list_models()),
        st.integers(min_value=1, max_value=64),
        st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=60, deadline=None)
    def test_counts_non_negative_and_scale(self, ne, model_name, f_in, f_out):
        n, edges = ne
        g = from_edge_list(n, edges, num_features=f_in)
        wl = extract_workload(get_model(model_name), g, LayerDims(f_in, f_out))
        assert wl.O_ue >= 0 and wl.O_a >= 0 and wl.O_uv >= 0
        assert wl.total_ops >= wl.total_mac_ops

    @given(edge_lists(max_n=30, max_m=80), st.integers(min_value=1, max_value=32))
    @settings(max_examples=30, deadline=None)
    def test_more_edges_more_aggregation(self, ne, f):
        n, edges = ne
        g = from_edge_list(n, edges, num_features=f)
        doubled = from_edge_list(
            n, list(edges) + [((a + 1) % n, (b + 1) % n) for a, b in edges],
            num_features=f,
        )
        wl1 = extract_workload(get_model("gin"), g, LayerDims(f, f))
        wl2 = extract_workload(get_model("gin"), doubled, LayerDims(f, f))
        assert wl2.O_a >= wl1.O_a


class TestPartitionProperties:
    @given(
        edge_lists(max_n=40, max_m=120),
        st.sampled_from(["gcn", "gin", "ggcn", "agnn"]),
        st.integers(min_value=4, max_value=256),
    )
    @settings(max_examples=40, deadline=None)
    def test_partition_covers_all_pes(self, ne, model_name, num_pes):
        n, edges = ne
        g = from_edge_list(n, edges, num_features=8)
        wl = extract_workload(get_model(model_name), g, LayerDims(8, 4))
        s = partition(wl, num_pes, 1e9)
        assert s.a + s.b == num_pes
        assert s.a >= 0 and s.b >= 0
        assert s.pipeline_interval >= 0
