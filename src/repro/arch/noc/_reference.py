"""Reference (pre-event-engine) cycle-tier simulators.

These are the original per-cycle object-graph implementations of
:class:`NoCSimulator` and :class:`VCNetworkSimulator`, kept verbatim as
the behavioural spec for the event-driven engines in
:mod:`repro.arch.noc.network` and the fast-forwarding run loop in
:mod:`repro.arch.noc.vc_router`.  ``tests/test_noc_equivalence.py``
property-tests the production engines against these across random
topologies, bypass configurations and traffic patterns — the same
pinning strategy ``tests/test_mapping_equivalence.py`` uses for the
mapping hot path.

Do not optimise this module: its value is being the slow, obviously
faithful implementation.
"""

from __future__ import annotations

from collections import deque

from ...config import NoCConfig
from .packet import Flit, Packet
from .router import INJECT_PORT, Router
from .routing import compute_route
from .stats import NoCStats
from .topology import FlexibleMeshTopology

__all__ = ["ReferenceNoCSimulator", "ReferenceVCNetworkSimulator"]


class ReferenceNoCSimulator:
    """Flit-level network simulator over a flexible mesh (original form).

    Walks every router every cycle, keeps per-flit Python objects, and
    rescans the tails dict to answer :meth:`all_delivered` — exactly the
    costs the event engine removes, preserved here as ground truth.
    """

    def __init__(
        self,
        topology: FlexibleMeshTopology,
        config: NoCConfig | None = None,
    ) -> None:
        self.topology = topology
        self.config = config or NoCConfig()
        self.routers = [
            Router(n, self.config) for n in range(topology.num_nodes)
        ]
        self.cycle = 0
        self.stats = NoCStats()
        self._pending: list[Packet] = []  # injected, not fully delivered
        self._next_pid = 0
        self._tails_remaining: dict[int, int] = {}  # pid -> flits not ejected
        self._bypass_pairs = self._collect_bypass_pairs()

    # ------------------------------------------------------------------
    def _collect_bypass_pairs(self) -> set[frozenset[int]]:
        pairs = set()
        for seg in self.topology.bypass_segments:
            a, b = self.topology.segment_endpoints(seg)
            pairs.add(frozenset((a, b)))
        return pairs

    def refresh_configuration(self) -> None:
        """Re-read the topology's bypass segments (after reconfiguration)."""
        self._bypass_pairs = self._collect_bypass_pairs()

    def _is_bypass_hop(self, a: int, b: int) -> bool:
        return frozenset((a, b)) in self._bypass_pairs

    # ------------------------------------------------------------------
    def inject(
        self,
        src: int,
        dst: int,
        size_bytes: int,
        *,
        cycle: int | None = None,
        allow_bypass: bool = True,
    ) -> Packet:
        """Inject one packet at ``src`` destined for ``dst``."""
        when = self.cycle if cycle is None else cycle
        if when < self.cycle:
            raise ValueError("cannot inject in the past")
        route = compute_route(self.topology, src, dst, allow_bypass=allow_bypass)
        packet = Packet(
            pid=self._next_pid,
            src=src,
            dst=dst,
            size_bytes=size_bytes,
            inject_cycle=when,
            route=route,
        )
        self._next_pid += 1
        packet.num_flits = max(1, -(-size_bytes // self.config.flit_bytes))
        self._tails_remaining[packet.pid] = packet.num_flits
        router = self.routers[src]
        for i in range(packet.num_flits):
            flit = Flit(packet=packet, index=i, hop=0, ready_cycle=when)
            router.input_port(INJECT_PORT).queue.append(flit)
        self._pending.append(packet)
        return packet

    # ------------------------------------------------------------------
    def step(self) -> None:
        """Advance the network by one cycle."""
        now = self.cycle
        # Collect all desired moves first so a flit moved this cycle is not
        # moved twice, then apply them. Moves are (router, upstream, flit).
        moves: list[tuple[Router, int, Flit, int]] = []
        ejections: list[tuple[Router, int]] = []
        for router in self.routers:
            wants = router.heads_by_output(now)
            for output, contenders in wants.items():
                upstream = router.arbitrate(output, contenders)
                if output == router.node_id:
                    ejections.append((router, upstream))
                else:
                    moves.append((router, upstream, router.inputs[upstream].queue[0], output))

        # Apply ejections (unbounded ejection ports: the PE's reuse FIFO
        # absorbs one flit per cycle, matching the single local port).
        for router, upstream in ejections:
            flit = router.pop_head(upstream)
            router.flits_ejected += 1
            self.stats.flits_delivered += 1
            pid = flit.packet.pid
            self._tails_remaining[pid] -= 1
            if self._tails_remaining[pid] == 0:
                flit.packet.done_cycle = now + 1
                latency = flit.packet.done_cycle - flit.packet.inject_cycle
                self.stats.packets_delivered += 1
                self.stats.total_packet_latency += latency
                self.stats.max_packet_latency = max(
                    self.stats.max_packet_latency, latency
                )

        # Apply forwards with backpressure.
        for router, upstream, flit, output in moves:
            target = self.routers[output]
            port = target.input_port(router.node_id)
            if not port.has_space:
                router.stall_cycles += 1
                self.stats.stall_events += 1
                continue
            router.pop_head(upstream)
            is_bypass = self._is_bypass_hop(router.node_id, output)
            hop_latency = (
                self.config.bypass_segment_latency
                if is_bypass
                else self.config.link_latency
            )
            flit.hop += 1
            flit.ready_cycle = now + self.config.router_pipeline_stages + hop_latency
            port.queue.append(flit)
            router.flits_forwarded += 1
            if is_bypass:
                self.stats.bypass_flit_hops += 1
            else:
                self.stats.mesh_flit_hops += 1

        self.cycle += 1
        self.stats.cycles = self.cycle

        # Drop finished packets from the pending list lazily.
        if len(self._pending) > 256:
            self._pending = [p for p in self._pending if p.done_cycle is None]

    def run(self, *, max_cycles: int = 1_000_000) -> NoCStats:
        """Run until every injected packet is delivered (or the limit)."""
        while not self.all_delivered():
            if self.cycle >= max_cycles:
                raise RuntimeError(
                    f"NoC did not drain within {max_cycles} cycles "
                    f"({self.undelivered()} packets outstanding)"
                )
            self.step()
        return self.stats

    # ------------------------------------------------------------------
    def all_delivered(self) -> bool:
        return all(v == 0 for v in self._tails_remaining.values())

    def undelivered(self) -> int:
        return sum(1 for v in self._tails_remaining.values() if v > 0)


class ReferenceVCNetworkSimulator:
    """Mesh of :class:`VCRouter` nodes with full pipeline semantics
    (original run loop: spins :meth:`step` over every idle cycle)."""

    def __init__(
        self, topology: FlexibleMeshTopology, config: NoCConfig | None = None
    ) -> None:
        from .vc_router import VCRouter

        self.topology = topology
        self.config = config or NoCConfig()
        self.routers = [
            VCRouter(n, self.config) for n in range(topology.num_nodes)
        ]
        self.cycle = 0
        self._next_pid = 0
        self._pending_tails: dict[int, int] = {}
        self.delivered: list[Packet] = []
        self._in_flight: list[tuple] = []
        # (arrival_cycle, router, port, vc, flit)
        self._inject_queues: dict[int, deque] = {}
        self._credit_returns: list[tuple] = []

    # ------------------------------------------------------------------
    def _direction(self, here: int, there: int):
        from .vc_router import PortDir

        hx, hy = self.topology.coords(here)
        tx, ty = self.topology.coords(there)
        if ty == hy:
            if tx == hx + 1:
                return PortDir.EAST
            if tx == hx - 1:
                return PortDir.WEST
        if tx == hx:
            if ty == hy + 1:
                return PortDir.SOUTH
            if ty == hy - 1:
                return PortDir.NORTH
        return PortDir.BYPASS  # non-adjacent: a configured express segment

    def _next_hop(self, node: int, flit: Flit):
        from .vc_router import PortDir

        if flit.at_destination:
            return PortDir.LOCAL
        nxt = flit.packet.route[flit.hop + 1]
        return self._direction(node, nxt)

    # ------------------------------------------------------------------
    def inject(self, src: int, dst: int, size_bytes: int) -> Packet:
        route = compute_route(self.topology, src, dst)
        packet = Packet(
            pid=self._next_pid,
            src=src,
            dst=dst,
            size_bytes=size_bytes,
            inject_cycle=self.cycle,
            route=route,
        )
        self._next_pid += 1
        packet.num_flits = max(1, -(-size_bytes // self.config.flit_bytes))
        self._pending_tails[packet.pid] = packet.num_flits
        queue = self._inject_queues.setdefault(src, deque())
        for i in range(packet.num_flits):
            queue.append(Flit(packet=packet, index=i, hop=0, ready_cycle=self.cycle))
        return packet

    # ------------------------------------------------------------------
    def step(self) -> None:
        from .vc_router import PortDir

        now = self.cycle

        # Deliver in-flight flits whose link latency elapsed.
        still: list = []
        for arrival, node, port, vc_index, flit in self._in_flight:
            if arrival > now:
                still.append((arrival, node, port, vc_index, flit))
                continue
            if not self.routers[node].accept_flit(port, vc_index, flit):
                # Should not happen under credits; retry next cycle.
                still.append((arrival + 1, node, port, vc_index, flit))
        self._in_flight = still

        # Source injection: move flits into LOCAL input VCs.
        for node, queue in self._inject_queues.items():
            router = self.routers[node]
            while queue:
                flit = queue[0]
                if flit.is_head:
                    vc_index = router.free_input_vc(PortDir.LOCAL)
                    if vc_index is None:
                        break
                    queue.popleft()
                    router.accept_flit(PortDir.LOCAL, vc_index, flit)
                    flit.packet.notes_vc = vc_index
                else:
                    vc_index = getattr(flit.packet, "notes_vc", None)
                    if vc_index is None:
                        break
                    vc = router.vcs[PortDir.LOCAL][vc_index]
                    if not vc.has_space:
                        break
                    queue.popleft()
                    router.accept_flit(PortDir.LOCAL, vc_index, flit)
                    continue  # body flits stream at one per cycle... per VC
                break  # at most one new head per cycle per source

        # Router pipelines.
        for router in self.routers:
            router.stage_rc(lambda node, f: self._next_hop(node, f))
            router.stage_va()
            winners = router.stage_sa()
            for port, vc_index in winners:
                flit, out_port, out_vc, turn_lat = router.pop_winner(port, vc_index)
                if out_port is PortDir.LOCAL:
                    self._eject(flit, now)
                    router.return_credit(out_port, out_vc)
                    continue
                nxt = flit.packet.route[flit.hop + 1]
                flit.hop += 1
                link_lat = (
                    self.config.bypass_segment_latency
                    if out_port is PortDir.BYPASS
                    else self.config.link_latency
                )
                in_port = self._reverse_port(out_port, router.node_id, nxt)
                self._in_flight.append(
                    (now + 1 + link_lat + turn_lat, nxt, in_port, out_vc, flit)
                )
                # Credit returns when the downstream VC drains; simplified:
                # return after the flit is delivered plus one cycle.
                self._credit_returns.append(
                    (now + 2 + link_lat + turn_lat, router.node_id, out_port, out_vc)
                )

        # Credit return processing.
        remaining = []
        for when, node, port, vc_index in self._credit_returns:
            if when <= now:
                self.routers[node].return_credit(port, vc_index)
            else:
                remaining.append((when, node, port, vc_index))
        self._credit_returns = remaining

        self.cycle += 1

    def _reverse_port(self, out_port, here: int, there: int):
        """Input port on the downstream router fed by ``out_port``."""
        from .vc_router import PortDir

        opposite = {
            PortDir.EAST: PortDir.WEST,
            PortDir.WEST: PortDir.EAST,
            PortDir.NORTH: PortDir.SOUTH,
            PortDir.SOUTH: PortDir.NORTH,
            PortDir.BYPASS: PortDir.BYPASS,
        }
        return opposite.get(out_port, PortDir.LOCAL)

    def _eject(self, flit: Flit, now: int) -> None:
        pid = flit.packet.pid
        self._pending_tails[pid] -= 1
        if self._pending_tails[pid] == 0:
            flit.packet.done_cycle = now + 1
            self.delivered.append(flit.packet)

    # ------------------------------------------------------------------
    def all_delivered(self) -> bool:
        return all(v == 0 for v in self._pending_tails.values())

    def run(self, *, max_cycles: int = 500_000) -> int:
        """Run to drain; returns the cycle count."""
        while not self.all_delivered():
            if self.cycle >= max_cycles:
                raise RuntimeError(
                    f"VC network did not drain within {max_cycles} cycles"
                )
            self.step()
        return self.cycle

    # ------------------------------------------------------------------
    @property
    def total_va_stalls(self) -> int:
        return sum(r.va_stalls for r in self.routers)

    @property
    def total_sa_conflicts(self) -> int:
        return sum(r.sa_conflicts for r in self.routers)

    @property
    def avg_latency(self) -> float:
        if not self.delivered:
            return 0.0
        return sum(p.latency for p in self.delivered) / len(self.delivered)
