"""Graph tiling into on-chip-sized subgraphs.

"Typically, real-world graphs are large, exceeding the on-chip memory
capacity.  We tile the large graph into several subgraphs based on on-chip
memory size." (paper §IV).  The mapping and partition algorithms then run
once per subgraph, overlapped with the previous subgraph's computation.

A tile is bounded by its on-chip footprint: vertex features + edge
structure (+ optional edge embeddings) must fit in the aggregate
distributed-buffer capacity of the PE array.  Tiles are contiguous vertex
ranges (the CSR layout order a streaming DRAM load produces), which keeps
the extraction fully vectorised: each tile touches only its own CSR edge
slice.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from ..perf import PERF
from .csr import CSRGraph

__all__ = [
    "Tile",
    "TilingPlan",
    "tile_graph",
    "tile_footprint_bytes",
    "clear_tiling_cache",
]

#: Content-keyed plan memo bound.  A multi-layer simulation tiles the
#: same graph once per layer with identical parameters, and a serving
#: process re-tiles the same snapshot on every request; both hit here.
#: Entries keep the tiled graph alongside the plan so a graph derived by
#: an edge delta can patch its parent's plan instead of re-extracting
#: every tile (see :func:`_incremental_plan`).
TILING_CACHE_MAX = 16

_PLANS: "OrderedDict[tuple, tuple[CSRGraph, TilingPlan]]" = OrderedDict()


def clear_tiling_cache() -> None:
    """Drop the process-local tiling-plan memo (tests, cold benches)."""
    _PLANS.clear()


@dataclass(frozen=True)
class Tile:
    """One subgraph tile: original vertex ids + induced subgraph.

    ``boundary_edges`` counts edges leaving the tile (serviced by DRAM
    feature gathers); ``external_vertices`` counts the *distinct* remote
    endpoints of those edges — what a reuse-aware architecture actually
    has to fetch.
    """

    index: int
    vertices: np.ndarray  # original vertex ids, int64
    subgraph: CSRGraph
    boundary_edges: int
    external_vertices: int

    @property
    def num_vertices(self) -> int:
        return int(self.vertices.size)

    @property
    def num_edges(self) -> int:
        return self.subgraph.num_edges


@dataclass(frozen=True)
class TilingPlan:
    """Full tiling of a graph plus bookkeeping totals."""

    graph_name: str
    tiles: tuple[Tile, ...]
    capacity_bytes: int
    bytes_per_value: int

    @property
    def num_tiles(self) -> int:
        return len(self.tiles)

    @property
    def total_boundary_edges(self) -> int:
        return sum(t.boundary_edges for t in self.tiles)

    @property
    def total_external_vertices(self) -> int:
        return sum(t.external_vertices for t in self.tiles)

    def __iter__(self):
        return iter(self.tiles)


def tile_footprint_bytes(
    num_vertices: int,
    num_edges: int,
    num_features: int,
    *,
    edge_feature_dim: int = 0,
    bytes_per_value: int = 8,
    index_bytes: int = 8,
) -> int:
    """On-chip bytes needed to hold a tile.

    Vertex features dominate; CSR structure and (optionally) edge
    embeddings add the rest.  Double precision by default, matching the
    paper's uniform double-precision evaluation.
    """
    feat = num_vertices * num_features * bytes_per_value
    structure = (num_vertices + 1 + num_edges) * index_bytes
    edge_emb = num_edges * edge_feature_dim * bytes_per_value
    return feat + structure + edge_emb


def _range_subgraph(
    graph: CSRGraph, start: int, end: int
) -> tuple[CSRGraph, int, int]:
    """Induced subgraph on the contiguous range [start, end).

    Returns ``(subgraph, boundary_edges, external_vertices)``.  Touches
    only the range's own CSR slice, so tiling a graph is O(|E|) total.
    """
    lo = int(graph.indptr[start])
    hi = int(graph.indptr[end])
    cols = graph.indices[lo:hi]
    within = (cols >= start) & (cols < end)
    local_degrees = (graph.indptr[start + 1 : end + 1] - graph.indptr[start:end])
    row_of_edge = np.repeat(np.arange(end - start, dtype=np.int64), local_degrees)
    counts = np.bincount(row_of_edge[within], minlength=end - start)
    new_indptr = np.zeros(end - start + 1, dtype=np.int64)
    np.cumsum(counts, out=new_indptr[1:])
    new_indices = cols[within] - start
    sub = CSRGraph(
        new_indptr,
        np.ascontiguousarray(new_indices),
        num_features=graph.num_features,
        feature_density=graph.feature_density,
        edge_feature_dim=graph.edge_feature_dim,
        name=f"{graph.name}-tile[{start}:{end}]",
    )
    boundary = int((~within).sum())
    external = int(np.unique(cols[~within]).size)
    return sub, boundary, external


def tile_graph(
    graph: CSRGraph,
    capacity_bytes: int,
    *,
    bytes_per_value: int = 8,
    min_tile_vertices: int = 4,
) -> TilingPlan:
    """Partition ``graph`` into contiguous vertex-range tiles.

    Vertices are assigned in id order and a tile is closed as soon as
    adding the next vertex would overflow ``capacity_bytes``.  The split
    points are found with a vectorised prefix-sum search over the
    cumulative footprint, so planning is O(|V| log |V|).
    """
    if capacity_bytes <= 0:
        raise ValueError("capacity_bytes must be positive")
    # Name participates because tile subgraphs embed it in their own
    # names; content alone would alias plans across renamed snapshots.
    memo_key = (
        graph.content_key,
        graph.name,
        capacity_bytes,
        bytes_per_value,
        min_tile_vertices,
    )
    hit = _PLANS.get(memo_key)
    if hit is not None:
        _PLANS.move_to_end(memo_key)
        PERF.incr("tiling.plan_cache_hit")
        return hit[1]
    PERF.incr("tiling.plan_cache_miss")
    with PERF.timer("tiling"):
        plan = _incremental_plan(
            graph,
            capacity_bytes,
            bytes_per_value=bytes_per_value,
            min_tile_vertices=min_tile_vertices,
        )
        if plan is None:
            plan = _tile_graph(
                graph,
                capacity_bytes,
                bytes_per_value=bytes_per_value,
                min_tile_vertices=min_tile_vertices,
            )
    _PLANS[memo_key] = (graph, plan)
    while len(_PLANS) > TILING_CACHE_MAX:
        _PLANS.popitem(last=False)
    return plan


def _incremental_plan(
    graph: CSRGraph,
    capacity_bytes: int,
    *,
    bytes_per_value: int,
    min_tile_vertices: int,
) -> TilingPlan | None:
    """Patch a cached parent plan for a delta-derived graph, or ``None``.

    A degree-preserving delta leaves the row pointers — and therefore
    the capacity-driven tile boundaries — unchanged, and a contiguous
    tile's subgraph depends only on its own rows.  So tiles whose rows
    have identical digests are reused from the parent plan (re-labelled
    under the mutated graph's name), and only tiles covering changed
    rows are re-extracted.  The result is exactly what a from-scratch
    tiling of the mutated graph produces.
    """
    if graph.derived_from is None:
        return None
    for key, (pgraph, pplan) in _PLANS.items():
        if (
            key[0] == graph.derived_from
            and key[2] == capacity_bytes
            and key[3] == bytes_per_value
            and key[4] == min_tile_vertices
        ):
            break
    else:
        return None
    if not np.array_equal(pgraph.indptr, graph.indptr):
        return None
    PERF.incr("tiling.plan_incremental")
    changed = np.nonzero(pgraph.row_digests != graph.row_digests)[0]
    tiles: list[Tile] = []
    for tile in pplan.tiles:
        s = int(tile.vertices[0])
        e = int(tile.vertices[-1]) + 1
        lo = int(np.searchsorted(changed, s))
        dirty = lo < changed.size and int(changed[lo]) < e
        if dirty:
            sub, boundary, external = _range_subgraph(graph, s, e)
            tiles.append(
                Tile(
                    index=tile.index,
                    vertices=tile.vertices,
                    subgraph=sub,
                    boundary_edges=boundary,
                    external_vertices=external,
                )
            )
        else:
            sub = tile.subgraph.renamed(f"{graph.name}-tile[{s}:{e}]")
            tiles.append(
                Tile(
                    index=tile.index,
                    vertices=tile.vertices,
                    subgraph=sub,
                    boundary_edges=tile.boundary_edges,
                    external_vertices=tile.external_vertices,
                )
            )
    return TilingPlan(
        graph_name=graph.name,
        tiles=tuple(tiles),
        capacity_bytes=pplan.capacity_bytes,
        bytes_per_value=pplan.bytes_per_value,
    )


def _tile_graph(
    graph: CSRGraph,
    capacity_bytes: int,
    *,
    bytes_per_value: int,
    min_tile_vertices: int,
) -> TilingPlan:
    n = graph.num_vertices
    degrees = graph.degrees
    # Features are stored compressed on chip (sparse CSR of nonzeros with
    # ~50% index overhead); they are decompressed on read for compute and
    # communication.  A 16-byte floor covers per-vertex metadata.
    per_vertex_feat = max(
        16,
        int(graph.num_features * bytes_per_value * graph.feature_density * 1.5),
    )
    per_edge = 8 + graph.edge_feature_dim * bytes_per_value  # index + embedding

    # Cumulative footprint of vertices [0, i): features + indptr + edges.
    vertex_cost = per_vertex_feat + 8 + degrees * per_edge
    cum = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(vertex_cost, out=cum[1:])

    boundaries = [0]
    start = 0
    while start < n:
        budget = cum[start] + capacity_bytes - 8  # 8 for the indptr base
        end = int(np.searchsorted(cum, budget, side="right")) - 1
        end = max(end, start + 1)  # oversized vertex: take it anyway
        if end - start < min_tile_vertices:
            end = min(start + min_tile_vertices, n)
        end = min(end, n)
        boundaries.append(end)
        start = end

    tiles: list[Tile] = []
    for i in range(len(boundaries) - 1):
        s, e = boundaries[i], boundaries[i + 1]
        sub, boundary, external = _range_subgraph(graph, s, e)
        tiles.append(
            Tile(
                index=i,
                vertices=np.arange(s, e, dtype=np.int64),
                subgraph=sub,
                boundary_edges=boundary,
                external_vertices=external,
            )
        )
    return TilingPlan(
        graph_name=graph.name,
        tiles=tuple(tiles),
        capacity_bytes=capacity_bytes,
        bytes_per_value=bytes_per_value,
    )
