"""PR-2 perf layer: PERF registry, memo caches, ceil-flit audit, bench.

Covers the perf-instrumentation API (:mod:`repro.perf`), the shared
tile-mapping LRU (:func:`repro.mapping.memo.map_tile`), the byte→flit
ceiling-division audit (:func:`repro.arch.noc.analytical.ceil_flits` and
the ejection/injection path), and the ``repro bench`` snapshot format.
"""

import json

import numpy as np
import pytest

from repro.arch.noc.analytical import TrafficMatrix, ceil_flits
from repro.graphs.generators import power_law_graph, uniform_random_graph
from repro.mapping.base import PERegion
from repro.mapping.degree_aware import degree_aware_map
from repro.mapping.memo import MAPPING_CACHE_MAX, clear_mapping_cache, map_tile
from repro.perf import PERF, PerfRegistry


# ---------------------------------------------------------------------------
# PerfRegistry API
# ---------------------------------------------------------------------------


class TestPerfRegistry:
    def test_timer_accumulates(self):
        reg = PerfRegistry()
        with reg.timer("stage"):
            pass
        with reg.timer("stage"):
            pass
        assert reg.stages["stage"].calls == 2
        assert reg.stages["stage"].seconds >= 0.0

    def test_timer_records_on_exception(self):
        reg = PerfRegistry()
        with pytest.raises(RuntimeError):
            with reg.timer("boom"):
                raise RuntimeError("x")
        assert reg.stages["boom"].calls == 1

    def test_counters_and_reset(self):
        reg = PerfRegistry()
        reg.incr("hits")
        reg.incr("hits", 4)
        assert reg.counters["hits"] == 5
        reg.reset()
        assert reg.counters == {} and reg.stages == {}

    def test_disabled_registry_is_inert(self):
        reg = PerfRegistry(enabled=False)
        with reg.timer("stage"):
            pass
        reg.incr("hits")
        assert reg.stages == {} and reg.counters == {}

    def test_snapshot_is_json_serialisable(self):
        reg = PerfRegistry()
        with reg.timer("a"):
            pass
        reg.incr("b", 2)
        snap = reg.snapshot()
        parsed = json.loads(json.dumps(snap))
        assert parsed["stages"]["a"]["calls"] == 1
        assert parsed["counters"]["b"] == 2


# ---------------------------------------------------------------------------
# Shared tile-mapping memo
# ---------------------------------------------------------------------------


class TestMapTileMemo:
    def setup_method(self):
        clear_mapping_cache()

    def test_repeated_tile_hits_cache(self):
        graph = power_law_graph(80, 600, seed=5)
        region = PERegion(0, 0, 8, 4, 8)
        PERF.reset()
        first = map_tile(graph, region, "degree-aware")
        assert PERF.counters.get("mapping.tile_cache_miss") == 1
        second = map_tile(graph, region, "degree-aware")
        assert PERF.counters.get("mapping.tile_cache_hit") == 1
        assert second is first  # shared immutable MappingResult

    def test_identical_content_different_name_hits(self):
        """Cache keys on content, not the tile's debug name."""
        g1 = uniform_random_graph(50, 300, seed=3)
        g2 = g1.renamed("other") if hasattr(g1, "renamed") else None
        if g2 is None:
            from repro.graphs.csr import CSRGraph

            g2 = CSRGraph(
                g1.indptr.copy(),
                g1.indices.copy(),
                num_features=g1.num_features,
                feature_density=g1.feature_density,
                edge_feature_dim=g1.edge_feature_dim,
                name="other",
            )
        region = PERegion(0, 0, 8, 8, 8)
        PERF.reset()
        a = map_tile(g1, region, "hashing")
        b = map_tile(g2, region, "hashing")
        assert PERF.counters.get("mapping.tile_cache_hit") == 1
        np.testing.assert_array_equal(a.vertex_to_pe, b.vertex_to_pe)

    def test_policy_and_region_distinguish_entries(self):
        graph = uniform_random_graph(40, 200, seed=4)
        r1 = PERegion(0, 0, 8, 4, 8)
        r2 = PERegion(0, 4, 8, 8, 8)
        PERF.reset()
        map_tile(graph, r1, "degree-aware")
        map_tile(graph, r2, "degree-aware")
        map_tile(graph, r1, "hashing")
        assert PERF.counters.get("mapping.tile_cache_miss") == 3
        assert PERF.counters.get("mapping.tile_cache_hit") is None

    def test_memo_result_matches_direct_call(self):
        graph = power_law_graph(64, 500, seed=6)
        region = PERegion(0, 0, 8, 4, 8)
        cap = max(1, -(-graph.num_vertices // region.num_pes))
        direct = degree_aware_map(graph, region, pe_vertex_capacity=cap)
        memod = map_tile(graph, region, "degree-aware")
        np.testing.assert_array_equal(memod.vertex_to_pe, direct.vertex_to_pe)
        assert memod.bypass_segments == direct.bypass_segments

    def test_cache_is_bounded(self):
        region = PERegion(0, 0, 8, 8, 8)
        from repro.mapping import memo

        for seed in range(MAPPING_CACHE_MAX + 10):
            map_tile(uniform_random_graph(10, 20, seed=seed), region, "hashing")
        assert len(memo._CACHE) <= MAPPING_CACHE_MAX

    def test_simulator_and_cycle_engine_share_cache(self):
        """The cycle tier replays analytical-tier tiles out of one memo."""
        from repro import AuroraSimulator, LayerDims, get_model
        from repro.config import default_config
        from repro.core.cycle_engine import CycleTileEngine

        graph = power_law_graph(60, 400, seed=8)
        model = get_model("gcn")
        dims = LayerDims(graph.num_features, 16)
        sim = AuroraSimulator()
        sim.simulate_layer(model, graph, dims)

        cfg = default_config().scaled(array_k=8)
        engine = CycleTileEngine(cfg)
        k = cfg.array_k
        region_a = PERegion(0, 0, k, k // 2, k)
        clear_mapping_cache()
        PERF.reset()
        first = engine._map(graph, region_a)
        second = engine._map(graph, region_a)
        assert second is first
        assert PERF.counters.get("mapping.tile_cache_hit") == 1


# ---------------------------------------------------------------------------
# Byte → flit ceiling audit
# ---------------------------------------------------------------------------


class TestCeilFlits:
    def test_partial_flit_rounds_up(self):
        assert int(ceil_flits(1, 16)) == 1
        assert int(ceil_flits(16, 16)) == 1
        assert int(ceil_flits(17, 16)) == 2
        assert int(ceil_flits(0, 16)) == 0

    def test_vectorised(self):
        got = ceil_flits(np.array([0, 15, 16, 31, 32, 33]), 16)
        np.testing.assert_array_equal(got, [0, 1, 1, 2, 2, 3])

    def test_rejects_bad_flit_width(self):
        with pytest.raises(ValueError):
            ceil_flits(10, 0)

    def test_from_flows_rounds_partial_flits_up(self):
        """A 17-byte payload on a 16-byte flit occupies two slots."""
        flows = np.array([[0, 1, 17]], dtype=np.int64)
        tm = TrafficMatrix.from_flows(flows, flit_bytes=16, k=4)
        assert tm.total_flits == 2

    def test_eject_path_uses_ceiling(self):
        """The simulate_layer ejection/injection path must not floor away
        partial flits: with a single hot ejection port, one extra flit is
        one extra drain cycle."""
        from repro.arch.noc.analytical import AnalyticalNoCModel
        from repro.arch.noc.topology import FlexibleMeshTopology
        from repro.config import NoCConfig

        cfg = NoCConfig()
        topo = FlexibleMeshTopology(4)
        model = AnalyticalNoCModel(topo, cfg)
        flows = np.array([[0, 5, 170]], dtype=np.int64)
        tm = TrafficMatrix.from_flows(flows, cfg.flit_bytes, 4)
        eject = np.zeros(16, dtype=np.int64)
        eject[5] = 170  # bytes arriving at node 5
        floor_res = model.evaluate(tm, eject_flits=eject // cfg.flit_bytes)
        ceil_res = model.evaluate(tm, eject_flits=ceil_flits(eject, cfg.flit_bytes))
        assert int(ceil_flits(np.int64(170), cfg.flit_bytes)) == (
            170 // cfg.flit_bytes + (1 if 170 % cfg.flit_bytes else 0)
        )
        assert ceil_res.max_ejection_load >= floor_res.max_ejection_load


# ---------------------------------------------------------------------------
# Bench snapshot
# ---------------------------------------------------------------------------


class TestBenchSnapshot:
    def test_run_benches_schema(self, tmp_path):
        from repro.perf.bench import BenchCase, write_bench_json

        out = tmp_path / "BENCH_t.json"
        cases = (BenchCase("cora", "cora", 0.5),)
        snap = write_bench_json(out, cases, repeat=1)
        on_disk = json.loads(out.read_text())
        assert on_disk["schema_version"] == snap["schema_version"]
        bench = on_disk["benches"]["cora"]
        assert bench["cold_seconds"] > 0
        assert len(bench["warm_seconds"]) == 1
        assert bench["warm_mean_seconds"] > 0
        # Per-stage timings for the hot-path stages the issue names.
        for stage in ("mapping", "traffic", "noc", "compute_count"):
            assert on_disk["stages"][stage]["calls"] >= 1
            assert on_disk["stages"][stage]["seconds"] >= 0
        # Cache-hit counters present (warm repeat guarantees hits).
        assert on_disk["counters"]["mapping.tile_cache_hit"] >= 1
        assert on_disk["counters"]["noc.model_cache_hit"] >= 1
        assert on_disk["counters"]["config.plan_cache_hit"] >= 1

    def test_cli_bench_subcommand(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "BENCH_cli.json"
        assert main(["bench", "--repeat", "1", "--output", str(out)]) == 0
        data = json.loads(out.read_text())
        assert set(data["benches"]) == {"cora", "citeseer", "pubmed"}
        text = capsys.readouterr().out
        assert "cache hits" in text

    def test_warm_runs_hit_all_memo_layers(self):
        """Second identical simulate_layer call misses no memo layer."""
        from repro import AuroraSimulator, LayerDims, get_model, load_dataset
        from repro.perf.bench import clear_hot_path_caches

        graph = load_dataset("cora", scale=0.5)
        model = get_model("gcn")
        dims = LayerDims(graph.num_features, 32)
        clear_hot_path_caches()
        sim = AuroraSimulator()
        sim.simulate_layer(model, graph, dims)
        PERF.reset()
        sim.simulate_layer(model, graph, dims)
        counters = PERF.counters
        assert counters.get("mapping.tile_cache_miss") is None
        assert counters.get("noc.model_cache_miss") is None
        assert counters.get("config.plan_cache_miss") is None
        assert counters.get("mapping.tile_cache_hit", 0) >= 1

    def test_dse_tier_schema(self, tmp_path):
        """The DSE tier through write_bench_json: schema + the
        cache-amplification invariants BENCH_9 reports."""
        from repro.perf.bench import write_bench_json

        out = tmp_path / "BENCH_d.json"
        snap = write_bench_json(out, repeat=1, tier="dse")
        on_disk = json.loads(out.read_text())
        assert on_disk["tier"] == "dse"
        assert set(on_disk["benches"]) == {"random", "sha"}
        random_bench = on_disk["benches"]["random"]
        assert random_bench["evaluations"] == 200
        assert random_bench["evaluations_per_second"] > 0
        # With-replacement sampling on the 24-point mini space: most
        # evaluations must be cache- or dedup-served.
        assert random_bench["cold_served_fraction"] >= 0.3
        # A warm repeat of the same seeded search simulates nothing.
        assert random_bench["warm_executed"] == 0
        assert random_bench["warm_served_fraction"] == 1.0
        assert snap["benches"]["sha"]["stopped"] == "exhausted"

    def test_fanout_tier_schema(self, tmp_path):
        """A tiny fan-out case through write_bench_json: schema + the
        identity checks wired into _run_fanout_case."""
        from repro.perf.bench import FanoutBenchCase, write_bench_json

        out = tmp_path / "BENCH_f.json"
        cases = (
            FanoutBenchCase(
                "cora-job", "cora", 0.3, array_k=8,
                tile_capacity_bytes=48 * 1024, tile_workers=2,
            ),
        )
        snap = write_bench_json(out, cases, repeat=1, tier="fanout")
        on_disk = json.loads(out.read_text())
        assert on_disk["tier"] == "fanout"
        bench = on_disk["benches"]["cora-job"]
        assert bench["num_tiles"] >= 2
        assert bench["reference_seconds"] > 0
        assert bench["speedup_vs_reference"] > 0
        assert bench["cold_seconds"] > 0
        assert snap["benches"]["cora-job"]["shards"] >= 1
