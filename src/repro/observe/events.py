"""The observe event model: typed events, sinks, and the process hub.

Everything the push channel carries is an :class:`Event` — a sequenced,
timestamped ``(type, data)`` record small enough to JSON-encode on the
hot path.  Producers (the serve lifecycle, the batcher, the tracer
hook) publish into the process-global :data:`HUB`; consumers implement
:class:`EventSink` (the WebSocket broadcaster, the JSONL session
recorder) and attach to it.

Design constraints mirror the tracer's:

* **negligible cost when off** — with no sinks attached,
  ``HUB.enabled`` is a plain attribute read and every emission site
  guards on it, so a server running without ``--observe`` pays one
  boolean check per request;
* **thread-safe ordering** — sequence numbers are assigned under one
  lock, so events emitted from the event loop, the batch worker
  thread, and executor merges interleave into a single total order;
* **schema-versioned** — :data:`SCHEMA_VERSION` stamps every session
  header and hello frame; :func:`validate_events` is the contract the
  tests and the CI smoke enforce.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field

__all__ = [
    "SCHEMA_VERSION",
    "EVENT_TYPES",
    "REQUEST_LIFECYCLE",
    "Event",
    "EventSink",
    "EventHub",
    "HUB",
    "install_tracer_hook",
    "noc_heat_enabled",
    "validate_event",
    "validate_events",
]

#: Version stamped into session headers and hello frames; bump on any
#: incompatible change to event shapes so replay tooling can refuse
#: rather than misread.
SCHEMA_VERSION = 1

#: Environment flag propagated to executor worker processes so the NoC
#: heat summary is attached to spans computed off-process too.
NOC_HEAT_ENV = "REPRO_OBSERVE_NOC"

#: Every event type the schema admits, mapped to the data keys a
#: well-formed instance must carry (a subset — producers may add more).
EVENT_TYPES: dict[str, tuple[str, ...]] = {
    "observe.hello": ("schema", "seq"),
    "session.meta": ("schema", "source"),
    "request.received": ("rid", "path"),
    "request.admitted": ("rid", "in_flight"),
    "request.shed": ("rid", "status"),
    "request.rejected": ("rid", "status"),
    "request.completed": ("rid", "status", "latency_seconds"),
    "request.timeout": ("rid", "timeout_seconds"),
    "request.error": ("rid", "error"),
    "batch.flush": ("jobs", "batches_run"),
    "span": ("name", "trace_id", "duration"),
    "noc.tile": ("k", "heat"),
    "stats.tick": (),
    "replica.up": ("replica",),
    "replica.down": ("replica",),
}

#: The happy-path order one /simulate request produces — the contract
#: the smoke script asserts over a live WebSocket.
REQUEST_LIFECYCLE = (
    "request.received",
    "request.admitted",
    "batch.flush",
    "request.completed",
)


def _jsonable(value):
    """Best-effort conversion of attribute values to JSON-safe types.

    Span attributes occasionally carry numpy scalars or arrays; the
    event channel must never raise on them mid-request.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    for attr in ("item", "tolist"):  # numpy scalar / ndarray
        method = getattr(value, attr, None)
        if callable(method):
            try:
                return _jsonable(method())
            except Exception:  # noqa: BLE001 — item() raises on
                continue  # multi-element arrays; tolist() still works
    return repr(value)


def _json_default(value):
    """``json.dumps`` fallback for non-JSON values (numpy, objects)."""
    for attr in ("item", "tolist"):  # numpy scalar / ndarray
        method = getattr(value, attr, None)
        if callable(method):
            try:
                return method()
            except Exception:  # noqa: BLE001 — item() raises on
                continue  # multi-element arrays; tolist() still works
    return repr(value)


@dataclass
class Event:
    """One record on the push channel."""

    seq: int
    ts: float
    type: str
    data: dict = field(default_factory=dict)
    #: Compact serialization, computed once and shared by every sink
    #: (the recorder line and each client's frame reuse it).
    _json: str | None = field(default=None, repr=False, compare=False)

    def to_dict(self) -> dict:
        return {"seq": self.seq, "ts": self.ts, "type": self.type, "data": self.data}

    def to_json(self) -> str:
        if self._json is None:
            self._json = json.dumps(
                self.to_dict(), separators=(",", ":"), default=_json_default
            )
        return self._json

    @staticmethod
    def from_dict(data: dict) -> "Event":
        return Event(
            seq=int(data["seq"]),
            ts=float(data["ts"]),
            type=str(data["type"]),
            data=dict(data.get("data") or {}),
        )


class EventSink:
    """Consumer interface: override :meth:`emit`; ``close`` is optional.

    ``emit`` may be called from any thread and must not block — the hub
    runs every attached sink inline under its lock.
    """

    def emit(self, event: Event) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:
        """Release resources; never raises from the hub's perspective."""


class EventHub:
    """Thread-safe fan-in point between producers and attached sinks."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._sinks: list[EventSink] = []
        self._seq = 0
        self.events_emitted = 0
        self.sink_errors = 0
        #: Cheap producer-side guard; kept in sync with the sink list so
        #: emission sites read one attribute instead of taking the lock.
        self.enabled = False

    def attach(self, sink: EventSink) -> EventSink:
        with self._lock:
            if sink not in self._sinks:
                self._sinks.append(sink)
            self.enabled = True
        return sink

    def detach(self, sink: EventSink) -> None:
        with self._lock:
            if sink in self._sinks:
                self._sinks.remove(sink)
            self.enabled = bool(self._sinks)

    def emit(self, type: str, data: dict | None = None, *, ts: float | None = None) -> Event | None:
        """Publish one event to every sink; ``None`` when nobody listens.

        ``ts`` lets relays (the cluster router re-emitting a replica's
        stream) preserve the original wall-clock time while still
        drawing a fresh fleet-order sequence number.
        """
        with self._lock:
            if not self._sinks:
                return None
            self._seq += 1
            event = Event(
                seq=self._seq,
                ts=time.time() if ts is None else ts,
                type=type,
                data=data or {},
            )
            self.events_emitted += 1
            # Delivery stays under the lock: the recorder relies on
            # arrival order matching seq order (its JSONL is read back
            # with strict monotonicity checks).  Sinks are built to be
            # cheap inline — the broadcaster only queues.
            for sink in self._sinks:
                try:
                    sink.emit(event)
                except Exception:  # noqa: BLE001 — a sink must never
                    # break the serving path it observes
                    self.sink_errors += 1
        return event

    def reset(self) -> None:
        """Detach everything (tests); closes no sinks."""
        with self._lock:
            self._sinks.clear()
            self._seq = 0
            self.events_emitted = 0
            self.sink_errors = 0
            self.enabled = False

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "enabled": self.enabled,
                "sinks": len(self._sinks),
                "events_emitted": self.events_emitted,
                "sink_errors": self.sink_errors,
            }


#: The process-global hub every instrumented module publishes into.
HUB = EventHub()


def noc_heat_enabled() -> bool:
    """Should the simulator attach per-tile NoC heat to its spans?

    True in the serving process when the hub has listeners, and in
    executor worker processes via the inherited environment flag (set
    by ``repro serve --observe`` so spans computed off-process carry
    the heatmap home through the span-merge path).
    """
    return HUB.enabled or os.environ.get(NOC_HEAT_ENV) == "1"


def span_event_data(span) -> dict:
    """Project a finished :class:`~repro.telemetry.trace.Span` onto the
    ``span`` event shape.

    Attributes pass through unsanitized — non-JSON values (numpy
    scalars from the simulator) are handled once, at serialization
    time, by :meth:`Event.to_json`'s fallback.
    """
    return {
        "name": span.name,
        "trace_id": span.trace_id,
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "start_time": span.start_time,
        "duration": span.duration,
        "status": span.status,
        "attributes": span.attributes,
    }


def install_tracer_hook(tracer=None, hub: EventHub | None = None):
    """Bridge span completions into the event channel.

    Sets ``tracer.on_span`` so every span landing in the buffer (local
    completion or cross-process merge) also yields a ``span`` event; a
    ``noc`` span carrying a ``noc_heat`` attribute additionally yields
    a ``noc.tile`` event for the dashboard heatmap.  Returns an
    uninstall callable.
    """
    if tracer is None:
        from ..telemetry import TRACER as tracer  # noqa: N811 — rebind
    target = hub or HUB

    def _on_span(span) -> None:
        if not target.enabled:
            return
        target.emit("span", span_event_data(span))
        heat = span.attributes.get("noc_heat")
        if span.name == "noc" and heat is not None:
            target.emit(
                "noc.tile",
                {
                    "k": int(span.attributes.get("k", 0)),
                    "heat": _jsonable(heat),
                    "trace_id": span.trace_id,
                },
            )

    tracer.on_span = _on_span

    def _uninstall() -> None:
        if tracer.on_span is _on_span:
            tracer.on_span = None

    return _uninstall


def validate_event(data: dict) -> list[str]:
    """Schema check for one serialized event; returns problem strings."""
    problems: list[str] = []
    for key in ("seq", "ts", "type"):
        if key not in data:
            problems.append(f"missing key {key!r}")
    if problems:
        return problems
    if not isinstance(data["seq"], int) or data["seq"] < 0:
        problems.append(f"seq must be a non-negative int, got {data['seq']!r}")
    if not isinstance(data["ts"], (int, float)):
        problems.append(f"ts must be a number, got {data['ts']!r}")
    etype = data["type"]
    if etype not in EVENT_TYPES:
        problems.append(f"unknown event type {etype!r}")
        return problems
    payload = data.get("data")
    if not isinstance(payload, dict):
        problems.append(f"{etype}: data must be an object")
        return problems
    for key in EVENT_TYPES[etype]:
        if key not in payload:
            problems.append(f"{etype}: missing data key {key!r}")
    return problems


def validate_events(events) -> list[str]:
    """Validate a sequence of event dicts, including seq monotonicity."""
    problems: list[str] = []
    last_seq = None
    for i, data in enumerate(events):
        if isinstance(data, Event):
            data = data.to_dict()
        for problem in validate_event(data):
            problems.append(f"event[{i}]: {problem}")
        seq = data.get("seq")
        if isinstance(seq, int):
            if last_seq is not None and seq <= last_seq:
                problems.append(
                    f"event[{i}]: seq {seq} not after previous {last_seq}"
                )
            last_seq = seq
    return problems
