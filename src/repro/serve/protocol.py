"""Wire protocol: request canonicalization and response encoding.

A simulation request is a flat JSON object whose fields mirror
:class:`repro.runtime.SimJob` (with the CLI aliases ``layers`` and
``device``, plus an optional ``tier`` selector).  Canonicalization is
delegated to :meth:`SimJob.from_request` so the service, the CLI, and
any other front end hash equivalent requests to the same content key —
which is what single-flight deduplication and the result cache key on.
"""

from __future__ import annotations

from ..runtime.jobs import SimJob
from ..runtime.runner import JobOutcome

__all__ = [
    "ProtocolError",
    "SUPPORTED_TIERS",
    "parse_simulation_request",
    "encode_outcome",
]

#: Simulation tiers the service can execute.  The flit-level cycle tier
#: is tile-scoped (no full-job entry point yet), so requests for it are
#: rejected with a clear message rather than silently downgraded.
SUPPORTED_TIERS = ("analytical",)


class ProtocolError(ValueError):
    """A request that fails canonicalization (maps to HTTP 400)."""


def parse_simulation_request(data: dict) -> SimJob:
    """Canonicalize one request body into a frozen :class:`SimJob`."""
    if not isinstance(data, dict):
        raise ProtocolError("request must be a JSON object")
    data = dict(data)
    tier = data.pop("tier", "analytical")
    if tier not in SUPPORTED_TIERS:
        raise ProtocolError(
            f"unsupported tier {tier!r} (supported: {', '.join(SUPPORTED_TIERS)})"
        )
    try:
        return SimJob.from_request(data)
    except (KeyError, TypeError, ValueError) as exc:
        # KeyError reprs its argument; strip the quotes for a clean message.
        message = exc.args[0] if exc.args else str(exc)
        raise ProtocolError(str(message)) from None


def encode_outcome(
    outcome: JobOutcome,
    *,
    joined: bool,
    latency_seconds: float,
    trace_id: str | None = None,
) -> dict:
    """The response payload for one completed simulation request."""
    payload = {
        "key": outcome.key,
        "cached": outcome.cached,
        "joined": joined,
        "seconds": outcome.seconds,
        "latency_seconds": latency_seconds,
        "result": outcome.result.to_dict() if outcome.result is not None else None,
    }
    if trace_id is not None:
        payload["trace_id"] = trace_id
    return payload
