"""CI smoke test for `repro cluster`.

Boots the real router as a subprocess (which spawns and supervises two
replica subprocesses of its own), then checks the cluster contract end
to end:

* **shard affinity** — the same job twice reaches the same replica, and
  the second answer is served warm (from a cache tier or the replica's
  own result cache);
* **placement spread** — a seed-varied workload reaches both replicas;
* **kill under load** — one replica is SIGKILLed mid-burst and every
  client request must still succeed (router failover + client retries);
* **self-healing** — the supervisor restarts the killed replica and the
  fleet reports two routable replicas again;
* **drain** — SIGTERM exits 0 after finishing in-flight work.

The final aggregate ``/stats`` snapshot is written to
CLUSTER_STATS.json and uploaded as a CI artifact.  Run from the repo
root:

    PYTHONPATH=src python scripts/cluster_smoke.py
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.serve.client import ServeClient, ServeError  # noqa: E402

SMALL = {"dataset": "cora", "scale": 0.2, "hidden": 16, "layers": 1}


def check(condition: bool, label: str) -> None:
    status = "ok" if condition else "FAIL"
    print(f"smoke: {label}: {status}", flush=True)
    if not condition:
        raise SystemExit(f"smoke check failed: {label}")


def boot(cache_dir: str) -> tuple[subprocess.Popen, int]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get(
        "PYTHONPATH", ""
    )
    env["REPRO_CACHE_DIR"] = cache_dir
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "cluster", "--port", "0",
         "--replicas", "2", "--lru-capacity", "0",
         "--probe-interval", "0.25", "--fail-threshold", "2"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )
    # The router announces itself only after both replicas are up; their
    # forwarded "listening on" lines come first, so match on the prefix.
    deadline = time.monotonic() + 180.0
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line and process.poll() is not None:
            raise SystemExit("smoke: cluster died during startup")
        print(f"smoke: boot: {line.rstrip()}", flush=True)
        if line.startswith("repro-cluster:") and "listening on" in line:
            port = int(line.rsplit(":", 1)[1])
            pump = threading.Thread(
                target=lambda: [None for _ in process.stdout], daemon=True
            )
            pump.start()
            return process, port
    raise SystemExit("smoke: cluster never reported its port")


def main() -> int:
    with tempfile.TemporaryDirectory() as cache_dir:
        process, port = boot(cache_dir)
        try:
            client = ServeClient("127.0.0.1", port, timeout=120.0, retries=4)
            health = client.healthz()
            check(health["status"] == "ok", "healthz is ok")
            check(health["replicas_up"] == 2, "two replicas routable")

            # Shard affinity: the same job lands on the same replica,
            # and the repeat is warm.  The router LRU is disabled
            # (--lru-capacity 0) so the disk/replica path is what
            # answers — affinity stays observable.
            first = client.simulate(SMALL)
            second = client.simulate(SMALL)
            check(first["key"] == second["key"], "stable job key")
            check(first["cached"] is False, "first request computed")
            check(second["cached"] is True, "second request served warm")
            owner = first.get("replica")
            check(
                second.get("replica") in (owner, None),
                f"repeat stayed on replica {owner} (or a router tier)",
            )

            # Placement spread: seed-varied jobs reach both replicas.
            with ThreadPoolExecutor(4) as pool:
                spread = list(pool.map(
                    lambda seed: client.simulate({**SMALL, "seed": seed}),
                    range(1, 9),
                ))
            replicas_used = {p.get("replica") for p in spread} - {None}
            check(
                len(replicas_used) == 2,
                f"workload spread across both replicas ({sorted(replicas_used)})",
            )

            # Kill one replica mid-burst: zero client-visible failures.
            stats = client.stats()
            victim_pid = None
            for state in stats["supervisor"]["replicas"].values():
                if state["state"] == "up" and state["pid"]:
                    victim_pid = state["pid"]
                    break
            check(victim_pid is not None, "found a replica pid to kill")

            fired = [0]

            def kill_when_loaded() -> None:
                while fired[0] < 4:
                    time.sleep(0.05)
                os.kill(victim_pid, signal.SIGKILL)
                print(f"smoke: killed replica pid {victim_pid}", flush=True)

            killer = threading.Thread(target=kill_when_loaded)
            killer.start()

            def fire(seed: int) -> bool:
                fired[0] += 1
                try:
                    client.simulate({**SMALL, "seed": 100 + seed})
                    return True
                except ServeError:
                    return False

            with ThreadPoolExecutor(8) as pool:
                outcomes = list(pool.map(fire, range(24)))
            killer.join()
            failed = len(outcomes) - sum(outcomes)
            check(failed == 0, f"zero failed requests during kill ({failed})")

            # Self-healing: the supervisor restarts the dead replica.
            healed = False
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                health = client.healthz()
                if health["replicas_up"] == 2:
                    healed = True
                    break
                time.sleep(0.5)
            check(healed, "killed replica restarted and routable again")

            snapshot = client.stats()
            check(
                snapshot["supervisor"]["restarts_total"] >= 1,
                "supervisor recorded the restart",
            )
            Path("CLUSTER_STATS.json").write_text(
                json.dumps(snapshot, indent=2, sort_keys=True) + "\n"
            )
            print("smoke: wrote CLUSTER_STATS.json", flush=True)

            # SIGTERM drain: router drains, replicas drain, exit 0.
            process.send_signal(signal.SIGTERM)
            exit_code = process.wait(timeout=120.0)
            check(exit_code == 0, "SIGTERM drained and exited 0")
        finally:
            if process.poll() is None:
                process.kill()
            process.stdout.close()
            process.wait()
    print("smoke: all checks passed", flush=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
