"""End-to-end integration tests crossing module boundaries."""

import numpy as np
import pytest

from repro import (
    AuroraAccelerator,
    LayerDims,
    get_model,
    layer_plan,
    list_models,
    load_dataset,
)
from repro.core import GNNRequest, Opcode


@pytest.fixture(scope="module")
def cora():
    return load_dataset("cora", scale=0.3)


class TestAcceleratorFacade:
    def test_run_end_to_end(self, cora):
        acc = AuroraAccelerator()
        result = acc.run(get_model("gcn"), cora, hidden=32, num_layers=2, num_classes=7)
        assert result.total_seconds > 0
        assert result.notes["layers"] == 2

    def test_layer_plan(self, cora):
        dims = layer_plan(cora, hidden=64, num_layers=3, num_classes=7)
        assert [d.in_features for d in dims] == [cora.num_features, 64, 64]
        assert [d.out_features for d in dims] == [64, 64, 7]

    def test_layer_plan_validation(self, cora):
        with pytest.raises(ValueError):
            layer_plan(cora, hidden=0, num_layers=1)
        with pytest.raises(ValueError):
            layer_plan(cora, hidden=8, num_layers=0)

    def test_prepare_fills_instruction_buffer(self, cora):
        acc = AuroraAccelerator()
        request = GNNRequest(get_model("gcn"), cora, LayerDims(cora.num_features, 16))
        workflow, program = acc.prepare(request)
        assert len(acc.instruction_buffer) == len(program)
        opcodes = {i.opcode for i in program}
        assert Opcode.EXEC_PHASE in opcodes
        assert Opcode.BARRIER in opcodes

    def test_run_layer(self, cora):
        acc = AuroraAccelerator()
        r = acc.run_layer(get_model("gin"), cora, LayerDims(cora.num_features, 16))
        assert r.total_seconds > 0

    def test_hashing_accelerator(self, cora):
        aware = AuroraAccelerator().run(get_model("gcn"), cora, hidden=32)
        hashed = AuroraAccelerator(mapping_policy="hashing").run(
            get_model("gcn"), cora, hidden=32
        )
        assert hashed.total_seconds >= aware.total_seconds


class TestCrossModel:
    @pytest.mark.parametrize("name", list_models())
    def test_full_inference_every_model(self, cora, name):
        acc = AuroraAccelerator()
        r = acc.run(get_model(name), cora, hidden=16, num_layers=2)
        assert r.total_seconds > 0
        assert np.isfinite(r.energy.total)

    def test_mp_models_cost_more_edge_work(self, cora):
        """Models with per-edge MLPs spend more than plain GCN on the same
        graph (EdgeConv moves the dense transform to every edge)."""
        acc = AuroraAccelerator()
        gcn = acc.run(get_model("gcn"), cora, hidden=16, num_layers=1)
        ec = acc.run(get_model("edgeconv-5"), cora, hidden=16, num_layers=1)
        assert ec.counters.mac_ops > gcn.counters.mac_ops


class TestSimulatedVsFunctional:
    def test_op_counts_match_functional_flops(self, cora, rng):
        """The workload extractor's M×V count equals the dense FLOPs the
        NumPy reference actually performs for the vertex update."""
        from repro.models import extract_workload

        dims = LayerDims(cora.num_features, 8)
        wl = extract_workload(get_model("graphsage-mean"), cora, dims)
        n, f_in, f_out = cora.num_vertices, dims.in_features, dims.out_features
        assert wl.O_uv == 2 * n * f_in * f_out

    def test_aggregation_counts_match_edges(self, cora):
        from repro.models import extract_workload

        dims = LayerDims(cora.num_features, 8)
        wl = extract_workload(get_model("gin"), cora, dims)
        assert wl.O_a == cora.num_edges * cora.num_features


class TestScaledHarnessConsistency:
    def test_normalized_results_stable_across_scales(self):
        """Shrinking a dataset (with proportional buffers) must preserve the
        qualitative shape: HyGCN worst, AWB-GCN clearly behind Aurora, and
        Aurora within a few percent of the front at any scale (exact
        front-runner order between near-ties is scale-sensitive noise)."""
        from repro.eval import run_comparison

        for scale in (0.5, 1.0):
            comp = run_comparison(
                model="gcn", datasets=("cora",), scales={"cora": scale}
            )
            g = comp.normalized_grid("execution_time")["cora"]
            assert max(g, key=g.get) == "hygcn"
            assert g["awb-gcn"] > 1.3
            assert all(v > 0.95 for a, v in g.items() if a != "aurora")
