"""Baseline accelerator models: HyGCN, AWB-GCN, GCNAX, ReGNN, FlowGNN."""

from .awbgcn import AWBGCN, AWBGCN_TRAITS
from .base import BaselineAccelerator, BaselineTraits, UnsupportedModelError
from .flowgnn import FLOWGNN_TRAITS, FlowGNN
from .gcnax import GCNAX, GCNAX_TRAITS
from .hygcn import HYGCN_TRAITS, HyGCN
from .regnn import REGNN_TRAITS, ReGNN

#: Baseline classes in the paper's comparison order.
BASELINE_CLASSES = (HyGCN, AWBGCN, GCNAX, ReGNN, FlowGNN)

#: Trait records in the same order (for the Table I coverage report).
BASELINE_TRAITS = (
    HYGCN_TRAITS,
    AWBGCN_TRAITS,
    GCNAX_TRAITS,
    REGNN_TRAITS,
    FLOWGNN_TRAITS,
)


def make_baseline(name: str, config=None) -> BaselineAccelerator:
    """Instantiate a baseline by its paper name (case-insensitive)."""
    lookup = {
        "hygcn": HyGCN,
        "awb-gcn": AWBGCN,
        "awbgcn": AWBGCN,
        "gcnax": GCNAX,
        "regnn": ReGNN,
        "flowgnn": FlowGNN,
    }
    key = name.lower()
    if key not in lookup:
        raise KeyError(f"unknown baseline {name!r}; available: hygcn, awb-gcn, gcnax, regnn, flowgnn")
    return lookup[key](config)


__all__ = [
    "BaselineAccelerator",
    "BaselineTraits",
    "UnsupportedModelError",
    "HyGCN",
    "AWBGCN",
    "GCNAX",
    "ReGNN",
    "FlowGNN",
    "HYGCN_TRAITS",
    "AWBGCN_TRAITS",
    "GCNAX_TRAITS",
    "REGNN_TRAITS",
    "FLOWGNN_TRAITS",
    "BASELINE_CLASSES",
    "BASELINE_TRAITS",
    "make_baseline",
]
