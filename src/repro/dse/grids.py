"""Named baseline grids evaluated through the DSE path.

The paper's fixed E1–E12 comparison grid and the adversarial-workload
regression grid are registered here so ``repro dse --grid <name>`` and a
searched space share one evaluation pipeline (``run_jobs`` + trajectory
artifacts + summary renderers) — the fixed grid is just a search with
the candidate list written down in advance.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..eval.harness import ACCELERATOR_ORDER, comparison_jobs
from ..graphs.datasets import list_adversarial_datasets
from ..runtime.jobs import SimJob

__all__ = ["GRIDS", "build_grid", "list_grids"]


def _label(job: SimJob) -> dict:
    return {
        "model": job.model,
        "dataset": job.dataset,
        "accelerator": job.accelerator,
        "mapping": job.mapping,
        "scale": job.scale,
    }


def paper_sweep(
    *,
    datasets: Sequence[str] | None = None,
    model: str = "gcn",
    hidden: int = 64,
    num_layers: int = 2,
    scale: float | None = None,
    seed: int = 7,
) -> tuple[list[SimJob], list[dict]]:
    """The E1–E12 comparison grid: model × datasets × accelerators.

    Delegates to :func:`repro.eval.harness.comparison_jobs` so the grid
    here *is* the grid the evaluation harness runs — same scales, same
    buffer scaling, same non-strict baseline fallback.  ``scale``
    overrides every dataset's default scale (useful for quick runs).
    """
    scales = None
    if scale is not None:
        names = list(datasets) if datasets else None
        from ..graphs.datasets import list_datasets

        scales = {ds: scale for ds in (names or list_datasets())}
    jobs = comparison_jobs(
        model=model,
        datasets=tuple(datasets) if datasets else None,
        hidden=hidden,
        num_layers=num_layers,
        scales=scales,
        seed=seed,
    )
    return jobs, [_label(job) for job in jobs]


def adversarial_sweep(
    *,
    datasets: Sequence[str] | None = None,
    model: str = "gcn",
    hidden: int = 32,
    num_layers: int = 2,
    scale: float | None = 1.0,
    seed: int = 7,
) -> tuple[list[SimJob], list[dict]]:
    """Aurora vs baselines on the degree-skew extreme workloads.

    Both mapping policies run for Aurora: the adversarial graphs are
    built to split them (bipartite punishes sequential locality, the
    star/near-clique hubs punish naive balance).
    """
    names = list(datasets) if datasets else list_adversarial_datasets()
    jobs: list[SimJob] = []
    for ds in names:
        for acc in ACCELERATOR_ORDER:
            mappings = ("degree-aware", "hashing") if acc == "aurora" else (
                "degree-aware",
            )
            for mapping in mappings:
                jobs.append(
                    SimJob(
                        model=model,
                        dataset=ds,
                        accelerator=acc,
                        scale=scale if scale is not None else 1.0,
                        hidden=hidden,
                        num_layers=num_layers,
                        seed=seed,
                        mapping=mapping,
                        strict=False,
                        scale_buffers=True,
                    )
                )
    return jobs, [_label(job) for job in jobs]


GRIDS: dict[str, Callable[..., tuple[list[SimJob], list[dict]]]] = {
    "paper-sweep": paper_sweep,
    "adversarial": adversarial_sweep,
}


def list_grids() -> list[str]:
    return list(GRIDS)


def build_grid(name: str, **options) -> tuple[list[SimJob], list[dict]]:
    """Materialise a named grid as ``(jobs, trajectory labels)``."""
    try:
        builder = GRIDS[name]
    except KeyError:
        raise KeyError(
            f"unknown grid {name!r}; available: {', '.join(GRIDS)}"
        ) from None
    return builder(**options)
