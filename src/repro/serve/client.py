"""Resilient synchronous client for the simulation service.

Retries are opt-out, not opt-in: transport failures and explicit
backpressure (429 shed, 503 draining) retry with capped exponential
backoff plus jitter, while deterministic failures (400 bad request,
500 simulation error) surface immediately — retrying a job that will
fail identically only adds load.  When the server (or the cluster
router) sends a ``Retry-After`` header with the shed, the client obeys
it verbatim instead of guessing with computed backoff — the server
knows its own queue.  A ``deadline`` bounds the *total* budget across
attempts and propagates to the server in the ``X-Repro-Deadline``
header so it can abandon work the client already gave up on; a
``Retry-After`` longer than the remaining budget is capped to it.
"""

from __future__ import annotations

import http.client
import json
import math
import random
import time
from typing import Callable

from ..runtime.jobs import SimJob

__all__ = [
    "ServeError",
    "RequestFailed",
    "DeadlineExceeded",
    "ServiceUnavailable",
    "ServeClient",
]

#: Statuses that signal transient backpressure worth retrying.
RETRYABLE_STATUSES = frozenset({429, 503})


def _parse_retry_after(headers: dict) -> float | None:
    """Seconds from a ``Retry-After`` header, ``None`` if absent/bad.

    Only the delta-seconds form is produced by this stack; an HTTP-date
    (or any other unparseable value) falls back to computed backoff
    rather than being misread as a huge delay.
    """
    value = headers.get("retry-after") if headers else None
    if value is None:
        return None
    try:
        seconds = float(value)
    except (TypeError, ValueError):
        return None
    if seconds < 0:
        return None
    return seconds


class ServeError(Exception):
    """Base class for client-side failures."""


class RequestFailed(ServeError):
    """The server answered with a non-retryable error status."""

    def __init__(self, status: int, payload: dict) -> None:
        super().__init__(f"HTTP {status}: {payload.get('error', payload)}")
        self.status = status
        self.payload = payload


class DeadlineExceeded(ServeError):
    """The total deadline budget ran out before a success."""


class ServiceUnavailable(ServeError):
    """Retries exhausted against transient failures."""


#: Transport signature: (method, path, body, headers, timeout) →
#: (status, payload) or (status, payload, response_headers).  Injectable
#: so tests script failure sequences without a socket; the two-tuple
#: form stays accepted for existing fakes.
Transport = Callable[[str, str, bytes | None, dict, float], tuple]


class ServeClient:
    """Thin blocking client with retries, backoff + jitter, deadlines."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8765,
        *,
        retries: int = 4,
        backoff: float = 0.05,
        backoff_cap: float = 2.0,
        jitter: float = 0.25,
        timeout: float = 30.0,
        transport: Transport | None = None,
        sleep: Callable[[float], None] = time.sleep,
        rng: random.Random | None = None,
    ) -> None:
        if retries < 0:
            raise ValueError("retries must be >= 0")
        self.host = host
        self.port = port
        self.retries = retries
        self.backoff = backoff
        self.backoff_cap = backoff_cap
        self.jitter = jitter
        self.timeout = timeout
        self._transport = transport or self._http_transport
        self._sleep = sleep
        self._rng = rng or random.Random()

    # -- transport ------------------------------------------------------
    def _http_transport(
        self,
        method: str,
        path: str,
        body: bytes | None,
        headers: dict,
        timeout: float,
    ) -> tuple[int, dict]:
        conn = http.client.HTTPConnection(self.host, self.port, timeout=timeout)
        try:
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            raw = response.read()
        finally:
            conn.close()
        response_headers = {
            name.lower(): value for name, value in response.getheaders()
        }
        content_type = (response.getheader("Content-Type") or "").lower()
        if content_type.startswith("text/plain"):
            # Plaintext endpoints (/metrics): carry the body verbatim.
            return (
                response.status,
                {"text": raw.decode("utf-8", "replace")},
                response_headers,
            )
        try:
            payload = json.loads(raw) if raw else {}
        except json.JSONDecodeError:
            payload = {"error": f"undecodable response body: {raw[:200]!r}"}
        if not isinstance(payload, dict):
            payload = {"value": payload}
        return response.status, payload, response_headers

    # -- core retry loop ------------------------------------------------
    def call(
        self,
        method: str,
        path: str,
        body: dict | None = None,
        *,
        deadline: float | None = None,
        headers: dict | None = None,
    ) -> tuple[int, dict]:
        """One logical request with retries; returns (status, payload)."""
        encoded = None
        headers = dict(headers) if headers else {}
        if body is not None:
            encoded = json.dumps(body).encode()
            headers["Content-Type"] = "application/json"
        start = time.monotonic()
        attempt = 0
        last_failure = "no attempt made"
        while True:
            remaining = math.inf
            if deadline is not None:
                remaining = deadline - (time.monotonic() - start)
                if remaining <= 0:
                    raise DeadlineExceeded(
                        f"deadline of {deadline:g}s exhausted after "
                        f"{attempt} attempt(s); last failure: {last_failure}"
                    )
                headers["X-Repro-Deadline"] = f"{remaining:.3f}"
            attempt_timeout = min(self.timeout, remaining)
            retry_after: float | None = None
            try:
                reply = self._transport(
                    method, path, encoded, dict(headers), attempt_timeout
                )
            except (OSError, http.client.HTTPException) as exc:
                last_failure = f"{type(exc).__name__}: {exc}"
            else:
                status, payload = reply[0], reply[1]
                if status not in RETRYABLE_STATUSES:
                    return status, payload
                if len(reply) > 2:
                    retry_after = _parse_retry_after(reply[2])
                last_failure = f"HTTP {status}: {payload.get('error', '')}"
            attempt += 1
            if attempt > self.retries:
                raise ServiceUnavailable(
                    f"gave up after {attempt} attempt(s); "
                    f"last failure: {last_failure}"
                )
            if retry_after is not None:
                # The server said exactly when to come back; obey it
                # (capped below at the remaining deadline budget).
                delay = retry_after
            else:
                delay = min(self.backoff_cap, self.backoff * 2 ** (attempt - 1))
                delay *= 1.0 + self.jitter * self._rng.random()
            if deadline is not None:
                budget = deadline - (time.monotonic() - start)
                if budget <= 0:
                    raise DeadlineExceeded(
                        f"deadline of {deadline:g}s exhausted after "
                        f"{attempt} attempt(s); last failure: {last_failure}"
                    )
                delay = min(delay, budget)
            self._sleep(delay)

    # -- endpoints ------------------------------------------------------
    def simulate(
        self,
        request: dict | SimJob,
        *,
        deadline: float | None = None,
        trace_id: str | None = None,
    ) -> dict:
        """Run one simulation request; returns the response payload.

        ``trace_id`` (hex, ≤32 chars) is sent in ``X-Repro-Trace-Id`` so
        the server adopts it for the request's trace; the server-chosen
        id comes back in the payload's ``trace_id`` field either way.
        """
        body = request.as_dict() if isinstance(request, SimJob) else dict(request)
        headers = {"X-Repro-Trace-Id": trace_id} if trace_id else None
        status, payload = self.call(
            "POST", "/simulate", body, deadline=deadline, headers=headers
        )
        if status != 200:
            raise RequestFailed(status, payload)
        return payload

    def healthz(self) -> dict:
        status, payload = self.call("GET", "/healthz")
        if status != 200:
            raise RequestFailed(status, payload)
        return payload

    def stats(self) -> dict:
        status, payload = self.call("GET", "/stats")
        if status != 200:
            raise RequestFailed(status, payload)
        return payload

    def metrics(self) -> str:
        """The Prometheus text exposition from ``/metrics``."""
        status, payload = self.call("GET", "/metrics")
        if status != 200:
            raise RequestFailed(status, payload)
        return payload.get("text", "")

    def dse_start(self, spec: dict, *, deadline: float | None = None) -> dict:
        """Submit a search to ``POST /dse``; returns the accept payload
        (``search_id`` + poll path).  Raises on 400/429."""
        status, payload = self.call("POST", "/dse", dict(spec), deadline=deadline)
        if status != 202:
            raise RequestFailed(status, payload)
        return payload

    def dse_poll(self, search_id: str, *, deadline: float | None = None) -> dict:
        """Poll ``GET /dse/<id>`` for search progress."""
        status, payload = self.call(
            "GET", f"/dse/{search_id}", deadline=deadline
        )
        if status != 200:
            raise RequestFailed(status, payload)
        return payload

    def dse_wait(
        self,
        search_id: str,
        *,
        timeout: float = 60.0,
        interval: float = 0.2,
    ) -> dict:
        """Poll until the search leaves the running state (or timeout)."""
        deadline = time.monotonic() + timeout
        while True:
            payload = self.dse_poll(search_id)
            if payload.get("state") not in ("pending", "running"):
                return payload
            if time.monotonic() >= deadline:
                raise DeadlineExceeded(
                    f"search {search_id} still running after {timeout:g}s"
                )
            time.sleep(interval)

    def trace(self, trace_id: str | None = None, *, limit: int = 0) -> dict:
        """Buffered spans from ``/trace``, optionally one trace only."""
        params = []
        if trace_id:
            params.append(f"trace_id={trace_id}")
        if limit:
            params.append(f"limit={limit}")
        path = "/trace" + ("?" + "&".join(params) if params else "")
        status, payload = self.call("GET", path)
        if status != 200:
            raise RequestFailed(status, payload)
        return payload
