"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.model == "gcn"
        assert args.dataset == "cora"
        assert args.device == "aurora"

    def test_rejects_unknown_model(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--model", "bert"])

    def test_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--dataset", "ogbn"])

    def test_compare_runtime_flags_default_off(self):
        args = build_parser().parse_args(["compare"])
        assert args.jobs == 1
        assert args.cache is False

    def test_sweep_cache_defaults_on(self):
        args = build_parser().parse_args(["sweep"])
        assert args.cache is True
        args = build_parser().parse_args(["sweep", "--no-cache", "--jobs", "4"])
        assert args.cache is False
        assert args.jobs == 4

    def test_experiment_accepts_jobs_flag(self):
        args = build_parser().parse_args(["experiment", "E1", "--jobs", "2"])
        assert args.jobs == 2

    def test_rejects_nonpositive_jobs(self):
        for bad in ("0", "-1"):
            with pytest.raises(SystemExit):
                build_parser().parse_args(["sweep", "--jobs", bad])


class TestCommands:
    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        for name in ("cora", "citeseer", "pubmed", "nell", "reddit"):
            assert name in out
        assert "2,708" in out  # Cora's published vertex count

    def test_models(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "gcn" in out and "edgeconv-5" in out

    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "32x32" in out
        assert "700 MHz" in out
        assert "63 cycles" in out

    def test_simulate_aurora(self, capsys):
        rc = main(["simulate", "--dataset", "cora", "--scale", "0.2",
                   "--hidden", "16", "--layers", "1"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "device          : aurora" in out
        assert "execution time" in out

    def test_simulate_baseline(self, capsys):
        rc = main(["simulate", "--dataset", "cora", "--scale", "0.2",
                   "--device", "gcnax", "--hidden", "16", "--layers", "1"])
        assert rc == 0
        assert "gcnax" in capsys.readouterr().out

    def test_simulate_unsupported_warns(self, capsys):
        rc = main(["simulate", "--dataset", "cora", "--scale", "0.2",
                   "--device", "hygcn", "--model", "ggcn",
                   "--hidden", "8", "--layers", "1"])
        assert rc == 0
        assert "does not support" in capsys.readouterr().err

    def test_simulate_hashing_mapping(self, capsys):
        rc = main(["simulate", "--dataset", "cora", "--scale", "0.2",
                   "--mapping", "hashing", "--hidden", "8", "--layers", "1"])
        assert rc == 0
        assert "aurora-hashing" in capsys.readouterr().out

    def test_compare(self, capsys):
        rc = main(["compare", "--datasets", "cora", "--metric", "energy"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "aurora" in out and "hygcn" in out

    def test_sweep_cold_then_warm(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        assert main(["sweep", "--datasets", "cora", "--metric", "energy"]) == 0
        out = capsys.readouterr().out
        assert "aurora" in out
        assert "6 executed" in out
        assert "cache 0 hit / 6 miss" in out
        # Warm rerun: every grid point served from the cache.
        assert main(["sweep", "--datasets", "cora", "--metric", "energy"]) == 0
        out = capsys.readouterr().out
        assert "0 executed" in out
        assert "cache 6 hit / 0 miss" in out

    def test_sweep_no_cache(self, capsys):
        rc = main(["sweep", "--datasets", "cora", "--no-cache"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "6 executed" in out
        assert "cache 0 hit / 0 miss" in out

    def test_compare_with_jobs_flag(self, capsys):
        rc = main(["compare", "--datasets", "cora", "--jobs", "2",
                   "--metric", "energy"])
        assert rc == 0
        assert "aurora" in capsys.readouterr().out

    def test_experiment(self, capsys):
        assert main(["experiment", "E1"]) == 0
        assert "Table I" in capsys.readouterr().out

    def test_experiment_with_runtime_flags(self, capsys):
        assert main(["experiment", "E1", "--jobs", "1"]) == 0
        assert "Table I" in capsys.readouterr().out

    def test_experiment_unknown(self, capsys):
        assert main(["experiment", "E99"]) == 2
        assert "error" in capsys.readouterr().err
