"""Consistent hash ring with virtual nodes.

The router places every replica on a 64-bit hash circle ``vnodes``
times (default 64) and routes each job to the first replica point at or
after the job's own hash.  Two properties fall out of the construction
and are pinned by ``tests/test_cluster_ring.py``:

* **balance** — with 64 virtual nodes per replica, the max/min key
  share across 1/2/4/8 replicas stays within 1.5x;
* **minimal disruption** — removing a replica reassigns *only* the keys
  that replica owned (its points vanish, every other point is
  untouched), which is exactly what keeps the surviving replicas' warm
  caches valid through a drain or crash.

Hashing uses ``blake2b`` with an 8-byte digest: stable across
processes and Python versions (unlike ``hash()``), cheap, and wide
enough that point collisions are a non-issue.
"""

from __future__ import annotations

import bisect
import hashlib

__all__ = ["HashRing", "ring_point", "DEFAULT_VNODES"]

#: Virtual nodes per replica; 64 keeps max/min key share within 1.5x
#: up to 8 replicas (asserted by the ring test suite).
DEFAULT_VNODES = 64


def ring_point(token: str) -> int:
    """Deterministic 64-bit position of ``token`` on the hash circle."""
    digest = hashlib.blake2b(token.encode(), digest_size=8).digest()
    return int.from_bytes(digest, "big")


class HashRing:
    """Maps string keys to member nodes with consistent hashing."""

    def __init__(
        self, nodes: "tuple[str, ...] | list[str]" = (), *, vnodes: int = DEFAULT_VNODES
    ) -> None:
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        self._points: list[int] = []  # sorted hash positions
        self._owners: list[str] = []  # parallel: position -> node
        self._members: set[str] = set()
        for node in nodes:
            self.add(node)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, node: str) -> bool:
        return node in self._members

    @property
    def nodes(self) -> list[str]:
        """Current members, sorted (stable for stats and tests)."""
        return sorted(self._members)

    # ------------------------------------------------------------------
    def add(self, node: str) -> None:
        """Place ``node`` on the ring (``vnodes`` points)."""
        if node in self._members:
            raise ValueError(f"node already on the ring: {node!r}")
        self._members.add(node)
        for i in range(self.vnodes):
            position = ring_point(f"{node}#{i}")
            idx = bisect.bisect_left(self._points, position)
            self._points.insert(idx, position)
            self._owners.insert(idx, node)

    def remove(self, node: str) -> None:
        """Remove ``node``; only its own keys re-hash to survivors."""
        if node not in self._members:
            raise KeyError(f"node not on the ring: {node!r}")
        self._members.discard(node)
        kept = [
            (p, o) for p, o in zip(self._points, self._owners) if o != node
        ]
        self._points = [p for p, _ in kept]
        self._owners = [o for _, o in kept]

    # ------------------------------------------------------------------
    def owner(self, key: str) -> str:
        """The node owning ``key`` (first point at or after its hash)."""
        if not self._points:
            raise LookupError("ring is empty")
        idx = bisect.bisect_right(self._points, ring_point(key))
        idx %= len(self._points)
        return self._owners[idx]

    def preference(self, key: str, count: int | None = None) -> list[str]:
        """Distinct nodes in ring order from ``key``'s owner onward.

        The first entry is :meth:`owner`; the rest are the failover
        order the router walks when the owner is saturated or down.
        """
        if not self._points:
            return []
        want = len(self._members) if count is None else min(count, len(self._members))
        start = bisect.bisect_right(self._points, ring_point(key))
        seen: list[str] = []
        for offset in range(len(self._points)):
            node = self._owners[(start + offset) % len(self._points)]
            if node not in seen:
                seen.append(node)
                if len(seen) >= want:
                    break
        return seen

    def snapshot(self) -> dict:
        """Stats view: membership and point counts."""
        return {
            "vnodes": self.vnodes,
            "nodes": self.nodes,
            "points": len(self._points),
        }
