"""Tests for NoC latency-load characterization."""

import pytest

from repro.arch.noc import BypassSegment, FlexibleMeshTopology
from repro.eval.noc_characterization import LatencyLoadCurve, latency_load_curve


@pytest.fixture(scope="module")
def uniform_curve():
    return latency_load_curve(
        FlexibleMeshTopology(4),
        pattern="uniform",
        rates=(0.01, 0.05, 0.2),
        warm_cycles=150,
    )


class TestCurve:
    def test_one_point_per_rate(self, uniform_curve):
        assert len(uniform_curve.points) == 3

    def test_latency_nondecreasing_with_load(self, uniform_curve):
        lats = [p.avg_latency for p in uniform_curve.points]
        assert lats[-1] >= lats[0]

    def test_all_delivered(self, uniform_curve):
        for p in uniform_curve.points:
            assert p.delivered > 0

    def test_zero_load_latency(self, uniform_curve):
        assert uniform_curve.zero_load_latency == pytest.approx(
            uniform_curve.points[0].avg_latency
        )

    def test_deterministic(self):
        a = latency_load_curve(
            FlexibleMeshTopology(4), rates=(0.02,), warm_cycles=80
        )
        b = latency_load_curve(
            FlexibleMeshTopology(4), rates=(0.02,), warm_cycles=80
        )
        assert a.points[0].avg_latency == b.points[0].avg_latency


class TestPatterns:
    def test_hotspot_saturates_before_uniform(self):
        rates = (0.01, 0.05, 0.1, 0.2, 0.4)
        uni = latency_load_curve(
            FlexibleMeshTopology(4), pattern="uniform", rates=rates, warm_cycles=150
        )
        hot = latency_load_curve(
            FlexibleMeshTopology(4), pattern="hotspot", rates=rates, warm_cycles=150
        )
        s_uni = uni.saturation_rate() or 1.0
        s_hot = hot.saturation_rate() or 1.0
        assert s_hot <= s_uni

    def test_transpose_pattern(self):
        curve = latency_load_curve(
            FlexibleMeshTopology(4), pattern="transpose", rates=(0.05,), warm_cycles=100
        )
        assert curve.points[0].delivered > 0

    def test_unknown_pattern(self):
        with pytest.raises(ValueError, match="pattern"):
            latency_load_curve(
                FlexibleMeshTopology(4), pattern="tornado", rates=(0.01,)
            )

    def test_invalid_rate(self):
        with pytest.raises(ValueError, match="rates"):
            latency_load_curve(FlexibleMeshTopology(4), rates=(0.0,))


class TestBypassEffect:
    def test_bypass_lowers_hotspot_latency(self):
        """Express segments toward the hotspot cut its average latency."""
        k = 8
        plain = FlexibleMeshTopology(k)
        boosted = FlexibleMeshTopology(k)
        hot = (k * k) // 2  # node (4, 4): row 4, col 4
        boosted.add_bypass_segment(BypassSegment("row", 4, 0, k - 1))
        boosted.add_bypass_segment(BypassSegment("col", 4, 0, k - 1))
        rates = (0.02,)
        base = latency_load_curve(
            plain, pattern="hotspot", rates=rates, warm_cycles=150
        )
        fast = latency_load_curve(
            boosted, pattern="hotspot", rates=rates, warm_cycles=150
        )
        assert fast.points[0].avg_latency <= base.points[0].avg_latency * 1.05
