"""Experiment harness: run the paper's accelerator × dataset grids.

``run_comparison`` executes one model on every (dataset, accelerator)
pair — Aurora plus the five baselines — and returns a
:class:`ComparisonResults` that the figure benchmarks normalise and
render.  Dataset scale factors keep full sweeps tractable; because every
accelerator sees the *same* generated graph, normalised results are
scale-consistent.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..baselines import BASELINE_CLASSES
from ..config import AcceleratorConfig, default_config
from ..core.accelerator import layer_plan
from ..core.results import SimulationResult
from ..core.simulator import AuroraSimulator
from ..graphs.csr import CSRGraph
from ..graphs.datasets import dataset_profile, list_datasets, load_dataset
from ..models.zoo import get_model
from .metrics import metric_value, reduction_percent

__all__ = ["ComparisonResults", "run_comparison", "DEFAULT_SCALES", "ACCELERATOR_ORDER"]

#: Paper comparison order: baselines first, Aurora last.
ACCELERATOR_ORDER = ("hygcn", "awb-gcn", "gcnax", "regnn", "flowgnn", "aurora")

#: Scale factors keeping the full five-dataset sweep tractable in pure
#: Python while preserving degree skew and feature statistics.  All
#: accelerators see identical graphs, so normalised figures are unchanged.
DEFAULT_SCALES = {
    "cora": 1.0,
    "citeseer": 1.0,
    "pubmed": 0.5,
    "nell": 0.1,
    "reddit": 0.01,
}


@dataclass
class ComparisonResults:
    """Grid of simulation results keyed by (dataset, accelerator)."""

    model_name: str
    datasets: tuple[str, ...]
    accelerators: tuple[str, ...]
    results: dict[tuple[str, str], SimulationResult] = field(default_factory=dict)

    def get(self, dataset: str, accelerator: str) -> SimulationResult:
        return self.results[(dataset, accelerator)]

    def metric_grid(self, metric: str) -> dict[str, dict[str, float]]:
        """{dataset: {accelerator: value}} for one metric."""
        return {
            ds: {
                acc: metric_value(self.results[(ds, acc)], metric)
                for acc in self.accelerators
            }
            for ds in self.datasets
        }

    def normalized_grid(
        self, metric: str, reference: str = "aurora"
    ) -> dict[str, dict[str, float]]:
        """Values normalised to ``reference`` per dataset (paper figures)."""
        grid = self.metric_grid(metric)
        out: dict[str, dict[str, float]] = {}
        for ds, row in grid.items():
            ref = row[reference]
            out[ds] = {acc: v / ref for acc, v in row.items()}
        return out

    def average_reduction_vs(self, metric: str, baseline: str) -> float:
        """Mean % reduction of Aurora vs one baseline across datasets."""
        grid = self.metric_grid(metric)
        reductions = [
            reduction_percent(grid[ds]["aurora"], grid[ds][baseline])
            for ds in self.datasets
        ]
        return sum(reductions) / len(reductions)

    def per_dataset_reduction(self, metric: str, dataset: str) -> float:
        """Mean % reduction of Aurora vs all baselines on one dataset."""
        grid = self.metric_grid(metric)[dataset]
        baselines = [a for a in self.accelerators if a != "aurora"]
        reductions = [
            reduction_percent(grid["aurora"], grid[b]) for b in baselines
        ]
        return sum(reductions) / len(reductions)

    def speedup_range_vs(self, metric: str, baseline: str) -> tuple[float, float]:
        """(min, max) ratio baseline/aurora across datasets."""
        grid = self.metric_grid(metric)
        ratios = [grid[ds][baseline] / grid[ds]["aurora"] for ds in self.datasets]
        return min(ratios), max(ratios)


def _graphs_for(
    datasets: tuple[str, ...], scales: dict[str, float] | None, seed: int
) -> dict[str, CSRGraph]:
    scales = {**DEFAULT_SCALES, **(scales or {})}
    return {
        name: load_dataset(name, scale=scales.get(name, 1.0), seed=seed)
        for name in datasets
    }


def run_comparison(
    *,
    model: str = "gcn",
    datasets: tuple[str, ...] | None = None,
    hidden: int = 64,
    num_layers: int = 2,
    scales: dict[str, float] | None = None,
    config: AcceleratorConfig | None = None,
    seed: int = 7,
) -> ComparisonResults:
    """Run the full accelerator comparison for one GNN model.

    Baselines run in non-strict mode so models outside their Table-I
    coverage execute with the documented fallback penalty rather than
    aborting the sweep (matching how the paper still reports numbers for
    every accelerator on every dataset).
    """
    datasets = tuple(datasets or list_datasets())
    cfg = config or default_config()
    gnn = get_model(model)
    merged_scales = {**DEFAULT_SCALES, **(scales or {})}
    graphs = _graphs_for(datasets, scales, seed)

    out = ComparisonResults(
        model_name=model,
        datasets=datasets,
        accelerators=ACCELERATOR_ORDER,
    )
    for ds, graph in graphs.items():
        profile = dataset_profile(ds)
        dims = layer_plan(graph, hidden, num_layers, profile.num_classes)
        # When a dataset is scaled down, scale the on-chip buffers with it
        # so the tiling pressure (tiles per layer, boundary traffic,
        # capacity fraction) matches the full-size dataset.  Every
        # accelerator sees the same scaled device, so normalised results
        # stay representative.
        scale = merged_scales.get(ds, 1.0)
        ds_cfg = cfg
        if scale < 1.0:
            ds_cfg = cfg.scaled(
                pe_buffer_bytes=max(1024, int(cfg.pe_buffer_bytes * scale))
            )
        out.results[(ds, "aurora")] = AuroraSimulator(ds_cfg).simulate(
            gnn, graph, dims
        )
        for cls in BASELINE_CLASSES:
            device = cls(ds_cfg)
            out.results[(ds, device.name)] = device.simulate(
                gnn, graph, dims, strict=False
            )
    return out
