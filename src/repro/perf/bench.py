"""Standard layer benchmarks behind ``repro bench``.

Runs the analytical tier's hot path (:meth:`AuroraSimulator.simulate_layer`)
over a fixed set of dataset workloads, measuring a **cold** call (all
memoization layers emptied) and a set of **warm** repeats, and writes the
result — together with the :data:`~repro.perf.instrumentation.PERF`
per-stage breakdown and cache counters — to a ``BENCH_<n>.json``
snapshot.  The snapshot is what the CI benchmark job archives and what
``docs/performance.md`` explains how to read.

Numbers in the snapshot are *wall-clock only*; the simulated results are
deterministic and independent of everything measured here (asserted by
``tests/test_determinism.py`` and the golden suite).
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BenchCase",
    "CycleBenchCase",
    "DeltaBenchCase",
    "FanoutBenchCase",
    "STANDARD_BENCHES",
    "CYCLE_BENCHES",
    "DELTA_BENCHES",
    "FANOUT_BENCHES",
    "run_benches",
    "run_cluster_benches",
    "run_cycle_benches",
    "run_delta_benches",
    "run_dse_benches",
    "run_fanout_benches",
    "run_observe_benches",
    "run_serve_benches",
    "write_bench_json",
]

#: Bump when the snapshot layout changes incompatibly.
BENCH_SCHEMA_VERSION = 1


def _telemetry_section() -> dict:
    """Tracer state + top stages by cumulative span time (top 5).

    Called *inside* a tracing session so the enabled/sample_rate flags
    reflect what the benches actually ran under.
    """
    from ..telemetry import TRACER
    from ..telemetry.export import span_summary

    spans = TRACER.buffer.spans()
    return {
        **TRACER.snapshot(),
        "span_count": len(spans),
        "top_stages": span_summary(spans)[:5],
    }


@dataclass(frozen=True)
class BenchCase:
    """One standard workload: a model layer on a (scaled) dataset."""

    name: str
    dataset: str
    scale: float = 1.0
    model: str = "gcn"
    hidden: int = 64

    def label(self) -> str:
        return f"{self.model}/{self.dataset}@{self.scale:g}"


#: The standard benches ``repro bench`` runs, mirroring
#: ``benchmarks/test_simulator_performance.py``.
STANDARD_BENCHES: tuple[BenchCase, ...] = (
    BenchCase("cora", "cora", 1.0),
    BenchCase("citeseer", "citeseer", 1.0),
    BenchCase("pubmed", "pubmed", 0.5),
)


def clear_hot_path_caches() -> None:
    """Empty every memoization layer the hot path consults.

    Used before the cold measurement so it reflects a from-scratch run
    (the state a fresh process or a never-seen workload starts in).
    """
    from ..arch.noc.analytical import AnalyticalNoCModel
    from ..arch.noc.network import _clear_route_memo
    from ..core.configuration import ConfigurationUnit
    from ..core.simulator import clear_partition_sample_cache
    from ..graphs.tiling import clear_tiling_cache
    from ..mapping.degree_aware import _zorder_nodes_cached
    from ..mapping.memo import clear_mapping_cache
    from ..runtime.shards import clear_tile_memo

    clear_mapping_cache()
    AnalyticalNoCModel._cache.clear()
    ConfigurationUnit._cache.clear()
    _zorder_nodes_cached.cache_clear()
    _clear_route_memo()
    clear_tiling_cache()
    clear_tile_memo()
    clear_partition_sample_cache()


def _run_case(case: BenchCase, repeat: int) -> dict:
    from ..core.simulator import AuroraSimulator
    from ..graphs.datasets import load_dataset
    from ..models.workload import LayerDims
    from ..models.zoo import get_model

    graph = load_dataset(case.dataset, scale=case.scale)
    model = get_model(case.model)
    dims = LayerDims(graph.num_features, case.hidden)

    clear_hot_path_caches()
    sim = AuroraSimulator()
    t0 = time.perf_counter()
    result = sim.simulate_layer(model, graph, dims)
    cold = time.perf_counter() - t0

    warm: list[float] = []
    for _ in range(max(1, repeat)):
        t0 = time.perf_counter()
        again = sim.simulate_layer(model, graph, dims)
        warm.append(time.perf_counter() - t0)
        if again.to_dict() != result.to_dict():  # pragma: no cover
            raise AssertionError(f"non-deterministic bench result for {case.label()}")

    return {
        "label": case.label(),
        "dataset": case.dataset,
        "scale": case.scale,
        "model": case.model,
        "hidden": case.hidden,
        "num_vertices": graph.num_vertices,
        "num_edges": graph.num_edges,
        "cold_seconds": cold,
        "warm_seconds": warm,
        "warm_mean_seconds": sum(warm) / len(warm),
        "warm_min_seconds": min(warm),
        "total_seconds_simulated": result.total_seconds,
    }


@dataclass(frozen=True)
class CycleBenchCase:
    """One cycle-tier workload: a tile executed at flit granularity."""

    name: str
    dataset: str
    scale: float
    model: str = "gcn"
    array_k: int = 16
    hidden: int = 16

    def label(self) -> str:
        return f"{self.model}/{self.dataset}@{self.scale:g}/k{self.array_k}"


#: The cycle-tier bench: a dense pubmed tile on the largest supported
#: array.  Heavy on purpose — the event engine's advantage over the
#: reference grows with traffic, and calibration sweeps are made of
#: exactly this kind of tile.
CYCLE_BENCHES: tuple[CycleBenchCase, ...] = (
    CycleBenchCase("pubmed-tile", "pubmed", 0.12),
)


def _tile_fields(result) -> tuple:
    """The deterministic counters of one tile run, for identity checks."""
    return (
        result.noc_cycles,
        result.stall_events,
        result.mesh_flit_hops,
        result.bypass_flit_hops,
        result.packets,
        result.flits,
        result.avg_packet_latency,
        result.compute_cycles_a,
        result.compute_cycles_b,
    )


def _run_cycle_case(case: CycleBenchCase, repeat: int) -> dict:
    from ..config import small_config
    from ..core.cycle_engine import CycleTileEngine
    from ..graphs.datasets import load_dataset
    from ..models.workload import LayerDims
    from ..models.zoo import get_model

    graph = load_dataset(case.dataset, scale=case.scale)
    model = get_model(case.model)
    dims = LayerDims(graph.num_features, case.hidden)
    cfg = small_config(case.array_k)

    clear_hot_path_caches()
    event = CycleTileEngine(cfg, noc_engine="event")
    t0 = time.perf_counter()
    result = event.run_tile(model, graph, dims)
    cold = time.perf_counter() - t0

    warm: list[float] = []
    for _ in range(max(1, repeat)):
        t0 = time.perf_counter()
        again = event.run_tile(model, graph, dims)
        warm.append(time.perf_counter() - t0)
        if _tile_fields(again) != _tile_fields(result):  # pragma: no cover
            raise AssertionError(
                f"non-deterministic cycle bench result for {case.label()}"
            )

    # The retained original simulator, timed once on the same tile (it
    # has no warm path: routes and flit objects are rebuilt every run).
    reference = CycleTileEngine(cfg, noc_engine="reference")
    t0 = time.perf_counter()
    ref_result = reference.run_tile(model, graph, dims)
    ref_seconds = time.perf_counter() - t0
    if _tile_fields(ref_result) != _tile_fields(result):  # pragma: no cover
        raise AssertionError(
            f"event engine diverged from reference on {case.label()}"
        )

    warm_min = min(warm)
    return {
        "label": case.label(),
        "dataset": case.dataset,
        "scale": case.scale,
        "model": case.model,
        "array_k": case.array_k,
        "hidden": case.hidden,
        "num_vertices": graph.num_vertices,
        "num_edges": graph.num_edges,
        "noc_cycles": result.noc_cycles,
        "packets": result.packets,
        "flits": result.flits,
        "cold_seconds": cold,
        "warm_seconds": warm,
        "warm_mean_seconds": sum(warm) / len(warm),
        "warm_min_seconds": warm_min,
        "reference_seconds": ref_seconds,
        "speedup_vs_reference": ref_seconds / warm_min,
        "packets_per_second": result.packets / warm_min,
        "flits_per_second": result.flits / warm_min,
        "cycles_per_second": result.noc_cycles / warm_min,
    }


def run_cycle_benches(
    benches: tuple[CycleBenchCase, ...] = CYCLE_BENCHES,
    *,
    repeat: int = 3,
    telemetry: bool = True,
) -> dict:
    """Run the cycle-tier benches and return the snapshot dict."""
    from ..telemetry import TRACER
    from .instrumentation import PERF

    PERF.reset()
    with TRACER.session(enabled=telemetry, sample_rate=1.0):
        wall_start = time.perf_counter()
        results = {case.name: _run_cycle_case(case, repeat) for case in benches}
        wall = time.perf_counter() - wall_start
        telemetry_section = _telemetry_section()
    perf = PERF.snapshot()
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "tier": "cycle",
        "repeat": repeat,
        "wall_seconds": wall,
        "benches": results,
        "stages": perf["stages"],
        "counters": perf["counters"],
        "telemetry": telemetry_section,
        "environment": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "machine": platform.machine(),
        },
    }


@dataclass(frozen=True)
class FanoutBenchCase:
    """One intra-job fan-out workload: a multi-tile job, whole layer.

    The single-request latency story of the tile fan-out work: the same
    job is timed cold through the retained reference engine (serial),
    the event engine (serial), and the fused engine with tile sharding —
    all three paths must produce identical per-tile results.
    """

    name: str
    dataset: str
    scale: float
    model: str = "gcn"
    array_k: int = 16
    hidden: int = 16
    tile_workers: int = 4
    noc_engine: str = "auto"
    #: Tiling capacity; None = the full distributed-buffer capacity.
    tile_capacity_bytes: int | None = None

    def label(self) -> str:
        return (
            f"{self.model}/{self.dataset}@{self.scale:g}/k{self.array_k}"
            f"/w{self.tile_workers}"
        )


#: The fan-out bench: pubmed tiled to half the distributed-buffer
#: capacity (region B's banks stage features/weights for the resident
#: tile while the next one loads) — three dense independent tiles,
#: exactly the shape intra-job parallelism and the fused engines were
#: built for.  Tiles are kept heavy on purpose: the engines' advantage
#: over the reference grows with per-tile traffic, and calibration
#: sweeps are made of tiles like these.
FANOUT_BENCHES: tuple[FanoutBenchCase, ...] = (
    FanoutBenchCase(
        "pubmed-job", "pubmed", 0.4, tile_capacity_bytes=2048 * 1024
    ),
)


def _run_fanout_case(case: FanoutBenchCase, repeat: int) -> dict:
    from ..config import small_config
    from ..core.cycle_layer import run_cycle_layer
    from ..graphs.datasets import load_dataset
    from ..graphs.tiling import tile_graph
    from ..models.workload import LayerDims
    from ..models.zoo import get_model

    graph = load_dataset(case.dataset, scale=case.scale)
    model = get_model(case.model)
    dims = LayerDims(graph.num_features, case.hidden)
    cfg = small_config(case.array_k)
    plan = tile_graph(
        graph, case.tile_capacity_bytes or cfg.onchip_bytes
    )
    if plan.num_tiles < 2:  # pragma: no cover
        raise AssertionError(
            f"fan-out bench needs a multi-tile job, got {plan.num_tiles}"
        )

    def timed(**kwargs):
        clear_hot_path_caches()
        t0 = time.perf_counter()
        layer = run_cycle_layer(model, plan, dims, config=cfg, **kwargs)
        return layer, time.perf_counter() - t0

    reference, reference_s = timed(noc_engine="reference")
    serial, serial_s = timed(noc_engine="event")
    fanout, fanout_s = timed(
        noc_engine=case.noc_engine, tile_workers=case.tile_workers
    )
    base = [_tile_fields(t) for t in reference.tiles]
    for name, layer in (("serial", serial), ("fanout", fanout)):
        if [_tile_fields(t) for t in layer.tiles] != base:  # pragma: no cover
            raise AssertionError(
                f"{name} path diverged from reference on {case.label()}"
            )

    # Warm repeats of the fan-out path: route + mapping memos populated.
    warm: list[float] = []
    for _ in range(max(1, repeat)):
        t0 = time.perf_counter()
        again = run_cycle_layer(
            model, plan, dims, config=cfg,
            noc_engine=case.noc_engine, tile_workers=case.tile_workers,
        )
        warm.append(time.perf_counter() - t0)
        if [_tile_fields(t) for t in again.tiles] != base:  # pragma: no cover
            raise AssertionError(
                f"warm fan-out diverged from reference on {case.label()}"
            )

    warm_min = min(warm)
    return {
        "label": case.label(),
        "dataset": case.dataset,
        "scale": case.scale,
        "model": case.model,
        "array_k": case.array_k,
        "hidden": case.hidden,
        "num_vertices": graph.num_vertices,
        "num_edges": graph.num_edges,
        "num_tiles": plan.num_tiles,
        "tile_workers": case.tile_workers,
        "effective_workers": fanout.fanout.get("workers", 1),
        "shards": fanout.fanout.get("shards", 1),
        "noc_engine": case.noc_engine,
        "noc_cycles": fanout.total_cycles,
        "packets": fanout.packets,
        "flits": fanout.flits,
        "reference_seconds": reference_s,
        "serial_event_seconds": serial_s,
        "cold_seconds": fanout_s,
        "warm_seconds": warm,
        "warm_mean_seconds": sum(warm) / len(warm),
        "warm_min_seconds": warm_min,
        # The headline number: cold single-request latency of the fused
        # + sharded path against the retained reference simulator.
        "speedup_vs_reference": reference_s / fanout_s,
        "speedup_vs_serial_event": serial_s / fanout_s,
        "packets_per_second": fanout.packets / warm_min,
        "cycles_per_second": fanout.total_cycles / warm_min,
    }


def run_fanout_benches(
    benches: tuple[FanoutBenchCase, ...] = FANOUT_BENCHES,
    *,
    repeat: int = 1,
    telemetry: bool = True,
    tile_workers: int | None = None,
    noc_engine: str | None = None,
) -> dict:
    """Run the intra-job fan-out benches (BENCH_7-style).

    ``tile_workers`` / ``noc_engine`` override the case defaults — the
    CLI's ``--tile-workers`` / ``--noc-engine`` knobs land here.
    """
    from dataclasses import replace

    from ..telemetry import TRACER
    from .instrumentation import PERF

    overrides = {}
    if tile_workers is not None:
        overrides["tile_workers"] = tile_workers
    if noc_engine is not None:
        overrides["noc_engine"] = noc_engine
    if overrides:
        benches = tuple(replace(case, **overrides) for case in benches)

    PERF.reset()
    with TRACER.session(enabled=telemetry, sample_rate=1.0):
        wall_start = time.perf_counter()
        results = {
            case.name: _run_fanout_case(case, repeat) for case in benches
        }
        wall = time.perf_counter() - wall_start
        telemetry_section = _telemetry_section()
    perf = PERF.snapshot()
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "tier": "fanout",
        "repeat": repeat,
        "wall_seconds": wall,
        "benches": results,
        "stages": perf["stages"],
        "counters": perf["counters"],
        "telemetry": telemetry_section,
        "environment": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "machine": platform.machine(),
        },
    }


#: The request the serve bench fires: small enough that cold latency is
#: dominated by the service path, not the simulation itself.
SERVE_BENCH_REQUEST = {
    "model": "gcn",
    "dataset": "cora",
    "scale": 0.2,
    "hidden": 16,
    "layers": 1,
}


def run_serve_benches(*, repeat: int = 10, telemetry: bool = True) -> dict:
    """Bench the simulation service end to end (BENCH_4-style).

    Measures, through a real socket against an in-process server:

    * **cold vs warm request latency** — first request simulates and
      fills the cache, the repeats are served straight from it;
    * **saturation throughput** — concurrent warm requests per second;
    * **shed rate under overload** — distinct cold requests fired at a
      service with a tiny admission budget, counting 429s.
    """
    from ..telemetry import TRACER

    with TRACER.session(enabled=telemetry, sample_rate=1.0):
        snapshot = _run_serve_benches_traced(repeat=repeat)
        snapshot["telemetry"] = _telemetry_section()
    return snapshot


def _run_serve_benches_traced(*, repeat: int) -> dict:
    import tempfile
    from concurrent.futures import ThreadPoolExecutor

    from ..runtime.cache import ResultCache
    from ..serve.client import ServeClient, ServeError
    from ..serve.server import ServerThread, SimulationService
    from .instrumentation import PERF

    PERF.reset()
    wall_start = time.perf_counter()
    request = dict(SERVE_BENCH_REQUEST)

    with tempfile.TemporaryDirectory() as tmp:
        cache = ResultCache(Path(tmp))
        service = SimulationService(cache=cache, queue_depth=64)
        with ServerThread(service) as thread:
            host, port = thread.address
            client = ServeClient(host, port, timeout=120.0)

            t0 = time.perf_counter()
            cold_payload = client.simulate(request)
            cold = time.perf_counter() - t0
            if cold_payload["cached"]:  # pragma: no cover
                raise AssertionError("cold serve bench request hit the cache")

            warm: list[float] = []
            for _ in range(max(1, repeat)):
                t0 = time.perf_counter()
                payload = client.simulate(request)
                warm.append(time.perf_counter() - t0)
                if not payload["cached"]:  # pragma: no cover
                    raise AssertionError("warm serve bench request missed")

            # Saturation: concurrent warm requests through one client
            # config (each call opens its own connection).
            concurrency, total = 8, 64
            t0 = time.perf_counter()
            with ThreadPoolExecutor(max_workers=concurrency) as pool:
                list(pool.map(lambda _: client.simulate(request), range(total)))
            saturation_seconds = time.perf_counter() - t0
            stats = client.stats()

    # Overload: distinct (seed-varied) cold jobs against a two-slot
    # admission budget; a zero-retry client converts sheds to errors.
    overload_service = SimulationService(queue_depth=2, batch_window=0.02)
    overload_total = 16
    with ServerThread(overload_service) as thread:
        host, port = thread.address
        shed_client = ServeClient(host, port, retries=0, timeout=120.0)

        def fire(seed: int) -> bool:
            try:
                shed_client.simulate({**request, "seed": seed})
                return True
            except ServeError:
                return False

        with ThreadPoolExecutor(max_workers=overload_total) as pool:
            served = list(pool.map(fire, range(overload_total)))
        overload_stats = overload_service.stats()

    shed = overload_total - sum(served)
    warm_mean = sum(warm) / len(warm)
    wall = time.perf_counter() - wall_start
    perf = PERF.snapshot()
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "tier": "serve",
        "repeat": repeat,
        "wall_seconds": wall,
        "benches": {
            "request": {
                "label": "gcn/cora@0.2 via repro.serve",
                "request": request,
                "cold_seconds": cold,
                "warm_seconds": warm,
                "warm_mean_seconds": warm_mean,
                "warm_min_seconds": min(warm),
                "cold_over_warm": cold / warm_mean if warm_mean else None,
                "latency": stats["latency"],
            },
            "saturation": {
                "concurrency": concurrency,
                "requests": total,
                "wall_seconds": saturation_seconds,
                "requests_per_second": total / saturation_seconds,
            },
            "overload": {
                "queue_depth": 2,
                "requests": overload_total,
                "served": sum(served),
                "shed": shed,
                "shed_rate": shed / overload_total,
                "admission": overload_stats["admission"],
            },
        },
        "stages": perf["stages"],
        "counters": perf["counters"],
        "environment": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "machine": platform.machine(),
        },
    }


#: Live-observer latency budget on the warm serve path (BENCH_10).
OBSERVE_OVERHEAD_BUDGET = 0.05


def run_observe_benches(*, repeat: int = 40, telemetry: bool = True) -> dict:
    """Bench the warm serve path with the live observer on vs off.

    Two services share one warm cache: a plain one, and one with the
    ``--observe`` equivalents active — tracer hook installed, a
    WebSocket client live-draining the event feed, and a JSONL session
    recorder attached.  Warm requests alternate between them so both
    see the same machine conditions and drift cancels out of the
    comparison.  The snapshot records the overhead fraction against the
    :data:`OBSERVE_OVERHEAD_BUDGET` and proves the recording replays.
    """
    from ..telemetry import TRACER

    with TRACER.session(enabled=telemetry, sample_rate=1.0):
        snapshot = _run_observe_benches_traced(repeat=repeat)
        snapshot["telemetry"] = _telemetry_section()
    return snapshot


def _trimmed_mean(samples: list[float]) -> float:
    """Mean of the middle 80% — robust to scheduler-noise outliers."""
    ordered = sorted(samples)
    drop = len(ordered) // 10
    kept = ordered[drop: len(ordered) - drop] if drop else ordered
    return sum(kept) / len(kept)


def _run_observe_benches_traced(*, repeat: int) -> dict:
    import asyncio
    import tempfile
    import threading

    from ..observe import ObserveState, read_session, stream_events, validate_events
    from ..runtime.cache import ResultCache
    from ..serve.client import ServeClient
    from ..serve.server import ServerThread, SimulationService
    from .instrumentation import PERF

    PERF.reset()
    wall_start = time.perf_counter()
    request = dict(SERVE_BENCH_REQUEST)
    repeat = max(4, repeat)

    def timed(client: ServeClient) -> float:
        t0 = time.perf_counter()
        payload = client.simulate(request)
        elapsed = time.perf_counter() - t0
        if not (payload["cached"] or payload["joined"]):  # pragma: no cover
            raise AssertionError("observe bench request missed the cache")
        return elapsed

    with tempfile.TemporaryDirectory() as tmp:
        cache_dir = Path(tmp) / "cache"
        record_path = Path(tmp) / "session.jsonl"
        observe = ObserveState(record_path=record_path)
        service_off = SimulationService(
            cache=ResultCache(cache_dir), queue_depth=64
        )
        service_on = SimulationService(
            cache=ResultCache(cache_dir), queue_depth=64, observe=observe
        )
        with ServerThread(service_off) as t_off, ServerThread(service_on) as t_on:
            off_client = ServeClient(*t_off.address, timeout=120.0)
            on_client = ServeClient(*t_on.address, timeout=120.0)
            received: list[str] = []
            attached = threading.Event()
            host, port = t_on.address

            def drain() -> None:
                async def _run() -> None:
                    async for event in stream_events(host, port):
                        received.append(event["type"])
                        attached.set()
                asyncio.run(_run())

            drainer = threading.Thread(target=drain, daemon=True)
            drainer.start()
            off_client.simulate(request)  # fill the shared cache + settle
            on_client.simulate(request)
            attached.wait(timeout=5.0)
            off: list[float] = []
            on: list[float] = []
            for _ in range(repeat):
                off.append(timed(off_client))
                on.append(timed(on_client))
            observe_section = service_on.stats()["observe"]
        drainer.join(timeout=5.0)

        recorded, info = read_session(record_path)
        validate_events([event.to_dict() for event in recorded])

    off_mean = _trimmed_mean(off)
    on_mean = _trimmed_mean(on)
    overhead = (on_mean - off_mean) / off_mean if off_mean else 0.0
    perf = PERF.snapshot()
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "tier": "observe",
        "repeat": repeat,
        "wall_seconds": time.perf_counter() - wall_start,
        "benches": {
            "observer": {
                "label": "warm serve path, observer on vs off",
                "request": request,
                "requests_per_phase": repeat,
                "off_mean_seconds": off_mean,
                "on_mean_seconds": on_mean,
                "off_min_seconds": min(off),
                "on_min_seconds": min(on),
                "overhead_fraction": overhead,
                "overhead_budget": OBSERVE_OVERHEAD_BUDGET,
                "within_budget": overhead <= OBSERVE_OVERHEAD_BUDGET,
                "events_received": len(received),
                "event_types": sorted(set(received)),
                "broadcaster": observe_section["broadcaster"],
                "recording": {
                    "events": info["events"],
                    "skipped": info["skipped"],
                    "schema": info["schema"],
                    "replay_valid": True,
                },
            },
        },
        "stages": perf["stages"],
        "counters": perf["counters"],
        "environment": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "machine": platform.machine(),
        },
    }


#: Fleet sizes the cluster bench sweeps (BENCH_6-style).
CLUSTER_FLEET_SIZES = (1, 2, 4)


def _boot_cluster(replicas: int, cache_base: Path, *, max_inflight: int = 32):
    """A full fleet (router + supervised replica subprocesses), unstarted."""
    from ..cluster import (
        ClusterRouter,
        ClusterThread,
        ReplicaConfig,
        ReplicaSupervisor,
    )
    from ..runtime.cache import ResultCache

    configs = [
        ReplicaConfig(
            replica_id=i,
            cache_dir=cache_base / f"shard-{i}",
            serve_args=("--queue-depth", "64"),
        )
        for i in range(replicas)
    ]
    supervisor = ReplicaSupervisor(
        configs,
        probe_interval=0.25,
        fail_threshold=2,
        restart_backoff=0.25,
    )
    router = ClusterRouter(max_inflight_per_replica=max_inflight)
    for cfg in configs:
        router.tiers.add_shard(ResultCache(root=cfg.cache_dir))
    return ClusterThread(router, supervisor)


def run_cluster_benches(*, repeat: int = 2, telemetry: bool = True) -> dict:
    """Bench the sharded cluster end to end (BENCH_6-style).

    Measures, through a real socket against a router supervising real
    replica subprocesses:

    * **saturation throughput at 1/2/4 replicas** — a mixed cold
      workload (seed-varied jobs, fresh cache shards per fleet) fired
      concurrently; aggregate requests per second per fleet size.
      Scaling is bounded by physical cores — the snapshot records
      ``cpu_count`` so a 1-core box's flat curve reads as what it is;
    * **kill one of four under load** — a replica SIGKILLed mid-run;
      the router's transport-failure failover plus the supervisor's
      restart must keep every client request succeeding.
    """
    from ..telemetry import TRACER

    with TRACER.session(enabled=telemetry, sample_rate=1.0):
        snapshot = _run_cluster_benches_traced(repeat=repeat)
        snapshot["telemetry"] = _telemetry_section()
    return snapshot


def _run_cluster_benches_traced(*, repeat: int) -> dict:
    import os
    import signal as signal_module
    import tempfile
    import threading
    from concurrent.futures import ThreadPoolExecutor

    from ..serve.client import ServeClient, ServeError
    from .instrumentation import PERF

    PERF.reset()
    wall_start = time.perf_counter()
    request = dict(SERVE_BENCH_REQUEST)
    concurrency = 8
    total = max(8, 8 * max(1, repeat))

    benches: dict[str, dict] = {}
    for fleet in CLUSTER_FLEET_SIZES:
        with tempfile.TemporaryDirectory() as tmp:
            cluster = _boot_cluster(fleet, Path(tmp))
            with cluster:
                host, port = cluster.address
                client = ServeClient(host, port, timeout=600.0, retries=4)
                # Mixed cold workload: every job distinct (seed-varied),
                # every shard empty — throughput is all compute.
                t0 = time.perf_counter()
                with ThreadPoolExecutor(max_workers=concurrency) as pool:
                    list(pool.map(
                        lambda seed: client.simulate({**request, "seed": seed}),
                        range(total),
                    ))
                cold_wall = time.perf_counter() - t0
                # Warm repeats of one job: served from the router tiers.
                t0 = time.perf_counter()
                with ThreadPoolExecutor(max_workers=concurrency) as pool:
                    list(pool.map(
                        lambda _: client.simulate({**request, "seed": 0}),
                        range(total),
                    ))
                warm_wall = time.perf_counter() - t0
                counters = dict(cluster.router.counters)
            benches[f"fleet-{fleet}"] = {
                "label": f"{fleet} replica(s), mixed cold workload",
                "replicas": fleet,
                "concurrency": concurrency,
                "requests": total,
                "wall_seconds": cold_wall,
                "requests_per_second": total / cold_wall,
                "warm_wall_seconds": warm_wall,
                "warm_requests_per_second": total / warm_wall,
                "router_counters": counters,
            }

    base_rps = benches["fleet-1"]["requests_per_second"]
    scaling = {
        str(fleet): benches[f"fleet-{fleet}"]["requests_per_second"] / base_rps
        for fleet in CLUSTER_FLEET_SIZES
    }

    # Kill one of four under load: zero client-visible failures allowed.
    kill_total = max(24, 12 * max(1, repeat))
    with tempfile.TemporaryDirectory() as tmp:
        cluster = _boot_cluster(4, Path(tmp))
        with cluster:
            host, port = cluster.address
            client = ServeClient(host, port, timeout=600.0, retries=4)
            done = threading.Event()
            completed = [0]
            killed_pid = [None]

            def kill_one_when_loaded() -> None:
                # Wait until the fleet is genuinely under load, then
                # SIGKILL one routable replica out from under it.
                while completed[0] < concurrency and not done.is_set():
                    time.sleep(0.05)
                snapshot = cluster.supervisor.snapshot()
                for state in snapshot["replicas"].values():
                    if state["state"] == "up" and state["pid"]:
                        killed_pid[0] = state["pid"]
                        os.kill(state["pid"], signal_module.SIGKILL)
                        return

            killer = threading.Thread(target=kill_one_when_loaded)
            killer.start()

            def fire(seed: int) -> bool:
                try:
                    client.simulate({**request, "seed": 1000 + seed})
                    return True
                except ServeError:
                    return False
                finally:
                    completed[0] += 1

            t0 = time.perf_counter()
            with ThreadPoolExecutor(max_workers=concurrency) as pool:
                outcomes = list(pool.map(fire, range(kill_total)))
            kill_wall = time.perf_counter() - t0
            done.set()
            killer.join()

            # The supervisor must bring the killed replica back.
            recovered = False
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                if len(cluster.router.routable) == 4:
                    recovered = True
                    break
                time.sleep(0.25)
            restarts = cluster.supervisor.restarts_total
            failovers = cluster.router.counters["proxy_failovers"]

    failed = kill_total - sum(outcomes)
    benches["kill-replica"] = {
        "label": "kill 1 of 4 replicas under load",
        "replicas": 4,
        "concurrency": concurrency,
        "requests": kill_total,
        "failed": failed,
        "killed_pid": killed_pid[0],
        "proxy_failovers": failovers,
        "restarts_total": restarts,
        "recovered": recovered,
        "wall_seconds": kill_wall,
    }

    wall = time.perf_counter() - wall_start
    perf = PERF.snapshot()
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "tier": "cluster",
        "repeat": repeat,
        "wall_seconds": wall,
        "benches": benches,
        "scaling_vs_1_replica": scaling,
        "stages": perf["stages"],
        "counters": perf["counters"],
        "environment": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
        },
    }


#: Dirty-tile fractions the delta bench sweeps.
DELTA_BENCH_FRACTIONS = (0.01, 0.10, 0.50)


@dataclass(frozen=True)
class DeltaBenchCase:
    """One incremental re-simulation workload: mutate, re-run, reuse.

    ``pe_buffer_bytes`` shrinks the distributed buffer so the dataset
    tiles into a few dozen contiguous ranges (at the default ~100 MiB
    buffer pubmed is a single tile and there is nothing to reuse).  For
    each dirty fraction, a degree-preserving rewire dirties that share
    of tiles; the mutated job is then timed **warm** (per-tile cache
    seeded by the base run — clean tiles resolve from cache) and
    **cold** (no tile cache, everything from scratch), and both results
    must be bit-identical.
    """

    name: str
    dataset: str = "pubmed"
    scale: float = 1.0
    model: str = "gcn"
    hidden: int = 32
    num_layers: int = 2
    #: Shrunk array + minimum buffers → ~128 KiB tiling capacity, ~100
    #: tiles on pubmed; per-tile work then dominates the per-layer fixed
    #: stages (partitioning), which is the regime tiled re-simulation
    #: targets.
    array_k: int = 16
    pe_buffer_bytes: int = 1024
    rows_per_tile: int = 4
    fractions: tuple = DELTA_BENCH_FRACTIONS

    def label(self) -> str:
        return f"{self.model}/{self.dataset}@{self.scale:g}/delta"


DELTA_BENCHES: tuple[DeltaBenchCase, ...] = (
    DeltaBenchCase("pubmed-delta"),
)


def _delta_mutation(case, graph, boundaries, num_tiles, fraction, seed):
    """A rewire delta dirtying ``fraction`` of the tiles, evenly spread."""
    import numpy as np

    from ..graphs.delta import rewire_delta

    target = max(1, round(fraction * num_tiles))
    chosen = np.unique(
        np.linspace(0, num_tiles - 1, num=min(target, num_tiles))
        .round()
        .astype(np.int64)
    )
    rows: list[int] = []
    for t in chosen.tolist():
        start, end = int(boundaries[t]), int(boundaries[t + 1])
        rows.extend(range(start, min(start + case.rows_per_tile, end)))
    return rewire_delta(graph, rows, seed=seed)


def _run_delta_case(case: DeltaBenchCase, repeat: int) -> dict:
    import os
    import tempfile
    from dataclasses import replace

    from ..config import default_config
    from ..core.simulator import _BUFFER_UTIL
    from ..graphs.datasets import load_dataset
    from ..graphs.delta import dirty_tiles, tile_boundaries
    from ..graphs.tiling import tile_graph
    from ..runtime.jobs import ENV_TILE_CACHE_DIR, SimJob, execute_job

    cfg = default_config().scaled(
        array_k=case.array_k, pe_buffer_bytes=case.pe_buffer_bytes
    )
    base_job = SimJob(
        model=case.model,
        dataset=case.dataset,
        scale=case.scale,
        hidden=case.hidden,
        num_layers=case.num_layers,
        config=cfg,
    )
    graph = load_dataset(case.dataset, scale=case.scale, seed=base_job.seed)
    plan = tile_graph(
        graph,
        int(cfg.onchip_bytes * _BUFFER_UTIL),
        bytes_per_value=cfg.bytes_per_value,
    )
    boundaries = tile_boundaries(plan)
    num_tiles = plan.num_tiles
    if num_tiles < 10:  # pragma: no cover
        raise AssertionError(
            f"delta bench needs a many-tile job, got {num_tiles}"
        )

    saved_env = os.environ.get(ENV_TILE_CACHE_DIR)
    benches: dict[str, dict] = {}
    with tempfile.TemporaryDirectory() as tmp:
        try:
            os.environ[ENV_TILE_CACHE_DIR] = tmp
            clear_hot_path_caches()
            t0 = time.perf_counter()
            execute_job(base_job)
            base_seconds = time.perf_counter() - t0

            for fraction in case.fractions:
                warm_times: list[float] = []
                cold_times: list[float] = []
                identical = True
                meta: dict = {}
                delta = None
                for rep in range(max(1, repeat)):
                    # A fresh rewire seed per repeat keeps dirty tiles
                    # genuinely cold in the tile cache each time.
                    delta = _delta_mutation(
                        case, graph, boundaries, num_tiles, fraction,
                        seed=base_job.seed + rep,
                    )
                    job = replace(base_job, mutations=(delta,))
                    # Warm models a persistent serving process: hot-path
                    # memos (including the in-process tile memo) survive
                    # between requests, exactly as under ``repro serve``.
                    # The interleaved cold control wipes that state, so an
                    # untimed base replay restores it first.
                    os.environ[ENV_TILE_CACHE_DIR] = tmp
                    execute_job(base_job)
                    t0 = time.perf_counter()
                    warm_payload = execute_job(job)
                    warm_times.append(time.perf_counter() - t0)
                    meta = warm_payload.get("_exec") or {}

                    del os.environ[ENV_TILE_CACHE_DIR]
                    clear_hot_path_caches()
                    t0 = time.perf_counter()
                    cold_payload = execute_job(job)
                    cold_times.append(time.perf_counter() - t0)
                    warm_result = {
                        k: v for k, v in warm_payload.items() if k != "_exec"
                    }
                    identical = identical and warm_result == cold_payload

                dirty = dirty_tiles(boundaries, delta)
                warm_min = min(warm_times)
                cold_min = min(cold_times)
                key = f"{case.name}-{fraction:g}"
                benches[key] = {
                    "label": f"{case.label()} @ {fraction:.0%} dirty",
                    "dataset": case.dataset,
                    "scale": case.scale,
                    "model": case.model,
                    "hidden": case.hidden,
                    "num_layers": case.num_layers,
                    "num_vertices": graph.num_vertices,
                    "num_edges": graph.num_edges,
                    "num_tiles": num_tiles,
                    "dirty_fraction": fraction,
                    "dirty_tiles": int(dirty.size),
                    "edits": delta.num_edits,
                    "base_cold_seconds": base_seconds,
                    "warm_seconds": warm_min,
                    "warm_seconds_all": warm_times,
                    "cold_seconds": cold_min,
                    "cold_seconds_all": cold_times,
                    "speedup_vs_cold": cold_min / warm_min,
                    "tiles": meta.get("tiles", 0),
                    "tiles_reused": meta.get("tiles_reused", 0),
                    "tiles_recomputed": meta.get("tiles_recomputed", 0),
                    "bit_identical": identical,
                }
        finally:
            if saved_env is None:
                os.environ.pop(ENV_TILE_CACHE_DIR, None)
            else:
                os.environ[ENV_TILE_CACHE_DIR] = saved_env
    return benches


def run_delta_benches(
    benches: tuple[DeltaBenchCase, ...] = DELTA_BENCHES,
    *,
    repeat: int = 1,
    telemetry: bool = True,
) -> dict:
    """Run the incremental re-simulation benches (BENCH_8-style)."""
    from ..telemetry import TRACER
    from .instrumentation import PERF

    PERF.reset()
    with TRACER.session(enabled=telemetry, sample_rate=1.0):
        wall_start = time.perf_counter()
        results: dict[str, dict] = {}
        for case in benches:
            results.update(_run_delta_case(case, repeat))
        wall = time.perf_counter() - wall_start
        telemetry_section = _telemetry_section()
    perf = PERF.snapshot()
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "tier": "delta",
        "repeat": repeat,
        "wall_seconds": wall,
        "benches": results,
        "stages": perf["stages"],
        "counters": perf["counters"],
        "telemetry": telemetry_section,
        "environment": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "machine": platform.machine(),
        },
    }


#: The optimizers the DSE bench races over one shared cache.  ``random``
#: samples with replacement (the cache is the dedup), so cache-served
#: fraction is the headline; ``sha`` races one cohort cheap → full
#: fidelity, so its evaluations/s shows the multi-fidelity saving.
DSE_BENCH_SEARCHES: tuple[tuple[str, dict], ...] = (
    ("random", {}),
    ("sha", {"cohort": 27}),
)

#: The DSE bench workload: pubmed scaled far down so a 200-candidate
#: search finishes in CI time; the search dynamics (cache amplification,
#: rung promotion) are scale-independent.
DSE_BENCH_WORKLOAD = {
    "dataset": "pubmed",
    "scale": 0.05,
    "hidden": 16,
    "num_layers": 1,
    "seed": 7,
}


def run_dse_benches(
    *,
    repeat: int = 1,
    evaluations: int = 200,
    telemetry: bool = True,
) -> dict:
    """Bench the design-space-exploration service (BENCH_9-style).

    For each optimizer in :data:`DSE_BENCH_SEARCHES`, runs a seeded
    search over the ``aurora-mini`` space on the pubmed workload twice
    against one on-disk :class:`ResultCache`:

    * **cold** — empty cache; ``served`` counts in-batch dedup plus any
      repeat proposals (random samples with replacement, so repeats are
      free);
    * **warm** — same spec, same cache; nearly every evaluation should
      come back cache-served.

    The headline numbers are ``evaluations_per_second`` (cold) and the
    cold/warm ``served_fraction`` — the cache-amplification story the
    whole subsystem is built on.
    """
    import tempfile

    from ..dse import DSERunner, SearchSpec
    from ..runtime.cache import ResultCache
    from ..telemetry import TRACER
    from .instrumentation import PERF

    PERF.reset()
    with TRACER.session(enabled=telemetry, sample_rate=1.0):
        wall_start = time.perf_counter()
        results: dict[str, dict] = {}
        for optimizer, options in DSE_BENCH_SEARCHES:
            spec = SearchSpec(
                space="aurora-mini",
                optimizer=optimizer,
                objective="latency",
                seed=7,
                max_evaluations=evaluations,
                batch=8,
                options=options,
                workload=dict(DSE_BENCH_WORKLOAD),
            )
            with tempfile.TemporaryDirectory() as tmp:
                cache = ResultCache(Path(tmp) / "cache")

                def run_once(tag: str):
                    clear_hot_path_caches()
                    runner = DSERunner(
                        spec,
                        cache=cache,
                        trajectory_path=Path(tmp) / f"{tag}.jsonl",
                    )
                    t0 = time.perf_counter()
                    result = runner.run()
                    return result, time.perf_counter() - t0

                cold, cold_s = run_once("cold")
                warm_all: list[tuple] = []
                for rep in range(max(1, repeat)):
                    warm_all.append(run_once(f"warm-{rep}"))
                warm, warm_s = min(warm_all, key=lambda item: item[1])
                if warm.best_key != cold.best_key:  # pragma: no cover
                    raise AssertionError(
                        f"warm {optimizer} search found a different best "
                        f"design than cold"
                    )

            results[optimizer] = {
                "label": f"{optimizer} over aurora-mini on "
                f"pubmed@{DSE_BENCH_WORKLOAD['scale']:g}",
                "space": "aurora-mini",
                "optimizer": optimizer,
                "options": options,
                "budget": evaluations,
                "evaluations": cold.evaluations,
                "stopped": cold.stopped,
                "cold_seconds": cold_s,
                "cold_executed": cold.executed,
                "cold_served": cold.served,
                "cold_served_fraction": cold.served_fraction,
                "warm_seconds": warm_s,
                "warm_executed": warm.executed,
                "warm_served": warm.served,
                "warm_served_fraction": warm.served_fraction,
                "evaluations_per_second": cold.evaluations / cold_s,
                "warm_evaluations_per_second": warm.evaluations / warm_s,
                "best_fitness": cold.best_fitness,
                "best_point": cold.best_point,
            }
        wall = time.perf_counter() - wall_start
        telemetry_section = _telemetry_section()
    perf = PERF.snapshot()
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "tier": "dse",
        "repeat": repeat,
        "wall_seconds": wall,
        "benches": results,
        "stages": perf["stages"],
        "counters": perf["counters"],
        "telemetry": telemetry_section,
        "environment": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "machine": platform.machine(),
        },
    }


def run_benches(
    benches: tuple[BenchCase, ...] = STANDARD_BENCHES,
    *,
    repeat: int = 5,
    telemetry: bool = True,
) -> dict:
    """Run the standard benches and return the snapshot dict."""
    from ..telemetry import TRACER
    from .instrumentation import PERF

    PERF.reset()
    with TRACER.session(enabled=telemetry, sample_rate=1.0):
        wall_start = time.perf_counter()
        results = {case.name: _run_case(case, repeat) for case in benches}
        wall = time.perf_counter() - wall_start
        telemetry_section = _telemetry_section()
    perf = PERF.snapshot()
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "tier": "analytical",
        "repeat": repeat,
        "wall_seconds": wall,
        "benches": results,
        "stages": perf["stages"],
        "counters": perf["counters"],
        "telemetry": telemetry_section,
        "environment": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "machine": platform.machine(),
        },
    }


def write_bench_json(
    path: str | Path,
    benches: tuple[BenchCase, ...] | tuple[CycleBenchCase, ...] | None = None,
    *,
    repeat: int | None = None,
    tier: str = "analytical",
    telemetry: bool = True,
    tile_workers: int | None = None,
    noc_engine: str | None = None,
) -> dict:
    """Run one tier's benches and write the snapshot to ``path``.

    ``tier`` selects the analytical layer benches (BENCH_2-style), the
    flit-level cycle-tier bench (BENCH_3-style), the end-to-end service
    bench (BENCH_4-style), the sharded-cluster fleet bench
    (BENCH_6-style), the intra-job tile fan-out bench (BENCH_7-style),
    the incremental re-simulation bench (BENCH_8-style), the
    cache-amplified design-space-search bench (BENCH_9-style), or the
    live-observer overhead bench (BENCH_10-style); returns
    the snapshot.  With
    ``telemetry`` the benches run traced and the snapshot carries a
    ``telemetry`` section (span count, top stages by cumulative time).
    ``tile_workers`` / ``noc_engine`` apply to the fan-out tier only.
    """
    if tier == "analytical":
        snapshot = run_benches(
            benches if benches is not None else STANDARD_BENCHES,
            repeat=repeat if repeat is not None else 5,
            telemetry=telemetry,
        )
    elif tier == "cycle":
        snapshot = run_cycle_benches(
            benches if benches is not None else CYCLE_BENCHES,
            repeat=repeat if repeat is not None else 3,
            telemetry=telemetry,
        )
    elif tier == "serve":
        snapshot = run_serve_benches(
            repeat=repeat if repeat is not None else 10, telemetry=telemetry
        )
    elif tier == "cluster":
        snapshot = run_cluster_benches(
            repeat=repeat if repeat is not None else 2, telemetry=telemetry
        )
    elif tier == "fanout":
        snapshot = run_fanout_benches(
            benches if benches is not None else FANOUT_BENCHES,
            repeat=repeat if repeat is not None else 1,
            telemetry=telemetry,
            tile_workers=tile_workers,
            noc_engine=noc_engine,
        )
    elif tier == "delta":
        snapshot = run_delta_benches(
            benches if benches is not None else DELTA_BENCHES,
            repeat=repeat if repeat is not None else 1,
            telemetry=telemetry,
        )
    elif tier == "dse":
        snapshot = run_dse_benches(
            repeat=repeat if repeat is not None else 1, telemetry=telemetry
        )
    elif tier == "observe":
        snapshot = run_observe_benches(
            repeat=repeat if repeat is not None else 40, telemetry=telemetry
        )
    else:
        raise ValueError(
            "tier must be 'analytical', 'cycle', 'serve', 'cluster', "
            "'fanout', 'delta', 'dse', or 'observe'"
        )
    Path(path).write_text(json.dumps(snapshot, indent=2, sort_keys=True) + "\n")
    return snapshot
