"""Tests for the Aurora analytical simulator."""

import pytest

from repro import AuroraSimulator, LayerDims, get_model, list_models, load_dataset
from repro.config import AcceleratorConfig
from repro.graphs import power_law_graph


@pytest.fixture(scope="module")
def graph():
    return power_law_graph(
        400, 2000, exponent=2.1, locality=0.6, num_features=128,
        feature_density=0.1, seed=9,
    )


@pytest.fixture(scope="module")
def sim():
    return AuroraSimulator()


class TestSimulateLayer:
    def test_result_sanity(self, sim, graph):
        r = sim.simulate_layer(get_model("gcn"), graph, LayerDims(128, 32))
        assert r.total_seconds > 0
        assert r.dram_bytes > 0
        assert r.energy.total > 0
        assert r.accelerator == "aurora"
        assert r.num_tiles >= 1

    def test_breakdown_components_positive(self, sim, graph):
        r = sim.simulate_layer(get_model("gcn"), graph, LayerDims(128, 32))
        assert r.breakdown.compute_seconds > 0
        assert r.breakdown.noc_seconds > 0
        assert r.breakdown.dram_seconds > 0

    def test_total_at_least_bottleneck(self, sim, graph):
        r = sim.simulate_layer(get_model("gcn"), graph, LayerDims(128, 32))
        assert r.total_seconds <= r.breakdown.serial_seconds * 1.5
        assert r.total_seconds >= r.breakdown.dram_seconds * 0.3

    def test_partition_recorded(self, sim, graph):
        r = sim.simulate_layer(get_model("gcn"), graph, LayerDims(128, 32))
        assert r.notes["partition_a"] + r.notes["partition_b"] == 1024
        assert 1 <= r.notes["a_rows"] <= 32

    @pytest.mark.parametrize("name", list_models())
    def test_every_model_simulates(self, sim, graph, name):
        r = sim.simulate_layer(get_model(name), graph, LayerDims(128, 32))
        assert r.total_seconds > 0

    def test_edgeconv_uses_whole_array(self, sim, graph):
        r = sim.simulate_layer(get_model("edgeconv-1"), graph, LayerDims(128, 32))
        assert r.notes["partition_b"] == 0

    def test_density_reduces_dram(self, sim, graph):
        dense = sim.simulate_layer(
            get_model("gcn"), graph, LayerDims(128, 32), input_density=1.0
        )
        sparse = sim.simulate_layer(
            get_model("gcn"), graph, LayerDims(128, 32), input_density=0.01
        )
        assert sparse.dram_bytes < dense.dram_bytes

    def test_bigger_layer_more_time(self, sim, graph):
        small = sim.simulate_layer(get_model("gcn"), graph, LayerDims(128, 8))
        big = sim.simulate_layer(get_model("gcn"), graph, LayerDims(128, 256))
        assert big.total_seconds > small.total_seconds

    def test_deterministic(self, sim, graph):
        a = sim.simulate_layer(get_model("gcn"), graph, LayerDims(128, 32))
        b = sim.simulate_layer(get_model("gcn"), graph, LayerDims(128, 32))
        assert a.total_seconds == b.total_seconds
        assert a.dram_bytes == b.dram_bytes


class TestMappingPolicies:
    def test_degree_aware_beats_hashing(self, graph):
        aware = AuroraSimulator(mapping_policy="degree-aware").simulate_layer(
            get_model("gcn"), graph, LayerDims(128, 32)
        )
        hashed = AuroraSimulator(mapping_policy="hashing").simulate_layer(
            get_model("gcn"), graph, LayerDims(128, 32)
        )
        assert aware.total_seconds < hashed.total_seconds

    def test_policy_label(self, graph):
        r = AuroraSimulator(mapping_policy="hashing").simulate_layer(
            get_model("gcn"), graph, LayerDims(128, 32)
        )
        assert r.accelerator == "aurora-hashing"

    def test_invalid_policy(self):
        with pytest.raises(ValueError):
            AuroraSimulator(mapping_policy="random")

    def test_per_call_override(self, sim, graph):
        r = sim.simulate_layer(
            get_model("gcn"), graph, LayerDims(128, 32), mapping_policy="hashing"
        )
        assert r.notes["mapping_policy"] == "hashing"


class TestCombinationFirst:
    def test_disabled_by_default(self, sim, graph):
        r = sim.simulate_layer(get_model("gcn"), graph, LayerDims(128, 32))
        assert r.notes["combination_first"] is False

    def test_enabled_reduces_time_for_gcn(self, graph):
        base = AuroraSimulator().simulate_layer(
            get_model("gcn"), graph, LayerDims(128, 16)
        )
        cf = AuroraSimulator(enable_combination_first=True).simulate_layer(
            get_model("gcn"), graph, LayerDims(128, 16)
        )
        assert cf.notes["combination_first"] is True
        assert cf.total_seconds <= base.total_seconds

    def test_not_applied_when_widening(self, graph):
        cf = AuroraSimulator(enable_combination_first=True).simulate_layer(
            get_model("gcn"), graph, LayerDims(16, 128)
        )
        assert cf.notes["combination_first"] is False

    def test_not_applied_to_ineligible_model(self, graph):
        cf = AuroraSimulator(enable_combination_first=True).simulate_layer(
            get_model("ggcn"), graph, LayerDims(128, 16)
        )
        assert cf.notes["combination_first"] is False


class TestMultiLayer:
    def test_combine_sums(self, sim, graph):
        l0 = sim.simulate_layer(
            get_model("gcn"), graph, LayerDims(128, 32),
            input_density=graph.feature_density,
        )
        l1 = sim.simulate_layer(
            get_model("gcn"), graph, LayerDims(32, 8), input_density=1.0
        )
        combined = sim.simulate(
            get_model("gcn"), graph, [LayerDims(128, 32), LayerDims(32, 8)]
        )
        assert combined.total_seconds == pytest.approx(
            l0.total_seconds + l1.total_seconds
        )
        assert combined.dram_bytes == l0.dram_bytes + l1.dram_bytes

    def test_needs_layers(self, sim, graph):
        with pytest.raises(ValueError):
            sim.simulate(get_model("gcn"), graph, [])


class TestScaling:
    def test_more_pes_faster(self, graph):
        small = AuroraSimulator(AcceleratorConfig(array_k=8)).simulate_layer(
            get_model("gcn"), graph, LayerDims(128, 64)
        )
        big = AuroraSimulator(AcceleratorConfig(array_k=32)).simulate_layer(
            get_model("gcn"), graph, LayerDims(128, 64)
        )
        assert big.total_seconds < small.total_seconds

    def test_smaller_buffers_more_tiles(self):
        dense = power_law_graph(
            2000, 8000, num_features=256, feature_density=1.0, seed=4
        )
        roomy = AuroraSimulator(
            AcceleratorConfig(pe_buffer_bytes=100 * 1024)
        ).simulate_layer(get_model("gcn"), dense, LayerDims(256, 32))
        tight = AuroraSimulator(
            AcceleratorConfig(pe_buffer_bytes=1024)
        ).simulate_layer(get_model("gcn"), dense, LayerDims(256, 32))
        assert tight.num_tiles > roomy.num_tiles
