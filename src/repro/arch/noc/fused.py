"""Fused multi-cycle drain kernels for the flit-level NoC simulator.

:class:`~repro.arch.noc.network.NoCSimulator` already vectorises one
cycle at a time, but profiling a dense pubmed tile (29k cycles, 519k
flits) shows ~90µs/cycle of *dispatch* overhead: ~50 small-array NumPy
calls per :meth:`step`, each touching a few dozen elements.  This module
collapses the per-cycle Python dispatch two ways, both pinned
bit-identical to :class:`ReferenceNoCSimulator` by the property harness
in ``tests/test_noc_equivalence.py``:

* :class:`FusedNoCSimulator` — a fused :meth:`run` loop over the parent's
  struct-of-arrays state.  Per-port adjacency is *precomputed*
  (``p_tq``: the input port a head flit forwards into; ``p_rt``: its
  directed (router, target) pair for latency/bypass lookup; ``lat_pair``:
  per-pair hop latency), the sort key carries the port id in its low
  bits so one ``np.sort`` replaces argsort-plus-gathers, ejections and
  forwards share one fused arbitration/advance pass, and — the big one —
  head-metadata refresh is skipped when a pop reveals a *body flit of
  the same packet at the same hop* (with ~76 flits/packet, ~99% of
  pops).  Packet-completion accounting is deferred to one vectorised
  pass at drain time.

* :func:`_drain_scalar` — the same semantics as a scalar kernel over
  flat ``int64``/``bool`` arrays, written in the nopython subset so
  :mod:`numba` can JIT it.  :class:`NumbaNoCSimulator` registers it as
  the ``"numba"`` engine: when numba is importable the whole drain runs
  as one compiled call; when it is absent the engine *gracefully falls
  back* to the fused NumPy loop (``kernel_mode == "fallback"``), so the
  entry stays selectable everywhere without a hard dependency.  The
  interpreted kernel remains a plain Python function, which is how the
  equivalence tests pin its semantics even on numba-less machines.

Sequential-semantics contract inherited from the reference (see
``network.py``): round-robin state is untouched by single-contender
grants but advanced by multi-contender grants even when the granted move
stalls; all ejections apply before any forward; forwards apply in
router-id order so freed-slot chains resolve walking dependencies
strictly downward; idle stretches fast-forward to the next ready cycle.
"""

from __future__ import annotations

import numpy as np

from .network import _INF, NoCSimulator
from .stats import NoCStats

__all__ = ["FusedNoCSimulator", "NumbaNoCSimulator", "HAVE_NUMBA"]

try:  # pragma: no cover - exercised only where numba is installed
    import numba as _numba

    HAVE_NUMBA = True
except ImportError:  # the container default: no numba, graceful fallback
    _numba = None
    HAVE_NUMBA = False


class FusedNoCSimulator(NoCSimulator):
    """Event engine with a fused multi-cycle :meth:`run` loop.

    State layout is the parent's; :meth:`inject` and :meth:`step` are
    inherited unchanged (interleaved stepping still works and stays
    bit-identical).  Only :meth:`run` is replaced: derived per-port
    tables are rebuilt once at entry, then the whole drain executes in
    one tight loop with no per-cycle method call, attribute traffic, or
    stats object churn.
    """

    def refresh_configuration(self) -> None:
        super().refresh_configuration()
        # Per directed (router, target) pair: link latency including the
        # router pipeline — one gather replaces the bypass-mask select.
        self._lat_pair = np.where(
            self._bypass, self._lat_byp, self._lat_mesh
        ).astype(np.int64)

    # ------------------------------------------------------------------
    def _prepare_fused(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Derived per-port tables for the fused loop.

        ``key2`` packs the arbitration key with the port id in the low
        bits (one sort yields winner order *and* port identity), ``tq``
        is the input port the head flit forwards into (-1 = at
        destination, i.e. an ejection), ``rt`` the head's directed
        (router, target) pair.  Rebuilt from the flit arrays at every
        ``run`` entry so interleaved ``inject``/``step`` activity (which
        maintains only the parent's tables) is always observed.
        """
        P = self._np_ports
        n = self._n
        ukb = self._ukb
        pbits = (P + 1).bit_length()
        self._pbits = pbits
        key2 = np.zeros(P, dtype=np.int64)
        tq = np.full(P, -1, dtype=np.int64)
        rt = np.zeros(P, dtype=np.int64)
        occ = (self._p_count[:P] > 0).nonzero()[0]
        if occ.size:
            h = self._p_head[occ]
            hop = self._f_hop[h]
            rid = self._f_rid[h]
            router = self._p_router[occ]
            at_dest = hop == self._route_last[rid]
            target = np.where(
                at_dest, router, self._route_flat[self._route_off1[rid] + hop]
            )
            tq[occ] = np.where(at_dest, -1, self._pt[target * n + router])
            rt[occ] = router * n + target
            key2[occ] = (
                (self._p_base[occ] + (target << ukb)) << pbits
            ) | occ
        return key2, tq, rt

    # ------------------------------------------------------------------
    def run(self, *, max_cycles: int = 1_000_000) -> NoCStats:
        if self._outstanding_flits == 0:
            self.stats.cycles = self.cycle
            return self.stats

        P = self._np_ports
        n = self._n
        ukb = self._ukb
        ukmask = self._ukmask
        buf_cap = self._buf_cap
        key2, p_tq, p_rt = self._prepare_fused()
        pbits = self._pbits
        pmask = (1 << pbits) - 1
        gshift = pbits + ukb

        # Hot-array locals (no attribute traffic inside the loop).
        p_ready = self._p_ready
        p_head = self._p_head
        p_tail = self._p_tail
        p_count = self._p_count
        p_router = self._p_router
        p_base = self._p_base
        pr_view = p_ready[:P]
        f_ready = self._f_ready
        f_hop = self._f_hop
        f_pid = self._f_pid
        f_rid = self._f_rid
        f_next = self._f_next
        pt = self._pt
        rr = self._rr
        bypass = self._bypass
        lat_pair = self._lat_pair
        route_last = self._route_last
        route_off1 = self._route_off1
        route_flat = self._route_flat
        pkt_tails = self._pkt_tails
        flag = self._port_flag
        pos = self._port_pos

        # Deferred packet-completion log (flushed once at exit).
        npkt = len(self._packets)
        log_pid = np.empty(npkt, dtype=np.int64)
        log_cycle = np.empty(npkt, dtype=np.int64)
        n_done = 0

        cycle = self.cycle
        outstanding_flits = self._outstanding_flits
        outstanding_packets = self._outstanding_packets
        flits_delivered = 0
        stall_events = 0
        mesh_hops = 0
        byp_hops = 0
        maskbuf = np.empty(P, dtype=bool)
        ar = np.arange(P, dtype=np.int64)  # static iota for the chain pass

        try:
            while outstanding_flits:
                if cycle >= max_cycles:
                    # Sync counters first so the structured error (and
                    # `_deadlock`'s queue snapshot) reflect live state.
                    self._outstanding_flits = outstanding_flits
                    self._outstanding_packets = outstanding_packets
                    raise self._deadlock(
                        f"NoC did not drain within {max_cycles} cycles "
                        f"({outstanding_packets} packets outstanding)",
                        cycle=cycle,
                    )
                np.less_equal(pr_view, cycle, out=maskbuf)
                cand = maskbuf.nonzero()[0]
                now = cycle
                cycle = now + 1
                if cand.size == 0:
                    # Idle fast-forward: nothing moves, arbitration state
                    # is untouched — jump to the next ready cycle.
                    next_ready = int(pr_view.min())
                    if next_ready > cycle:
                        cycle = min(next_ready, max_cycles)
                    continue

                # ---- arbitration: one packed sort, grouped winners ----
                k2 = np.sort(key2[cand])
                groups = k2 >> gshift
                starts_mask = np.empty(groups.size, dtype=bool)
                starts_mask[0] = True
                np.not_equal(groups[1:], groups[:-1], out=starts_mask[1:])
                starts = starts_mask.nonzero()[0]
                winner_idx = starts
                if starts.size != groups.size:
                    ends = np.empty(starts.size, dtype=np.int64)
                    ends[:-1] = starts[1:]
                    ends[-1] = groups.size
                    multi = ends - starts > 1
                    m_start = starts[multi]
                    m_end = ends[multi]
                    m_group = groups[m_start]
                    last = rr[m_group]
                    th2 = (((m_group << ukb) | (last + 2))) << pbits
                    mpos = np.searchsorted(k2, th2)
                    mpos = np.where(mpos >= m_end, m_start, mpos)
                    winner_idx = starts.copy()
                    winner_idx[multi] = mpos
                    # RR advances for every multi-contender grant, even
                    # when the granted move stalls this cycle.
                    rr[m_group] = ((k2[mpos] >> pbits) & ukmask) - 1

                w2 = k2[winner_idx]
                wports = w2 & pmask
                wtq = p_tq[wports]
                eject = wtq < 0
                n_win = wports.size
                n_eject = int(np.count_nonzero(eject))
                # Ejections always succeed; a mover needs a slot in its
                # target queue.  The -1 gathers land on rows where
                # ``eject`` already forces success, so they are inert.
                success = eject | (p_count[wtq] < buf_cap)
                if n_eject and n_eject < n_win:
                    # Ejections drain before forwards are considered.
                    e_ports = wports[eject]
                    flag[e_ports] = True
                    success |= flag[wtq]
                    flag[e_ports] = False
                blocked = (~success).nonzero()[0]
                if blocked.size:
                    # Freed-slot chains: a full target admits the move if
                    # its head departs via an earlier successful forward
                    # (dependencies point strictly down in winner order).
                    pos[wports] = ar[:n_win]
                    dep = pos[wtq[blocked]]
                    pos[wports] = -1
                    succ_list = success.tolist()
                    for i, j in zip(blocked.tolist(), dep.tolist()):
                        if 0 <= j < i and succ_list[j]:
                            succ_list[i] = True
                            success[i] = True

                # ---- fused pop (ejections + successful forwards) -------
                popped = wports if n_eject == n_win else wports[success]
                n_popped = popped.size
                stall_events += n_win - n_popped
                if n_popped == 0:
                    continue  # every winner stalled; only RR state moved
                pflits = p_head[popped]
                pf_hop = f_hop[pflits]
                pf_rid = f_rid[pflits]
                nh = f_next[pflits]
                p_head[popped] = nh
                p_count[popped] -= 1
                emptied = nh < 0
                drained = popped[emptied]
                if drained.size:
                    p_tail[drained] = -1
                    p_ready[drained] = _INF

                # ---- pushes (each target receives <= 1 flit/cycle) -----
                stale_ports = stale_heads = None
                if n_eject < n_popped:
                    e_in_pop = eject[success]
                    mv = ~e_in_pop
                    s_flits = pflits[mv]
                    s_ports = popped[mv]
                    s_tq = wtq[success][mv]
                    s_rt = p_rt[s_ports]
                    nb = int(np.count_nonzero(bypass[s_rt]))
                    byp_hops += nb
                    mesh_hops += s_rt.size - nb
                    f_hop[s_flits] += 1
                    f_ready[s_flits] = lat_pair[s_rt] + now
                    old_tail = p_tail[s_tq]
                    has_tail = old_tail >= 0
                    not_tail = ~has_tail
                    was_empty = s_tq[not_tail]
                    if was_empty.size == 0:
                        f_next[old_tail] = s_flits
                    else:
                        f_next[old_tail[has_tail]] = s_flits[has_tail]
                        new_heads = s_flits[not_tail]
                        p_head[was_empty] = new_heads
                        p_ready[was_empty] = f_ready[new_heads]
                        stale_ports = was_empty
                        stale_heads = new_heads
                    f_next[s_flits] = -1
                    p_tail[s_tq] = s_flits
                    p_count[s_tq] += 1

                # ---- refresh ports whose head changed ------------------
                # Common case (~99% on multi-flit traffic): the new head
                # after a pop is a body flit on the same route at the same
                # hop — derived metadata is unchanged, only readiness
                # moves.  Newly-headed push targets always need the full
                # refresh; both refresh sets are disjoint by construction
                # (a port popped-but-not-emptied still holds flits, so it
                # cannot be a was-empty push target), so one fused scatter
                # covers them.
                ne = ~emptied
                touched = popped[ne]
                if touched.size:
                    nh_t = nh[ne]
                    p_ready[touched] = f_ready[nh_t]
                    same = f_rid[nh_t] == pf_rid[ne]
                    same &= f_hop[nh_t] == pf_hop[ne]
                    if not same.all():
                        st = ~same
                        if stale_ports is None:
                            stale_ports = touched[st]
                            stale_heads = nh_t[st]
                        else:
                            stale_ports = np.concatenate(
                                [stale_ports, touched[st]]
                            )
                            stale_heads = np.concatenate(
                                [stale_heads, nh_t[st]]
                            )
                if stale_ports is not None:
                    hop = f_hop[stale_heads]
                    rid = f_rid[stale_heads]
                    router = p_router[stale_ports]
                    at_dest = hop == route_last[rid]
                    # At-destination rows read one slot past their route
                    # (inside _route_flat's +1 slack), then are masked.
                    target = np.where(
                        at_dest, router, route_flat[route_off1[rid] + hop]
                    )
                    p_tq[stale_ports] = np.where(
                        at_dest, -1, pt[target * n + router]
                    )
                    p_rt[stale_ports] = router * n + target
                    key2[stale_ports] = (
                        (p_base[stale_ports] + (target << ukb)) << pbits
                    ) | stale_ports

                # ---- delivery accounting (deferred latency math) -------
                if n_eject:
                    e_flits = (
                        pflits if n_eject == n_popped else pflits[e_in_pop]
                    )
                    pids = f_pid[e_flits]
                    pkt_tails[pids] -= 1
                    completed = pids[pkt_tails[pids] == 0]
                    flits_delivered += n_eject
                    outstanding_flits -= n_eject
                    if completed.size:
                        outstanding_packets -= int(completed.size)
                        end = n_done + completed.size
                        log_pid[n_done:end] = completed
                        log_cycle[n_done:end] = now + 1
                        n_done = end
        finally:
            # Flush local state back — also on the deadlock raise, so the
            # structured error and post-mortem stats reflect the run.
            self.cycle = cycle
            self._outstanding_flits = outstanding_flits
            self._outstanding_packets = outstanding_packets
            stats = self.stats
            stats.cycles = cycle
            stats.flits_delivered += flits_delivered
            stats.stall_events += stall_events
            stats.mesh_flit_hops += mesh_hops
            stats.bypass_flit_hops += byp_hops
            self._flush_completions(log_pid, log_cycle, n_done)
        return self.stats

    def _flush_completions(self, log_pid, log_cycle, n_done: int) -> None:
        """Apply the deferred completion log to packets and stats.

        Latency totals and the max are order-independent, so batching
        them out of the hot loop cannot change the reference-identical
        values.
        """
        if n_done == 0:
            return
        stats = self.stats
        packets = self._packets
        max_lat = stats.max_packet_latency
        total = 0
        for i in range(n_done):
            pkt = packets[log_pid[i]]
            done = int(log_cycle[i])
            pkt.done_cycle = done
            lat = done - pkt.inject_cycle
            total += lat
            if lat > max_lat:
                max_lat = lat
        stats.packets_delivered += n_done
        stats.total_packet_latency += total
        stats.max_packet_latency = max_lat


# ----------------------------------------------------------------------
# Scalar drain kernel (numba-jittable, also runs interpreted)
# ----------------------------------------------------------------------
#: Layout of the kernel's int64 output block.
_K_CYCLE = 0
_K_FLITS = 1
_K_STALLS = 2
_K_MESH = 3
_K_BYP = 4
_K_NDONE = 5
_K_OUT_FLITS = 6
_K_OUT_PKTS = 7
_K_STATUS = 8  # 0 = drained, 1 = hit max_cycles
_K_WORDS = 9


def _drain_scalar(
    P, n, ukb, pbits, buf_cap, start_cycle, max_cycles,
    p_ready, p_head, p_tail, p_count, p_router, p_base, p_ukey,
    pt, rr, bypass, lat_pair,
    route_last, route_off1, route_flat,
    f_ready, f_hop, f_pid, f_rid, f_next,
    pkt_tails,
    out, log_pid, log_cycle,
    keybuf, mv_port, mv_tq, mv_rt, pushes, flag,
):
    """One compiled pass from ``start_cycle`` to full drain.

    Pure scalar loops over flat arrays — the numba nopython subset —
    re-deriving each head's target on the fly instead of maintaining
    per-port metadata.  Semantics mirror the vector engine exactly:
    sorted (router, target, upstream) arbitration order, RR advance on
    multi-contender grants only, ejections before forwards, forwards in
    ascending winner order with freed-slot visibility strictly downward,
    deferred pushes, idle fast-forward.
    """
    ukmask = (1 << ukb) - 1
    pmask = (1 << pbits) - 1
    cycle = start_cycle
    outstanding_flits = out[_K_OUT_FLITS]
    outstanding_packets = out[_K_OUT_PKTS]
    n_done = out[_K_NDONE]

    while outstanding_flits > 0:
        if cycle >= max_cycles:
            out[_K_STATUS] = 1
            break
        now = cycle
        cycle = now + 1

        # ---- candidates: every port whose head flit is ready ----------
        nc = 0
        for p in range(P):
            if p_ready[p] <= now:
                h = p_head[p]
                hop = f_hop[h]
                rid = f_rid[h]
                if hop == route_last[rid]:
                    tgt = p_router[p]
                else:
                    tgt = route_flat[route_off1[rid] + hop]
                group = p_router[p] * n + tgt
                keybuf[nc] = (((group << ukb) | p_ukey[p]) << pbits) | p
                nc += 1
        if nc == 0:
            nxt = max_cycles
            for p in range(P):
                if p_ready[p] < nxt:
                    nxt = p_ready[p]
            if nxt > cycle:
                cycle = nxt if nxt < max_cycles else max_cycles
            continue

        keys = keybuf[:nc]
        keys.sort()

        # ---- pass 1: per-group RR winners; ejections apply now --------
        n_mv = 0
        n_flag = 0
        i = 0
        while i < nc:
            g = keys[i] >> (ukb + pbits)
            j = i + 1
            while j < nc and (keys[j] >> (ukb + pbits)) == g:
                j += 1
            if j - i == 1:
                w = i
            else:
                th = ((g << ukb) | (rr[g] + 2)) << pbits
                # First contender strictly above the RR pointer, else wrap.
                lo, hi = i, j
                while lo < hi:
                    mid = (lo + hi) >> 1
                    if keys[mid] < th:
                        lo = mid + 1
                    else:
                        hi = mid
                w = lo if lo < j else i
                # RR advances for every multi-contender grant, even when
                # the granted move stalls this cycle.
                rr[g] = ((keys[w] >> pbits) & ukmask) - 1
            port = keys[w] & pmask
            router = p_router[port]
            tgt = g - router * n
            if tgt == router:
                # Ejection: pop immediately, free the slot for movers.
                head = p_head[port]
                nh = f_next[head]
                p_head[port] = nh
                p_count[port] -= 1
                if nh < 0:
                    p_tail[port] = -1
                    p_ready[port] = _INF
                else:
                    p_ready[port] = f_ready[nh]
                flag[port] = True
                pushes[n_flag] = port  # reuse as the flag-reset list
                n_flag += 1
                out[_K_FLITS] += 1
                outstanding_flits -= 1
                pid = f_pid[head]
                pkt_tails[pid] -= 1
                if pkt_tails[pid] == 0:
                    outstanding_packets -= 1
                    log_pid[n_done] = pid
                    log_cycle[n_done] = now + 1
                    n_done += 1
            else:
                mv_port[n_mv] = port
                mv_tq[n_mv] = pt[tgt * n + router]
                mv_rt[n_mv] = router * n + tgt
                n_mv += 1
            i = j

        # ---- pass 2: forwards in winner order, pushes deferred --------
        n_push = 0
        for m in range(n_mv):
            port = mv_port[m]
            tq = mv_tq[m]
            if p_count[tq] < buf_cap or flag[tq]:
                head = p_head[port]
                nh = f_next[head]
                p_head[port] = nh
                p_count[port] -= 1
                if nh < 0:
                    p_tail[port] = -1
                    p_ready[port] = _INF
                else:
                    p_ready[port] = f_ready[nh]
                flag[port] = True
                pushes[n_flag] = port
                n_flag += 1
                rt = mv_rt[m]
                f_hop[head] += 1
                f_ready[head] = now + lat_pair[rt]
                if bypass[rt]:
                    out[_K_BYP] += 1
                else:
                    out[_K_MESH] += 1
                # Deferred link-in: capacity checks of later movers must
                # not observe this cycle's pushes.
                mv_port[m] = -1 - head  # stash the flit, mark success
            else:
                out[_K_STALLS] += 1
                mv_port[m] = 0
                mv_tq[m] = -1
        for m in range(n_mv):
            tq = mv_tq[m]
            if tq < 0:
                continue
            fl = -1 - mv_port[m]
            if p_count[tq] == 0:
                p_head[tq] = fl
                p_ready[tq] = f_ready[fl]
            else:
                f_next[p_tail[tq]] = fl
            f_next[fl] = -1
            p_tail[tq] = fl
            p_count[tq] += 1
            n_push += 1
        for q in range(n_flag):
            flag[pushes[q]] = False

    out[_K_CYCLE] = cycle
    out[_K_NDONE] = n_done
    out[_K_OUT_FLITS] = outstanding_flits
    out[_K_OUT_PKTS] = outstanding_packets


if HAVE_NUMBA:  # pragma: no cover - exercised only where numba is installed
    _drain_scalar_jit = _numba.njit(cache=True)(_drain_scalar)
else:
    _drain_scalar_jit = None


class NumbaNoCSimulator(FusedNoCSimulator):
    """Scalar-kernel engine: numba-compiled when available.

    ``kernel_mode`` records which path :meth:`run` takes — ``"jit"``
    (numba present), ``"interpreted"`` (``use_kernel`` forced true, e.g.
    by the equivalence tests), or ``"fallback"`` (numba absent: the
    inherited fused NumPy loop runs instead, same results, no hard
    dependency).
    """

    #: Tests set this to True to pin the scalar kernel's semantics even
    #: on machines without numba (interpreted, so small inputs only).
    use_kernel: bool | None = None

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.kernel_mode = "jit" if HAVE_NUMBA else "fallback"

    def run(self, *, max_cycles: int = 1_000_000) -> NoCStats:
        use = self.use_kernel
        if use is None:
            use = HAVE_NUMBA
        if not use:
            self.kernel_mode = "fallback"
            return super().run(max_cycles=max_cycles)
        self.kernel_mode = "jit" if HAVE_NUMBA else "interpreted"
        return self._run_kernel(max_cycles=max_cycles)

    def _run_kernel(self, *, max_cycles: int) -> NoCStats:
        if self._outstanding_flits == 0:
            self.stats.cycles = self.cycle
            return self.stats
        P = self._np_ports
        pbits = (P + 1).bit_length()
        npkt = len(self._packets)
        out = np.zeros(_K_WORDS, dtype=np.int64)
        out[_K_OUT_FLITS] = self._outstanding_flits
        out[_K_OUT_PKTS] = self._outstanding_packets
        log_pid = np.empty(npkt, dtype=np.int64)
        log_cycle = np.empty(npkt, dtype=np.int64)
        keybuf = np.empty(P, dtype=np.int64)
        mv_port = np.empty(P, dtype=np.int64)
        mv_tq = np.empty(P, dtype=np.int64)
        mv_rt = np.empty(P, dtype=np.int64)
        pushes = np.empty(P + 1, dtype=np.int64)
        kernel = _drain_scalar_jit if HAVE_NUMBA else _drain_scalar
        kernel(
            P, self._n, self._ukb, pbits, self._buf_cap,
            self.cycle, max_cycles,
            self._p_ready, self._p_head, self._p_tail, self._p_count,
            self._p_router, self._p_base, self._p_ukey,
            self._pt, self._rr, self._bypass, self._lat_pair,
            self._route_last, self._route_off1, self._route_flat,
            self._f_ready, self._f_hop, self._f_pid, self._f_rid,
            self._f_next,
            self._pkt_tails,
            out, log_pid, log_cycle,
            keybuf, mv_port, mv_tq, mv_rt, pushes, self._port_flag,
        )
        self.cycle = int(out[_K_CYCLE])
        self._outstanding_flits = int(out[_K_OUT_FLITS])
        self._outstanding_packets = int(out[_K_OUT_PKTS])
        stats = self.stats
        stats.cycles = self.cycle
        stats.flits_delivered += int(out[_K_FLITS])
        stats.stall_events += int(out[_K_STALLS])
        stats.mesh_flit_hops += int(out[_K_MESH])
        stats.bypass_flit_hops += int(out[_K_BYP])
        self._flush_completions(log_pid, log_cycle, int(out[_K_NDONE]))
        if out[_K_STATUS]:
            raise self._deadlock(
                f"NoC did not drain within {max_cycles} cycles "
                f"({self._outstanding_packets} packets outstanding)",
                cycle=self.cycle,
            )
        return self.stats
